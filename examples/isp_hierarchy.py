"""ISP cache hierarchy: the Section 3.3 architecture the paper never measured.

A regional ISP runs edge proxies in each city backed by a shared regional
parent cache — the classic Harvest/Squid hierarchy. On an edge miss the
request escalates to the parent, which resolves it from its own disk or the
origin; the EA scheme decides at every level whether keeping a copy is worth
it, comparing piggybacked expiration ages hop by hop.

This example builds a 4-edge + 1-parent tree explicitly (no simulator
config sugar) to show the architecture API, then compares schemes.

Run:  python examples/isp_hierarchy.py
"""

from repro.architecture import HierarchicalGroup, build_caches
from repro.analysis.tables import percent, render_table
from repro.core import AdHocScheme, EAScheme
from repro.network.topology import two_level_tree
from repro.trace import HashPartitioner, SyntheticTraceConfig, generate_trace
from repro.trace.record import patch_zero_sizes


def run_hierarchy(scheme, trace):
    topology = two_level_tree(num_leaves=4, num_parents=1)
    caches = build_caches(topology.num_caches, aggregate_capacity=2 << 20)
    group = HierarchicalGroup(caches, scheme, topology)

    leaves = topology.leaves()
    partitioner = HashPartitioner(len(leaves))
    local = remote = miss = 0
    for position, record in partitioner.split(patch_zero_sizes(iter(trace))):
        outcome = group.process(leaves[position], record)
        if outcome.kind.value == "local_hit":
            local += 1
        elif outcome.kind.value == "remote_hit":
            remote += 1
        else:
            miss += 1
    total = local + remote + miss
    parent = group.caches[0]
    return {
        "local": local / total,
        "remote": remote / total,
        "miss": miss / total,
        "parent_docs": len(parent),
        "parent_served": parent.stats.remote_hits_served,
    }


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=30_000, num_documents=4_000, num_clients=80, seed=23
        )
    )
    print(f"ISP workload: {len(trace)} requests, {trace.unique_urls} unique documents\n")

    rows = []
    for name, scheme in [("adhoc", AdHocScheme()), ("ea", EAScheme())]:
        stats = run_hierarchy(scheme, trace)
        rows.append(
            [
                name,
                percent(stats["local"]),
                percent(stats["remote"]),
                percent(stats["miss"]),
                stats["parent_docs"],
                stats["parent_served"],
            ]
        )
    print(
        render_table(
            ["scheme", "edge hits", "upstream hits", "misses", "parent docs", "parent serves"],
            rows,
            title="4 edge proxies + 1 regional parent (2 MB aggregate)",
        )
    )
    print(
        "\nUnder EA the parent only keeps documents whose copies outlive the "
        "edges' (parent stores iff its expiration age exceeds the child's)."
    )


if __name__ == "__main__":
    main()
