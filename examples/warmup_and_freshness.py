"""Warm-up dynamics and freshness: metrics the paper's aggregates hide.

Two questions an operator deploying the EA scheme would ask:

1. *How long until the scheme's contention signal means anything?* A cold
   cache reports an infinite expiration age, so EA starts out identical to
   ad-hoc and only diverges once evictions begin. The time-series collector
   shows the hit rate converging window by window.
2. *Does the benefit survive consistency traffic?* Real proxies revalidate
   stale copies with the origin; the coherence wrapper layers TTL expiry and
   If-Modified-Since exchanges on both schemes.

Run:  python examples/warmup_and_freshness.py
"""

from repro.analysis.tables import percent, render_table
from repro.architecture import DistributedGroup, build_caches
from repro.coherence import ChangeModel, CoherentGroup, TTLModel
from repro.core import AdHocScheme, EAScheme
from repro.simulation import TimeSeriesCollector
from repro.trace import HashPartitioner, SyntheticTraceConfig, generate_trace
from repro.trace.record import patch_zero_sizes


def warmup_series(scheme, trace, windows=12):
    group = DistributedGroup(build_caches(4, 1 << 20), scheme)
    collector = TimeSeriesCollector(window_seconds=trace.duration / windows)
    partitioner = HashPartitioner(4)
    for index, record in partitioner.split(patch_zero_sizes(iter(trace))):
        collector.observe(group.process(index, record))
    return collector


def coherent_run(scheme, trace):
    group = DistributedGroup(build_caches(4, 1 << 20), scheme)
    coherent = CoherentGroup(
        group,
        ttl_model=TTLModel(base_ttl=900.0, spread=0.5),
        change_model=ChangeModel(mean_change_interval=7200.0),
    )
    partitioner = HashPartitioner(4)
    hits = total = 0
    for index, record in partitioner.split(patch_zero_sizes(iter(trace))):
        outcome = coherent.process(index, record)
        hits += outcome.is_hit
        total += 1
    return hits / total, coherent.stats


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=30_000, num_documents=3_500, num_clients=64,
            mean_interarrival=1.0, seed=29,
        )
    )
    print(f"workload: {len(trace)} requests over {trace.duration / 3600:.1f} hours\n")

    print("Warm-up: group hit rate per time window (sparkline, low→high):")
    for name, scheme in [("adhoc", AdHocScheme()), ("ea", EAScheme())]:
        collector = warmup_series(scheme, trace)
        spark = collector.sparkline()
        warm = collector.warmup_windows(fraction=0.9)
        final = collector.hit_rate_series()[-1]
        print(f"  {name:>5}: {spark}  (90% of final rate after {warm} windows, final {percent(final)})")

    print("\nWith TTL + If-Modified-Since coherence on both schemes:")
    rows = []
    for name, scheme in [("adhoc", AdHocScheme()), ("ea", EAScheme())]:
        hit_rate, stats = coherent_run(scheme, trace)
        rows.append(
            [
                name,
                percent(hit_rate),
                stats.validations,
                percent(stats.validation_hit_rate),
                stats.coherence_misses,
            ]
        )
    print(
        render_table(
            ["scheme", "hit rate", "validations", "304 rate", "coherence misses"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
