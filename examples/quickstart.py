"""Quickstart: compare the EA scheme against ad-hoc placement in 30 lines.

Generates a small synthetic web workload, replays it through two identical
4-proxy cooperative cache groups — one per placement scheme — and prints the
paper's headline metrics side by side.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_simulation
from repro.analysis.tables import percent, render_table
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=30_000, num_documents=4_000, num_clients=64, seed=7
        )
    )
    print(f"workload: {len(trace)} requests, {trace.unique_urls} unique documents\n")

    rows = []
    for scheme in ("adhoc", "ea"):
        config = SimulationConfig(
            scheme=scheme,
            num_caches=4,
            aggregate_capacity=1 * 1024 * 1024,  # 1 MB aggregate, X/N per cache
        )
        result = run_simulation(config, trace)
        rows.append(
            [
                scheme,
                percent(result.metrics.hit_rate),
                percent(result.metrics.byte_hit_rate),
                percent(result.metrics.remote_hit_rate),
                f"{result.estimated_latency * 1000:.0f}ms",
                f"{result.replication_factor:.3f}",
            ]
        )

    print(
        render_table(
            ["scheme", "hit rate", "byte hit", "remote hits", "est. latency", "replication"],
            rows,
            title="Ad-hoc vs EA placement (4 caches, 1 MB aggregate)",
        )
    )
    print(
        "\nThe EA scheme trades short-lived local copies for remote hits, "
        "raising the group hit rate and cutting origin fetches."
    )


if __name__ == "__main__":
    main()
