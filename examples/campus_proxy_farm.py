"""Campus proxy farm: the workload the paper's introduction motivates.

A university runs one caching proxy per department; students in different
departments browse an overlapping set of popular sites (Zipf popularity does
the overlapping). Without coordination every proxy caches its own copy of
the same popular documents — the "uncontrolled replication" of Section 2.

This example replays a BU-like campus workload through an 8-proxy group
under both schemes and shows where the EA scheme's benefit comes from:
the replication report (copies per document, effective disk fraction) next
to the hit-rate table, across three disk budgets.

Run:  python examples/campus_proxy_farm.py
"""

from repro.analysis.replication import replication_report
from repro.analysis.tables import percent, render_table
from repro.simulation import CooperativeSimulator, SimulationConfig
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    # 591-user-style campus population, scaled for a quick run.
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=40_000,
            num_documents=5_000,
            num_clients=120,
            temporal_locality=0.35,
            zero_size_fraction=0.02,
            seed=17,
        )
    )
    print(
        f"campus workload: {len(trace)} requests from {trace.unique_clients} users, "
        f"{trace.unique_urls} unique documents\n"
    )

    for budget_label, budget in [("512KB", 512 * 1024), ("4MB", 4 << 20), ("32MB", 32 << 20)]:
        rows = []
        for scheme in ("adhoc", "ea"):
            sim = CooperativeSimulator(
                SimulationConfig(
                    scheme=scheme, num_caches=8, aggregate_capacity=budget, seed=1
                )
            )
            result = sim.run(trace)
            replication = replication_report(sim.group)
            rows.append(
                [
                    scheme,
                    percent(result.metrics.hit_rate),
                    percent(result.metrics.byte_hit_rate),
                    f"{replication.replication_factor:.3f}",
                    percent(replication.effective_space_fraction),
                    f"{result.estimated_latency * 1000:.0f}ms",
                ]
            )
        print(
            render_table(
                ["scheme", "hit rate", "byte hit", "copies/doc", "effective disk", "latency"],
                rows,
                title=f"8 department proxies, {budget_label} aggregate disk",
            )
        )
        print()


if __name__ == "__main__":
    main()
