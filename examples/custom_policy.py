"""Extending the library: plug a custom replacement policy into the EA scheme.

The paper claims the EA scheme is replacement-policy independent: any policy
can participate as long as a document expiration age can be defined for its
victims. This example implements **Segmented LRU (SLRU)** — a protected
segment for re-referenced documents and a probationary segment for new ones
— subclasses nothing but the ``ReplacementPolicy`` interface, and runs the
full EA-vs-ad-hoc comparison on top of it.

Run:  python examples/custom_policy.py
"""

from collections import OrderedDict

from repro.analysis.tables import percent, render_table
from repro.architecture import DistributedGroup
from repro.cache import (
    CacheEntry,
    ExpirationAgeTracker,
    ProxyCache,
    ReplacementPolicy,
)
from repro.core import AdHocScheme, EAScheme
from repro.trace import HashPartitioner, SyntheticTraceConfig, generate_trace
from repro.trace.record import patch_zero_sizes


class SegmentedLRUPolicy(ReplacementPolicy):
    """Two-segment LRU: victims come from the probationary segment first.

    New documents enter probation; a hit promotes to the protected segment
    (evicting the protected LRU back to probation when the segment is
    full). Victim order: probationary LRU, then protected LRU.
    """

    expiration_age_kind = "lru"

    def __init__(self, protected_fraction: float = 0.5, capacity_hint: int = 64):
        self._probation: "OrderedDict[str, None]" = OrderedDict()
        self._protected: "OrderedDict[str, None]" = OrderedDict()
        self._max_protected = max(1, int(capacity_hint * protected_fraction))

    def on_admit(self, entry: CacheEntry) -> None:
        self._probation[entry.url] = None

    def on_hit(self, entry: CacheEntry) -> None:
        if entry.url in self._probation:
            del self._probation[entry.url]
            self._protected[entry.url] = None
            while len(self._protected) > self._max_protected:
                demoted, _ = self._protected.popitem(last=False)
                self._probation[demoted] = None
        elif entry.url in self._protected:
            self._protected.move_to_end(entry.url)

    def select_victim(self) -> str:
        if self._probation:
            return next(iter(self._probation))
        return next(iter(self._protected))

    def on_evict(self, entry: CacheEntry) -> None:
        self._probation.pop(entry.url, None)
        self._protected.pop(entry.url, None)

    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()


def build_group(scheme, num_caches=4, aggregate=1 << 20):
    per_cache = aggregate // num_caches
    caches = [
        ProxyCache(
            per_cache,
            policy=SegmentedLRUPolicy(capacity_hint=per_cache // 4096),
            tracker=ExpirationAgeTracker(kind="lru"),
            name=f"slru{i}",
        )
        for i in range(num_caches)
    ]
    return DistributedGroup(caches, scheme)


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=25_000, num_documents=3_000, num_clients=48, seed=41
        )
    )
    print(f"workload: {len(trace)} requests, {trace.unique_urls} unique documents\n")

    rows = []
    for name, scheme in [("adhoc", AdHocScheme()), ("ea", EAScheme())]:
        group = build_group(scheme)
        partitioner = HashPartitioner(len(group.caches))
        hits = 0
        records = list(patch_zero_sizes(iter(trace)))
        for index, record in partitioner.split(records):
            if group.process(index, record).is_hit:
                hits += 1
        rows.append(
            [
                name,
                percent(hits / len(records)),
                f"{group.replication_factor():.3f}",
            ]
        )
    print(
        render_table(
            ["scheme", "group hit rate", "copies per document"],
            rows,
            title="EA vs ad-hoc on a custom Segmented-LRU policy (4 caches, 1 MB)",
        )
    )
    print(
        "\nThe EA machinery only needed SLRU's victims to have LRU-style "
        "expiration ages — no placement code changed."
    )


if __name__ == "__main__":
    main()
