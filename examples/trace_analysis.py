"""Trace tooling: generate, persist, re-read, and characterise a workload.

Shows the round-trip the library supports for real traces: write a synthetic
workload in the Boston University condensed-log format, parse it back with
the same reader that would ingest the genuine BU traces, and print the
standard workload characterisation (Zipf fit, one-timers, working-set
growth, size percentiles, infinite-cache ceiling).

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.tables import percent, render_table
from repro.trace import (
    SyntheticTraceConfig,
    compute_stats,
    fit_zipf_alpha,
    generate_trace,
    read_trace,
    size_percentiles,
    working_set_curve,
    write_bu_trace,
)


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=25_000,
            num_documents=3_500,
            num_clients=50,
            zero_size_fraction=0.02,
            seed=31,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campus.bu"
        count = write_bu_trace(iter(trace), path)
        print(f"wrote {count} records to {path.name} (BU condensed format)")
        reloaded = read_trace(path, fmt="bu")
        assert len(reloaded) == len(trace)
        print(f"re-read {len(reloaded)} records through BUTraceReader\n")

    stats = compute_stats(trace)
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", stats.num_requests],
                ["unique documents", stats.num_unique_urls],
                ["clients", stats.num_clients],
                ["mean size (B)", round(stats.mean_size)],
                ["one-timer fraction", percent(stats.one_timer_fraction)],
                ["infinite-cache hit ceiling", percent(stats.max_hit_rate)],
                ["infinite-cache byte ceiling", percent(stats.max_byte_hit_rate)],
                ["fitted Zipf alpha", f"{fit_zipf_alpha(trace):.3f}"],
            ],
            title="Workload characterisation",
        )
    )

    print("\nWorking-set growth (requests seen -> unique documents):")
    for seen, unique in working_set_curve(trace, num_points=8):
        bar = "#" * (unique * 40 // stats.num_unique_urls)
        print(f"  {seen:>7} -> {unique:>6} {bar}")

    percentiles = size_percentiles(trace, percentiles=(50.0, 90.0, 99.0))
    print(
        "\nDocument size percentiles: "
        + ", ".join(f"p{int(p)}={size}B" for p, size in sorted(percentiles.items()))
    )


if __name__ == "__main__":
    main()
