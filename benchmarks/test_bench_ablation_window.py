"""Ablation benchmark: expiration-age window interpretation.

The paper defines the cache expiration age over "a finite time duration"
without fixing it; this ablation compares cumulative, sliding-count, and
sliding-time windows. Expected: EA's hit rate is robust to the choice (the
deltas between modes are small relative to the EA-vs-ad-hoc gap).
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.ablations import run_window_ablation


def test_bench_ablation_window(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_window_ablation,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    for row in report.rows:
        rates = row[1:]
        assert all(0.0 <= rate <= 1.0 for rate in rates)
        # Window choice should not swing the hit rate by more than a few
        # points — the scheme's signal is the coarse contention ordering.
        assert max(rates) - min(rates) < 0.05, (
            f"window modes disagree too much at {row[0]}: {rates}"
        )
