"""Benchmark: regenerate Figure 3 (estimated average latency, Eq. 6)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments import fig3_latency


def test_bench_fig3_latency(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        fig3_latency.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # Paper shape: EA clearly faster while misses dominate (small caches);
    # at the largest size the schemes converge and EA may be slightly
    # *slower* (remote hits cost more than local hits) — the 1 GB crossover.
    ea = report.column("ea_latency_ms")
    adhoc = report.column("adhoc_latency_ms")
    assert ea[0] < adhoc[0], "EA should win at the most contended size"
    assert all(latency > 0 for latency in ea + adhoc)
    # Latency must fall as capacity grows (more hits = fewer 2784 ms misses).
    assert ea[0] > ea[-1]
    assert adhoc[0] > adhoc[-1]
    # Convergence at the top: gap at the largest size is a small fraction of
    # the gap at the smallest.
    assert abs(ea[-1] - adhoc[-1]) <= abs(ea[0] - adhoc[0]) + 1e-9
