"""Ablation benchmark: the EA scheme under non-LRU replacement policies.

The paper claims the scheme "works well with various document replacement
algorithms" but only evaluates LRU. This ablation reruns the comparison
under LFU and GDSF (whose trackers use the LFU-style expiration-age
formula). Expected: the EA-minus-ad-hoc hit-rate delta stays non-negative in
the contended region for every policy.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.ablations import run_policy_ablation


def test_bench_ablation_policy(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_policy_ablation,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    policies = [header[len("delta_"):] for header in report.headers[1:]]
    for policy in policies:
        deltas = report.column(f"delta_{policy}")
        assert max(deltas) > 0, f"EA should help somewhere under {policy}"
        # Allow small noise-level losses, but nothing structural.
        assert min(deltas) > -0.02, (
            f"EA degrades badly under {policy}: {deltas}"
        )
