"""Ablation benchmark: EA tie-break rule (equal expiration ages).

Requester-wins (default) makes a cold group behave exactly like ad-hoc
(both caches report infinite age, requester stores); responder-wins
suppresses replication during cold start. Expected: requester-wins is at
least as good early and the two converge once caches warm up.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.ablations import run_tie_break_ablation


def test_bench_ablation_ties(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_tie_break_ablation,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    for row in report.rows:
        requester, responder = row[1], row[2]
        assert 0.0 <= requester <= 1.0 and 0.0 <= responder <= 1.0
        # Ties are rare once ages are finite, so the rules should land close.
        assert abs(requester - responder) < 0.05, (
            f"tie-break rules diverge unexpectedly at {row[0]}"
        )
