"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact at the ``default`` workload
scale (a ~1/8-scale BU-like trace; see ``repro.experiments.workload``) and
writes the rendered table under ``results/`` so EXPERIMENTS.md can quote it.
Experiment regeneration is deterministic, so every benchmark runs its body
exactly once (``benchmark.pedantic(rounds=1, iterations=1)``) — the timing
recorded is the cost of regenerating that artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.workload import workload_trace

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def default_trace():
    """The default-scale experiment trace, generated once per session."""
    return workload_trace("default")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting rendered experiment artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, report) -> None:
    """Persist a rendered ExperimentReport for EXPERIMENTS.md."""
    path = results_dir / f"{report.experiment_id}.txt"
    path.write_text(report.render() + "\n", encoding="utf-8")
