"""Benchmarks for the second-wave extension studies."""

from __future__ import annotations

from conftest import save_report

from repro.experiments.extensions2 import (
    run_admission_study,
    run_coherence_study,
    run_demotion_study,
    run_heterogeneity_study,
    run_replica_cap_study,
)
from repro.experiments.workload import capacities_for

CONTENDED = capacities_for("default")[:3]  # 100KB / 1MB / 10MB


def test_bench_ext_coherence(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_coherence_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED[1:]},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    # EA must keep beating ad-hoc with the consistency layer on both.
    by_cap = {}
    for row in report.rows:
        by_cap.setdefault(row[0], {})[row[1]] = row[2]
    for label, rates in by_cap.items():
        assert rates["ea"] >= rates["adhoc"] - 0.01, f"EA loses under coherence at {label}"


def test_bench_ext_demotion(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_demotion_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        _, plain, naive, filtered, *_counts = row
        # Filtered demotion must not lose meaningfully to plain EA; naive
        # demotion is allowed to lose (that is the study's finding).
        assert filtered >= plain - 0.02


def test_bench_ext_admission(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_admission_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        for rate in row[1:]:
            assert 0.0 <= rate <= 1.0
        # The size gate should be roughly neutral-or-better (huge bodies
        # rarely earn their keep at contended sizes).
        assert row[2] >= row[1] - 0.02


def test_bench_ext_replica_cap(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_replica_cap_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        label, ea_hit, capped_hit, ea_byte, capped_byte = row
        # The cap must never collapse performance; it trades at the margin.
        assert capped_hit >= ea_hit - 0.02, f"cap collapses hit rate at {label}"
        assert capped_byte >= ea_byte - 0.02, f"cap collapses byte hits at {label}"


def test_bench_ext_heterogeneous(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_heterogeneity_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        label, delta_equal, delta_skewed, ea_equal, ea_skewed = row
        # EA must stay ahead of ad-hoc on skewed splits too.
        assert delta_skewed >= -0.01, f"EA loses on skewed shares at {label}"
