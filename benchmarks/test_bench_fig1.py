"""Benchmark: regenerate Figure 1 (document hit rates, 4-cache group)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments import fig1_document_hit_rates


def test_bench_fig1_document_hit_rates(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        fig1_document_hit_rates.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # Shape assertions mirroring the paper: EA >= ad-hoc at every size, with
    # the largest advantage at the smaller (contended) cache sizes.
    deltas = report.column("ea_minus_adhoc")
    assert all(delta >= -1e-9 for delta in deltas), "EA must not lose to ad-hoc"
    assert max(deltas[:3]) >= max(deltas[3:]) - 1e-9, (
        "EA's advantage should be concentrated at small cache sizes"
    )
    assert max(deltas) > 0, "EA should strictly beat ad-hoc somewhere"
