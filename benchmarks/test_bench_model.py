"""Benchmark: Che-model bounds vs simulated hit rates (IRM workload)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments.model_validation import run
from repro.experiments.workload import capacities_for


def test_bench_model_validation(benchmark, results_dir):
    report = benchmark.pedantic(
        run,
        kwargs={"scale": "default", "capacities": capacities_for("default")[:3]},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    for row in report.rows:
        label, replicated, adhoc, ea, shared, _position = row
        assert shared >= replicated - 1e-9, f"bounds inverted at {label}"
        assert ea >= adhoc - 1e-9, f"EA loses at {label}"
    # At the mid (1 MB) capacity the story must be clean: simulated rates
    # inside the analytical bracket (small-cache and near-saturation rows
    # carry known Che/finite-trace error) and EA in its upper half.
    _, replicated, adhoc, ea, shared, position = report.rows[1]
    assert replicated - 0.03 <= adhoc <= shared + 0.03
    assert replicated - 0.03 <= ea <= shared + 0.03
    assert position > 0.5, "EA should sit closer to the shared-cache bound"
