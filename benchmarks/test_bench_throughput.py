"""Microbenchmarks for the simulator's hot paths.

Unlike the artifact-regeneration benchmarks (one deterministic round each),
these use pytest-benchmark's normal repeated timing to track the throughput
of the operations that dominate a simulation: cache lookup/admit cycles,
ICP encode/decode, and end-to-end request processing for both schemes.
"""

from __future__ import annotations

import pytest

from repro.cache import Document, LRUPolicy, ProxyCache
from repro.protocol import icp
from repro.simulation import CooperativeSimulator, SimulationConfig
from repro.simulation.simulator import run_simulation
from repro.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def micro_trace():
    return generate_trace(
        SyntheticTraceConfig(
            num_requests=5_000, num_documents=800, num_clients=16, seed=11
        )
    )


def test_bench_cache_lookup_admit_cycle(benchmark):
    """Throughput of the ProxyCache miss-admit-evict loop."""
    documents = [Document(f"http://bench/doc{i}", 4096) for i in range(512)]

    def run_cycle():
        cache = ProxyCache(64 * 4096, policy=LRUPolicy())
        now = 0.0
        for doc in documents:
            now += 1.0
            if cache.lookup(doc.url, now) is None:
                cache.admit(doc, now)
        return cache

    cache = benchmark(run_cycle)
    assert len(cache) == 64


def test_bench_icp_roundtrip(benchmark):
    """ICP encode/decode round-trip cost per datagram."""
    message = icp.query(7, "http://bench.example.com/some/long/path/doc", icp.pack_cache_address(3))

    def roundtrip():
        return icp.decode(icp.encode(message))

    decoded = benchmark(roundtrip)
    assert decoded.url == message.url


@pytest.mark.parametrize("scheme", ["adhoc", "ea"])
def test_bench_simulator_requests_per_second(benchmark, micro_trace, scheme):
    """End-to-end request processing throughput per scheme.

    EA adds two expiration-age reads per remote hit; this benchmark bounds
    the overhead and backs the paper's 'no extra cost' implementation claim.
    """
    config = SimulationConfig(
        scheme=scheme, num_caches=4, aggregate_capacity=1 << 20, seed=5
    )

    def run():
        return CooperativeSimulator(config).run(micro_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics.requests == len(micro_trace)


@pytest.mark.parametrize("scheme", ["adhoc", "ea"])
def test_bench_columnar_requests_per_second(benchmark, micro_trace, scheme):
    """Columnar-engine counterpart of the end-to-end throughput benchmark.

    Same config and trace as ``test_bench_simulator_requests_per_second``
    so the two benchmark families measure the engines head-to-head; the
    per-engine CI regression gate reads both. Interning is paid once up
    front (it is cached on the trace), matching how sweeps amortise it.
    """
    config = SimulationConfig(
        scheme=scheme,
        num_caches=4,
        aggregate_capacity=1 << 20,
        seed=5,
        engine="columnar",
    )
    micro_trace.interned()

    def run():
        return run_simulation(config, micro_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics.requests == len(micro_trace)
    object_result = CooperativeSimulator(config).run(micro_trace)
    assert result.to_json() == object_result.to_json()
