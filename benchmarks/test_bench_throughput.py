"""Microbenchmarks for the simulator's hot paths.

Unlike the artifact-regeneration benchmarks (one deterministic round each),
these use pytest-benchmark's normal repeated timing to track the throughput
of the operations that dominate a simulation: cache lookup/admit cycles,
ICP encode/decode, and end-to-end request processing for both schemes.
"""

from __future__ import annotations

import pytest

from repro.cache import Document, LRUPolicy, ProxyCache
from repro.protocol import icp
from repro.simulation import CooperativeSimulator, SimulationConfig
from repro.simulation.simulator import run_simulation
from repro.trace import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def micro_trace():
    return generate_trace(
        SyntheticTraceConfig(
            num_requests=5_000, num_documents=800, num_clients=16, seed=11
        )
    )


def test_bench_cache_lookup_admit_cycle(benchmark):
    """Throughput of the ProxyCache miss-admit-evict loop."""
    documents = [Document(f"http://bench/doc{i}", 4096) for i in range(512)]

    def run_cycle():
        cache = ProxyCache(64 * 4096, policy=LRUPolicy())
        now = 0.0
        for doc in documents:
            now += 1.0
            if cache.lookup(doc.url, now) is None:
                cache.admit(doc, now)
        return cache

    cache = benchmark(run_cycle)
    assert len(cache) == 64


def test_bench_icp_roundtrip(benchmark):
    """ICP encode/decode round-trip cost per datagram."""
    message = icp.query(7, "http://bench.example.com/some/long/path/doc", icp.pack_cache_address(3))

    def roundtrip():
        return icp.decode(icp.encode(message))

    decoded = benchmark(roundtrip)
    assert decoded.url == message.url


@pytest.mark.parametrize("scheme", ["adhoc", "ea"])
def test_bench_simulator_requests_per_second(benchmark, micro_trace, scheme):
    """End-to-end request processing throughput per scheme.

    EA adds two expiration-age reads per remote hit; this benchmark bounds
    the overhead and backs the paper's 'no extra cost' implementation claim.
    """
    config = SimulationConfig(
        scheme=scheme, num_caches=4, aggregate_capacity=1 << 20, seed=5
    )

    def run():
        return CooperativeSimulator(config).run(micro_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics.requests == len(micro_trace)


@pytest.mark.parametrize("scheme", ["adhoc", "ea"])
def test_bench_columnar_requests_per_second(benchmark, micro_trace, scheme):
    """Columnar-engine counterpart of the end-to-end throughput benchmark.

    Same config and trace as ``test_bench_simulator_requests_per_second``
    so the two benchmark families measure the engines head-to-head; the
    per-engine CI regression gate reads both. Interning is paid once up
    front (it is cached on the trace), matching how sweeps amortise it.
    """
    config = SimulationConfig(
        scheme=scheme,
        num_caches=4,
        aggregate_capacity=1 << 20,
        seed=5,
        engine="columnar",
    )
    micro_trace.interned()

    def run():
        return run_simulation(config, micro_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics.requests == len(micro_trace)
    object_result = CooperativeSimulator(config).run(micro_trace)
    assert result.to_json() == object_result.to_json()


@pytest.mark.parametrize("scheme", ["adhoc", "ea"])
def test_bench_batch_requests_per_second(benchmark, micro_trace, scheme):
    """Batch-engine counterpart, same config/trace as the other two.

    The micro trace evicts constantly at 1 MB aggregate, so this measures
    the batch engine's *churn* (conflict-storm scalar) regime — the
    cold-regime gain shows up in ``test_bench_batch_speedup_cold`` and
    the warm-regime gain in ``test_bench_batch_speedup_warm``. The CI
    regression gate reads this entry so the batch loop cannot quietly
    regress. Warmup rounds absorb the first-call effects (allocator
    growth, branch warm-up) that made BENCH_7's 3-round batch entries
    show stddev on the order of the mean; the gate compares medians.
    """
    config = SimulationConfig(
        scheme=scheme,
        num_caches=4,
        aggregate_capacity=1 << 20,
        seed=5,
        engine="batch",
    )
    micro_trace.interned()

    def run():
        return run_simulation(config, micro_trace)

    result = benchmark.pedantic(run, rounds=7, iterations=1, warmup_rounds=2)
    assert result.metrics.requests == len(micro_trace)
    object_result = CooperativeSimulator(config).run(micro_trace)
    assert result.to_json() == object_result.to_json()


@pytest.fixture(scope="module")
def cold_trace():
    """Fits-in-cache workload: the batch engine's vectorised cold regime.

    Sized so the whole unique-content footprint fits the benchmark's
    aggregate capacity — no evictions, the regime where the batch engine
    replays first occurrences only and vectorises everything else.
    """
    return generate_trace(
        SyntheticTraceConfig(
            num_requests=150_000,
            num_documents=12_000,
            num_clients=48,
            zipf_alpha=0.9,
            zero_size_fraction=0.02,
            seed=23,
        )
    )


def test_bench_batch_cold_requests_per_second(benchmark, cold_trace):
    """Cold-regime throughput entry for the regression gate."""
    config = SimulationConfig(
        scheme="ea",
        num_caches=4,
        aggregate_capacity=1 << 30,
        seed=5,
        engine="batch",
    )
    cold_trace.interned()
    result = benchmark.pedantic(
        lambda: run_simulation(config, cold_trace),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.metrics.requests == len(cold_trace)


@pytest.fixture(scope="module")
def bu_trace():
    """The BU-scale trace (575,775 requests): the ISSUE's warm-regime
    acceptance workload. At 488 MB aggregate the replay *evicts* (the
    unique footprint slightly overflows), so the batch engine runs its
    full three-regime pipeline: vectorised cold prefix, hit-run bulk
    scanning, and scalar protocol handling around every eviction."""
    from repro.trace import bu_like_config

    return generate_trace(bu_like_config())


#: The warm acceptance point: evicting, but hit-dominated — see bu_trace.
WARM_CAPACITY = 488 << 20


def test_bench_batch_warm_requests_per_second(benchmark, bu_trace):
    """Warm/evicting-regime throughput entry for the regression gate."""
    config = SimulationConfig(
        scheme="ea",
        num_caches=4,
        aggregate_capacity=WARM_CAPACITY,
        seed=5,
        engine="batch",
    )
    bu_trace.interned()
    result = benchmark.pedantic(
        lambda: run_simulation(config, bu_trace),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.metrics.requests == len(bu_trace)
    assert sum(s.evictions for s in result.cache_stats) > 0


def test_bench_batch_speedup_warm(bu_trace):
    """The ISSUE 8 acceptance bar: batch >= 3x columnar on the BU-scale
    *evicting* replay (cold already cleared 3x in PR 7). Same shape as
    ``test_bench_batch_speedup_cold``: best-of-three wall times, byte
    identity asserted alongside the timing, and a non-vacuity check that
    the workload really evicts at this capacity.
    """
    import time

    from repro.fastpath import simulate_batch, simulate_columnar

    config = SimulationConfig(
        scheme="ea", num_caches=4, aggregate_capacity=WARM_CAPACITY, seed=5
    )
    bu_trace.interned()

    def best_of(engine_fn):
        best, result = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            result = engine_fn(config, bu_trace)
            best = min(best, time.perf_counter() - start)
        return best, result

    batch_time, batch_result = best_of(simulate_batch)
    columnar_time, columnar_result = best_of(simulate_columnar)
    assert batch_result.to_json() == columnar_result.to_json()
    assert sum(s.evictions for s in batch_result.cache_stats) > 0
    speedup = columnar_time / batch_time
    print(f"\nbatch warm-regime speedup over columnar: {speedup:.2f}x")
    assert speedup >= 3.0, (
        f"batch engine {speedup:.2f}x over columnar on the evicting "
        f"BU-scale replay; acceptance bar is 3x"
    )


def test_bench_batch_speedup_cold(cold_trace):
    """The ISSUE's acceptance bar: batch >= 3x columnar on the benchmark
    workload. Best-of-three wall times (noise only ever adds time), same
    trace, same config; byte-identity is asserted alongside the timing.
    """
    import time

    from repro.fastpath import simulate_batch, simulate_columnar

    config = SimulationConfig(
        scheme="ea", num_caches=4, aggregate_capacity=1 << 30, seed=5
    )
    cold_trace.interned()

    def best_of(engine_fn):
        best, result = float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            result = engine_fn(config, cold_trace)
            best = min(best, time.perf_counter() - start)
        return best, result

    batch_time, batch_result = best_of(simulate_batch)
    columnar_time, columnar_result = best_of(simulate_columnar)
    assert batch_result.to_json() == columnar_result.to_json()
    speedup = columnar_time / batch_time
    print(f"\nbatch cold-regime speedup over columnar: {speedup:.2f}x")
    assert speedup >= 3.0, (
        f"batch engine {speedup:.2f}x over columnar; acceptance bar is 3x"
    )
