"""Benchmark: regenerate the 2/4/8-cache group-size results (Section 4.2)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments import group_size_sweep


def test_bench_group_size_sweep(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        group_size_sweep.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # Paper shape: EA's advantage exists for every group size and is larger
    # at small capacities than at large ones (6.5% at 100KB vs 2.5% at
    # 100MB for 8 caches).
    rows = report.rows
    by_size = {}
    for row in rows:
        by_size.setdefault(row[0], []).append(row)
    assert set(by_size) == {2, 4, 8}
    for size, size_rows in by_size.items():
        deltas = [row[4] for row in size_rows]  # hit_delta column
        assert max(deltas) >= 0, f"EA should not lose overall at N={size}"
        # Advantage concentrated at the contended (small) sizes.
        assert max(deltas[:3]) >= max(deltas[3:]) - 1e-9
