"""Instrumentation-overhead benchmarks for the observability layer.

The ``repro.obs`` contract is "near-zero overhead when disabled": running
through :func:`~repro.obs.session.run_observed` with no event sink must
cost within 2% of the plain engine call. These four benchmarks measure
baseline (plain) vs disabled-instrumentation runs for both engines on the
EA scheme; ``scripts/check_bench_regression.py --pair`` turns the
baseline/disabled ratio into a CI gate. Enabled-path cost (events to disk)
is deliberately *not* gated — it buys a full audit stream and is expected
to cost real time.

Workload and config match ``test_bench_throughput.py``'s end-to-end
benchmarks so the numbers are comparable across families.
"""

from __future__ import annotations

import pytest

from repro.obs.session import run_observed
from repro.simulation.simulator import SimulationConfig, run_simulation
from repro.trace import SyntheticTraceConfig, generate_trace

#: Pedantic rounds: far more than the throughput family's 3 because the
#: pair gate is 2%, not 20% — it reads the *best* of these rounds (noise
#: only adds time), which needs enough samples to converge under the bound.
ROUNDS = 25

OBJECT_CONFIG = SimulationConfig(
    scheme="ea", num_caches=4, aggregate_capacity=1 << 20, seed=5
)
COLUMNAR_CONFIG = SimulationConfig(
    scheme="ea", num_caches=4, aggregate_capacity=1 << 20, seed=5, engine="columnar"
)
BATCH_CONFIG = SimulationConfig(
    scheme="ea", num_caches=4, aggregate_capacity=1 << 20, seed=5, engine="batch"
)


@pytest.fixture(scope="module")
def obs_trace():
    trace = generate_trace(
        SyntheticTraceConfig(
            num_requests=5_000, num_documents=800, num_clients=16, seed=11
        )
    )
    # Pre-pay the one-off costs both paths can amortise, so the pair gate
    # compares steady-state request processing rather than first-call
    # setup: the manifest hashes the trace fingerprint (cached on the
    # trace) and the columnar engine interns once per trace.
    trace.fingerprint()
    trace.interned()
    return trace


def test_bench_obs_baseline_object(benchmark, obs_trace):
    """Plain object-engine run: the pair gate's reference point."""

    def run():
        return run_simulation(OBJECT_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)


def test_bench_obs_disabled_object(benchmark, obs_trace):
    """Observed object-engine run with no event sink (manifest only)."""

    def run():
        return run_observed(OBJECT_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)
    assert result.manifest is not None and result.manifest["events"] is None


def test_bench_obs_baseline_columnar(benchmark, obs_trace):
    """Plain columnar-engine run: the pair gate's reference point."""

    def run():
        return run_simulation(COLUMNAR_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)


def test_bench_obs_disabled_columnar(benchmark, obs_trace):
    """Observed columnar-engine run with no event sink (manifest only)."""

    def run():
        return run_observed(COLUMNAR_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)
    assert result.manifest is not None and result.manifest["events"] is None


def test_bench_obs_baseline_batch(benchmark, obs_trace):
    """Plain batch-engine run: the pair gate's reference point."""

    def run():
        return run_simulation(BATCH_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)


def test_bench_obs_disabled_batch(benchmark, obs_trace):
    """Observed batch run, no sinks: spans/timeseries guards disengaged.

    No event sink means the batch fast loop stays engaged (an attached
    observer would force the columnar fallback), so this measures the
    chunk-loop ``traced``/``sampling`` guards added for span tracing at
    their disabled setting — the near-zero-overhead claim for the
    tentpole instrumentation, gated at ≤2% against the baseline above.
    """

    def run():
        return run_observed(BATCH_CONFIG, obs_trace)

    result = benchmark.pedantic(run, rounds=ROUNDS, warmup_rounds=1, iterations=1)
    assert result.metrics.requests == len(obs_trace)
    assert result.manifest is not None and result.manifest["events"] is None
