"""Ablation benchmark: expiration age vs Average Document Life Time.

Section 3.1 argues the lifetime measure "doesn't accurately reflect the
cache contention"; this benchmark runs the EA machinery on both measures
at default scale so the claim is checked empirically, not rhetorically.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.ablations import run_measure_ablation


def test_bench_ablation_measure(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_measure_ablation,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    for row in report.rows:
        label, adhoc, expage, lifetime = row
        assert expage >= adhoc - 1e-9, f"EA (exp-age) loses at {label}"
        assert lifetime >= adhoc - 0.01, f"EA (lifetime) collapses at {label}"
        # The measures track each other closely under LRU (most victims
        # were never re-hit, so lifetime ≈ expiration age); a large gap
        # would signal an implementation bug rather than the paper's
        # predicted superiority.
        assert abs(expage - lifetime) < 0.03
