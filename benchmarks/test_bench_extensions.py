"""Benchmarks for the extension studies (beyond the paper's evaluation).

Each regenerates one extension artifact at default scale on a reduced
capacity grid (the contended region, where the comparisons are
informative) and records the rendered table under ``results/``.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.extensions import (
    run_baseline_comparison,
    run_locator_comparison,
    run_loss_resilience,
    run_prefetch_study,
)
from repro.experiments.multiseed import run_multi_seed_comparison
from repro.experiments.workload import capacities_for

CONTENDED = capacities_for("default")[:3]  # 100KB / 1MB / 10MB


def test_bench_ext_locator(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_locator_comparison,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        # Digests can never beat ICP on hit rate (they only lose remote
        # hits to staleness) but must cut protocol traffic.
        assert row[2] <= row[1] + 1e-9
        assert row[4] < row[3]


def test_bench_ext_baselines(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_baseline_comparison,
        kwargs={"trace": default_trace, "capacities": CONTENDED},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    # Hash routing has no replication, so at equal aggregate capacity its
    # *hit rate* should be at least ad-hoc's once contention bites…
    label, adhoc_hit, ea_hit, hash_hit = report.rows[1][:4]
    assert hash_hit >= adhoc_hit - 0.05
    # …but its latency suffers: nearly every hit pays the remote hop.
    assert report.rows[1][6] >= report.rows[1][5] - 50.0


def test_bench_ext_prefetch(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_prefetch_study,
        kwargs={"trace": default_trace, "capacities": CONTENDED[1:2]},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    for row in report.rows:
        assert 0.0 <= row[4] <= 1.0


def test_bench_ext_loss(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_loss_resilience,
        kwargs={"trace": default_trace, "loss_rates": (0.0, 0.1, 0.3)},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    lossless, *_rest, heavy = report.rows
    assert heavy[1] <= lossless[1] + 0.01
    assert heavy[2] <= lossless[2] + 0.01


def test_bench_multiseed(benchmark, results_dir):
    report = benchmark.pedantic(
        run_multi_seed_comparison,
        kwargs={"scale": "tiny", "num_seeds": 5},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())
    # EA's advantage should be statistically significant somewhere in the
    # contended region across seeds.
    assert any(row[4] for row in report.rows)
