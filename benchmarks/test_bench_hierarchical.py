"""Ablation benchmark: hierarchical architecture (Section 3.3, unevaluated).

The paper describes the EA scheme's hierarchical rules but never measures
them. This benchmark compares distributed vs hierarchical groups under both
schemes at the default workload. Expected: EA ≥ ad-hoc within each
architecture in the contended region.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments.ablations import run_architecture_ablation


def test_bench_hierarchical(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        run_architecture_ablation,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    for row in report.rows:
        label, adhoc_dist, ea_dist, adhoc_hier, ea_hier = row
        assert ea_dist >= adhoc_dist - 1e-6, f"EA loses (distributed) at {label}"
        for rate in (adhoc_dist, ea_dist, adhoc_hier, ea_hier):
            assert 0.0 <= rate <= 1.0
    # In the hierarchy, EA must win in the moderately contended region
    # (1MB / 10MB). At the pathological 100KB point (each cache holds ~5
    # documents) EA's strict parent-store rule can concentrate copies at a
    # thrashing parent and *lose* to ad-hoc — a regime the paper never
    # evaluated; EXPERIMENTS.md records the inversion.
    moderately_contended = report.rows[1:3]
    for row in moderately_contended:
        label, _ad, _ed, adhoc_hier, ea_hier = row
        assert ea_hier >= adhoc_hier - 0.01, f"EA loses (hierarchical) at {label}"
