"""Benchmark: regenerate Table 1 (average cache expiration age)."""

from __future__ import annotations

import math

from conftest import save_report

from repro.experiments import table1_expiration_age


def test_bench_table1_expiration_age(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        table1_expiration_age.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # Paper shape: EA's average cache expiration age exceeds ad-hoc's at
    # every contended size ("with EA scheme the documents stay for much
    # longer"), and ages grow with capacity for both schemes.
    adhoc = report.column("adhoc_exp_age_s")
    ea = report.column("ea_exp_age_s")
    finite_pairs = [
        (a, e) for a, e in zip(adhoc, ea) if not (math.isinf(a) or math.isinf(e))
    ]
    assert finite_pairs, "at least one capacity must produce evictions"
    assert all(e >= a for a, e in finite_pairs), (
        "EA must reduce contention (higher expiration age) at every size"
    )
    finite_adhoc = [a for a in adhoc if not math.isinf(a)]
    assert finite_adhoc == sorted(finite_adhoc), (
        "expiration age should grow with capacity"
    )
