"""Benchmark: regenerate Figure 2 (byte hit rates, 4-cache group)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments import fig2_byte_hit_rates


def test_bench_fig2_byte_hit_rates(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        fig2_byte_hit_rates.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # "Byte hit rate patterns are similar to those of document hit rates":
    # EA ahead overall, and clearly ahead in the contended region.
    deltas = report.column("ea_minus_adhoc")
    assert max(deltas) > 0, "EA should improve byte hit rate somewhere"
    contended = deltas[:3]
    assert max(contended) > 0.005, (
        "EA's byte-hit advantage should be visible at small cache sizes"
    )
    ea_rates = report.column("ea_byte_hit_rate")
    assert all(0.0 <= rate <= 1.0 for rate in ea_rates)
