"""Benchmark: regenerate Table 2 (local/remote hit breakdown + latency)."""

from __future__ import annotations

from conftest import save_report

from repro.experiments import table2_hit_breakdown


def test_bench_table2_hit_breakdown(benchmark, default_trace, results_dir):
    report = benchmark.pedantic(
        table2_hit_breakdown.run,
        kwargs={"trace": default_trace},
        rounds=1,
        iterations=1,
    )
    save_report(results_dir, report)
    print("\n" + report.render())

    # Paper shape: "the remote hit rates in the EA scheme are higher than
    # that of the ad-hoc scheme" at every capacity (EA declines short-lived
    # local copies, so more requests are served by siblings).
    ea_remote = report.column("ea_remote_%")
    adhoc_remote = report.column("adhoc_remote_%")
    assert all(e >= a for e, a in zip(ea_remote, adhoc_remote)), (
        "EA must raise the remote-hit rate"
    )
    # And correspondingly EA's local hit rate does not exceed ad-hoc's.
    ea_local = report.column("ea_local_%")
    adhoc_local = report.column("adhoc_local_%")
    assert all(e <= a + 1e-6 for e, a in zip(ea_local, adhoc_local))
    # Total hit rate (local + remote) must still favour EA.
    for e_l, e_r, a_l, a_r in zip(ea_local, ea_remote, adhoc_local, adhoc_remote):
        assert e_l + e_r >= a_l + a_r - 1e-6
