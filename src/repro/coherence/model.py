"""Document freshness models: TTLs and origin-side change processes.

The paper's related work points at "cache coherence mechanisms" as the
sibling problem to placement; this substrate lets the simulator study
placement under consistency traffic instead of assuming immutable
documents.

Two seeded, deterministic models:

* :class:`TTLModel` — how long a cached copy is considered fresh. Either a
  fixed TTL or a per-document value drawn (stably, from the URL hash) from
  a lognormal distribution, mimicking heterogeneous Expires headers.
* :class:`ChangeModel` — when the origin's copy actually changes. Each URL
  gets a stable change period; the document's *version* at time ``t`` is
  ``floor(t / period)``, so any two observers agree on versions without
  shared state.

A validation (If-Modified-Since) compares the cached version against the
current version: equal → 304 Not Modified; different → 200 with a new body.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional

from repro.errors import CacheConfigurationError


def _stable_unit(url: str, salt: str) -> float:
    """Deterministic uniform(0,1) from a URL (stable across processes)."""
    digest = hashlib.md5(f"{salt}:{url}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class TTLModel:
    """Freshness lifetimes for cached copies.

    Args:
        base_ttl: Median TTL in seconds.
        spread: Lognormal sigma for per-document variation; 0 = fixed TTL.
    """

    def __init__(self, base_ttl: float = 3600.0, spread: float = 0.0):
        if base_ttl <= 0:
            raise CacheConfigurationError("base_ttl must be positive")
        if spread < 0:
            raise CacheConfigurationError("spread must be non-negative")
        self.base_ttl = base_ttl
        self.spread = spread

    def ttl_for(self, url: str) -> float:
        """TTL in seconds for ``url`` (stable per URL)."""
        if self.spread == 0.0:
            return self.base_ttl
        # Inverse-normal via a rational approximation is overkill here;
        # a stable uniform mapped through exp() of a symmetric triangle
        # gives the intended heavy-ish spread deterministically.
        unit = _stable_unit(url, "ttl")
        offset = (unit - 0.5) * 2.0  # [-1, 1]
        return self.base_ttl * math.exp(self.spread * offset)


class ChangeModel:
    """Origin-side document change process.

    Args:
        mean_change_interval: Mean seconds between changes of a document.
        spread: Lognormal-ish per-document variation of the period; 0 =
            every document changes with the same period.
        immutable_fraction: Fraction of documents that never change.
    """

    def __init__(
        self,
        mean_change_interval: float = 86_400.0,
        spread: float = 1.0,
        immutable_fraction: float = 0.3,
    ):
        if mean_change_interval <= 0:
            raise CacheConfigurationError("mean_change_interval must be positive")
        if spread < 0:
            raise CacheConfigurationError("spread must be non-negative")
        if not 0.0 <= immutable_fraction <= 1.0:
            raise CacheConfigurationError("immutable_fraction must be in [0, 1]")
        self.mean_change_interval = mean_change_interval
        self.spread = spread
        self.immutable_fraction = immutable_fraction

    def period_for(self, url: str) -> float:
        """Change period of ``url`` in seconds; ``inf`` for immutable docs."""
        if _stable_unit(url, "immutable") < self.immutable_fraction:
            return math.inf
        if self.spread == 0.0:
            return self.mean_change_interval
        unit = _stable_unit(url, "period")
        offset = (unit - 0.5) * 2.0
        return self.mean_change_interval * math.exp(self.spread * offset)

    def version_at(self, url: str, now: float) -> int:
        """Version counter of ``url`` at time ``now`` (0 before any change)."""
        period = self.period_for(url)
        if math.isinf(period) or now < 0:
            return 0
        return int(now // period)

    def changed_between(self, url: str, fetched_at: float, now: float) -> bool:
        """Whether the origin copy changed in ``(fetched_at, now]``."""
        return self.version_at(url, now) != self.version_at(url, fetched_at)
