"""Cache coherence substrate: TTL freshness, change models, validation."""

from repro.coherence.group import (
    DEFAULT_VALIDATION_LATENCY,
    CoherenceStats,
    CoherentGroup,
)
from repro.coherence.model import ChangeModel, TTLModel

__all__ = [
    "ChangeModel",
    "CoherenceStats",
    "CoherentGroup",
    "DEFAULT_VALIDATION_LATENCY",
    "TTLModel",
]
