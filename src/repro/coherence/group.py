"""Coherent cooperative group: TTL freshness + If-Modified-Since validation.

Wraps the placement-aware request flow with the consistency layer real
proxies run (Squid-style TTL expiry and origin revalidation):

* A cached copy is **fresh** while ``now - fetched_at < ttl(url)``: hits on
  fresh copies behave exactly as in the base group.
* A **stale** copy triggers a validation round-trip to the origin:
  ``304 Not Modified`` (the common case) renews the copy's freshness and
  serves it — latency between a hit and a miss; ``200`` (the origin copy
  changed) refetches the body, replacing every group copy's staleness with
  a demand fetch at the requester — a *coherence miss*.

The wrapper keeps the base group's placement semantics untouched, so the
EA-vs-ad-hoc comparison stays apples-to-apples with coherence traffic
layered on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.architecture.base import CooperativeGroup
from repro.coherence.model import ChangeModel, TTLModel
from repro.core.outcomes import RequestOutcome
from repro.errors import CacheConfigurationError
from repro.network.latency import ServiceKind
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord

#: Default validation round-trip: an origin RTT without a body transfer.
DEFAULT_VALIDATION_LATENCY = 0.8


@dataclass
class CoherenceStats:
    """Counters for the consistency layer."""

    fresh_hits: int = 0
    validations: int = 0
    not_modified: int = 0
    coherence_misses: int = 0

    @property
    def validation_hit_rate(self) -> float:
        """Fraction of validations answered 304 (copy still valid)."""
        return self.not_modified / self.validations if self.validations else 0.0


class CoherentGroup:
    """Consistency wrapper around any cooperative group.

    Args:
        group: The placement-aware group serving requests.
        ttl_model: Freshness lifetimes.
        change_model: Origin change process.
        validation_latency: Seconds for an If-Modified-Since round-trip.
    """

    def __init__(
        self,
        group: CooperativeGroup,
        ttl_model: Optional[TTLModel] = None,
        change_model: Optional[ChangeModel] = None,
        validation_latency: float = DEFAULT_VALIDATION_LATENCY,
    ):
        if validation_latency < 0:
            raise CacheConfigurationError("validation_latency must be non-negative")
        self.group = group
        self.ttl_model = ttl_model if ttl_model is not None else TTLModel()
        self.change_model = change_model if change_model is not None else ChangeModel()
        self.validation_latency = validation_latency
        self.stats = CoherenceStats()
        # (cache_index, url) -> origin-fetch timestamp backing that copy.
        self._fetched_at: Dict[Tuple[int, str], float] = {}

    # ------------------------------------------------------------------ #
    # Freshness bookkeeping
    # ------------------------------------------------------------------ #

    def _record_copies(self, outcome: RequestOutcome, now: float) -> None:
        """Track origin-fetch times for copies created by this outcome."""
        if outcome.kind is ServiceKind.MISS:
            source_time = now
        elif outcome.responder is not None:
            source_time = self._fetched_at.get(
                (outcome.responder, outcome.url), now
            )
        else:
            return
        if outcome.stored_at_requester:
            self._fetched_at[(outcome.requester, outcome.url)] = source_time
        if outcome.kind is ServiceKind.MISS and outcome.responder is not None:
            # Hierarchical miss resolved through a parent that may have
            # kept a copy as well.
            self._fetched_at[(outcome.responder, outcome.url)] = source_time

    def _is_fresh(self, index: int, url: str, now: float) -> bool:
        fetched_at = self._fetched_at.get((index, url))
        if fetched_at is None:
            # Copy predates the wrapper (or provenance untracked): treat the
            # cache entry's own timestamp as the fetch time.
            entry = self.group.caches[index].get_entry(url)
            if entry is None:
                return False
            fetched_at = entry.entry_time
            self._fetched_at[(index, url)] = fetched_at
        return now - fetched_at < self.ttl_model.ttl_for(url)

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Serve one request with freshness checks layered on placement."""
        now = record.timestamp
        outcome = self.group.process(index, record)
        self._record_copies(outcome, now)
        if outcome.kind is ServiceKind.MISS:
            return outcome

        serving_cache = (
            outcome.requester
            if outcome.kind is ServiceKind.LOCAL_HIT
            else outcome.responder
        )
        assert serving_cache is not None
        if self._is_fresh(serving_cache, record.url, now):
            self.stats.fresh_hits += 1
            return outcome

        # Stale copy: validate with the origin.
        self.stats.validations += 1
        request = sim_http.HttpRequest(
            url=record.url, sender=self.group.caches[serving_cache].name
        )
        request.headers["If-Modified-Since"] = f"{self._fetched_at[(serving_cache, record.url)]:.3f}"
        self.group.bus.send_http_request(request)

        fetched_at = self._fetched_at[(serving_cache, record.url)]
        if not self.change_model.changed_between(record.url, fetched_at, now):
            # 304: renew freshness everywhere this copy's provenance is known.
            self.stats.not_modified += 1
            self.group.bus.send_http_response(
                sim_http.HttpResponse(url=record.url, status=304, body_size=0, sender="origin")
            )
            self._fetched_at[(serving_cache, record.url)] = now
            if outcome.stored_at_requester:
                self._fetched_at[(outcome.requester, record.url)] = now
            return RequestOutcome(
                timestamp=outcome.timestamp,
                requester=outcome.requester,
                url=outcome.url,
                size=outcome.size,
                kind=outcome.kind,
                responder=outcome.responder,
                latency=outcome.latency + self.validation_latency,
                stored_at_requester=outcome.stored_at_requester,
                responder_refreshed=outcome.responder_refreshed,
                requester_age=outcome.requester_age,
                responder_age=outcome.responder_age,
                hops=outcome.hops,
            )

        # 200: the document changed — a coherence miss. The body is
        # refetched from the origin and every tracked copy becomes current.
        self.stats.coherence_misses += 1
        self.group.bus.send_http_response(
            sim_http.HttpResponse(url=record.url, body_size=outcome.size, sender="origin")
        )
        for cache_index, cache in enumerate(self.group.caches):
            if record.url in cache:
                self._fetched_at[(cache_index, record.url)] = now
        miss_latency = self.group.latency_model.latency(ServiceKind.MISS, outcome.size)
        return RequestOutcome(
            timestamp=outcome.timestamp,
            requester=outcome.requester,
            url=outcome.url,
            size=outcome.size,
            kind=ServiceKind.MISS,
            responder=None,
            latency=miss_latency,
            stored_at_requester=outcome.stored_at_requester,
        )
