"""Distributed (flat) cooperative caching — the paper's evaluated setup.

"Cooperative caching architecture of these cache groups is distributed
cooperative caching. So all the caches in the group are at the same level of
hierarchy. For any misses in the cache group, it is assumed that the cache
where the request originated retrieves the document from the origin server."
(Section 4.1)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.architecture.base import CooperativeGroup
from repro.cache.store import ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import PlacementScheme
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.latency import LatencyModel, ServiceKind
from repro.network.topology import StarTopology
from repro.trace.record import TraceRecord


class DistributedGroup(CooperativeGroup):
    """Flat group of sibling caches probed via ICP on every local miss."""

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        scheme: PlacementScheme,
        latency_model: Optional[LatencyModel] = None,
        bus: Optional[MessageBus] = None,
        responder_strategy: str = "first",
        seed: int = 0,
        icp_loss_rate: float = 0.0,
    ):
        super().__init__(
            caches=caches,
            scheme=scheme,
            topology=StarTopology(len(caches)),
            latency_model=latency_model,
            bus=bus,
            responder_strategy=responder_strategy,
            seed=seed,
            icp_loss_rate=icp_loss_rate,
        )
        # Sibling sets are static; resolving them per miss is pure overhead.
        self._siblings = [
            tuple(self.topology.siblings_of(i)) for i in range(len(self.caches))
        ]

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Resolve one client request at cache ``index``.

        Local hit → serve. Local miss → ICP-probe every sibling; a positive
        reply triggers the remote-hit exchange (with the scheme's placement
        decisions); all-negative triggers an origin fetch stored locally.
        """
        if record.size <= 0:
            raise SimulationError(
                f"record for {record.url!r} has non-positive size; patch the trace first"
            )
        now = record.timestamp
        cache = self.caches[index]

        entry = cache.lookup(record.url, now)
        if entry is not None:
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=entry.size,
                kind=ServiceKind.LOCAL_HIT,
                latency=self._latency(ServiceKind.LOCAL_HIT, entry.size),
            )

        holders = self._icp_probe(index, self._siblings[index], record.url)
        if holders:
            responder = self._choose_responder(holders, now)
            document, audit = self._remote_fetch(index, responder, record.url, now)
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=document.size,
                kind=ServiceKind.REMOTE_HIT,
                responder=responder,
                latency=self._latency(ServiceKind.REMOTE_HIT, document.size),
                stored_at_requester=audit.stored_at_requester,
                responder_refreshed=audit.responder_refreshed,
                requester_age=audit.requester_age,
                responder_age=audit.responder_age,
            )

        stored = self._origin_fetch(index, record.url, record.size, now)
        return RequestOutcome(
            timestamp=now,
            requester=index,
            url=record.url,
            size=record.size,
            kind=ServiceKind.MISS,
            latency=self._latency(ServiceKind.MISS, record.size),
            stored_at_requester=stored,
        )
