"""Cooperative cache group architectures: distributed (flat) and hierarchical."""

from repro.architecture.base import (
    RESPONDER_STRATEGIES,
    CooperativeGroup,
    RemoteHitAudit,
    build_caches,
)
from repro.architecture.distributed import DistributedGroup
from repro.architecture.hashrouted import HashRoutedGroup
from repro.architecture.hierarchical import HierarchicalGroup

__all__ = [
    "CooperativeGroup",
    "DistributedGroup",
    "HashRoutedGroup",
    "HierarchicalGroup",
    "RESPONDER_STRATEGIES",
    "RemoteHitAudit",
    "build_caches",
]
