"""Hash-routed cooperative caching — a zero-replication baseline.

Consistent-hashing cooperation (Karger et al., CARP-style) assigns each URL
one *home* cache; a proxy receiving a client request forwards it straight to
the home cache — no ICP, no replication, perfect aggregate-disk efficiency,
but every non-home request pays the inter-proxy hop even for the hottest
documents.

This is the opposite design point from ad-hoc's replicate-everywhere, which
makes it a useful third baseline around the EA scheme's middle ground: EA
should beat hash routing on latency for hot documents (local copies exist
where they pay off) while approaching its aggregate-disk efficiency.

Request flow at proxy ``i`` for URL ``u`` with home ``h(u)``:

* ``i == h(u)``: local lookup; miss → origin fetch stored at home.
* ``i != h(u)``: forward to ``h(u)`` (one HTTP round-trip); home hit →
  remote hit; home miss → home fetches origin, stores, relays → miss.

The placement scheme is fixed by the architecture (store at home only), so
no ``PlacementScheme`` is taken.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.architecture.base import CooperativeGroup
from repro.cache.document import Document
from repro.cache.store import ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import AdHocScheme
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.consistent_hash import ConsistentHashRing
from repro.network.latency import LatencyModel, ServiceKind
from repro.network.topology import StarTopology
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord


class HashRoutedGroup(CooperativeGroup):
    """Consistent-hash-routed group (no ICP, no replication)."""

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        latency_model: Optional[LatencyModel] = None,
        bus: Optional[MessageBus] = None,
        ring_replicas: int = 64,
        seed: int = 0,
    ):
        super().__init__(
            caches=caches,
            # Placement is architectural here; AdHocScheme only fills the
            # slot for the base class's unused hooks.
            scheme=AdHocScheme(),
            topology=StarTopology(len(caches)),
            latency_model=latency_model,
            bus=bus,
            seed=seed,
        )
        self.ring = ConsistentHashRing(range(len(caches)), replicas=ring_replicas)

    def home_of(self, url: str) -> int:
        """The cache index owning ``url``."""
        return self.ring.node_for(url)

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Resolve one client request via hash routing."""
        if record.size <= 0:
            raise SimulationError(
                f"record for {record.url!r} has non-positive size; patch the trace first"
            )
        now = record.timestamp
        home = self.home_of(record.url)

        if home == index:
            entry = self.caches[index].lookup(record.url, now)
            if entry is not None:
                return RequestOutcome(
                    timestamp=now,
                    requester=index,
                    url=record.url,
                    size=entry.size,
                    kind=ServiceKind.LOCAL_HIT,
                    latency=self._latency(ServiceKind.LOCAL_HIT, entry.size),
                )
            stored = self._origin_fetch(index, record.url, record.size, now)
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=record.size,
                kind=ServiceKind.MISS,
                latency=self._latency(ServiceKind.MISS, record.size),
                stored_at_requester=stored,
            )

        # Forward to the home cache. The requester's local stats record the
        # lookup so per-cache accounting still balances.
        self.caches[index].lookup(record.url, now)
        request = sim_http.HttpRequest(url=record.url, sender=self.caches[index].name)
        self.bus.send_http_request(request)

        home_cache = self.caches[home]
        entry = home_cache.serve_remote(record.url, now, refresh=True)
        if entry is not None:
            self.bus.send_http_response(
                sim_http.HttpResponse(
                    url=record.url, body_size=entry.size, sender=home_cache.name
                )
            )
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=entry.size,
                kind=ServiceKind.REMOTE_HIT,
                responder=home,
                latency=self._latency(ServiceKind.REMOTE_HIT, entry.size),
            )

        # Home miss: home fetches from origin, stores, relays downstream.
        origin_request = sim_http.HttpRequest(url=record.url, sender=home_cache.name)
        self.bus.send_http_request(origin_request)
        self.bus.send_http_response(
            sim_http.HttpResponse(url=record.url, body_size=record.size, sender="origin")
        )
        home_cache.admit(Document(record.url, record.size), now)
        self.bus.send_http_response(
            sim_http.HttpResponse(
                url=record.url, body_size=record.size, sender=home_cache.name
            )
        )
        return RequestOutcome(
            timestamp=now,
            requester=index,
            url=record.url,
            size=record.size,
            kind=ServiceKind.MISS,
            responder=home,
            latency=self._latency(ServiceKind.MISS, record.size),
        )
