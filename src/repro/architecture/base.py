"""Shared machinery for cooperative cache groups.

A :class:`CooperativeGroup` owns N proxy caches, a placement scheme, a
topology, a latency model and a message bus, and exposes one operation —
:meth:`CooperativeGroup.process` — that resolves a client request exactly
the way the paper's Section 3.3 walks through it: local lookup, ICP probe,
HTTP fetch from a responder or the origin, and the scheme's placement
decisions on the way back.

Subclasses (:class:`~repro.architecture.distributed.DistributedGroup`,
:class:`~repro.architecture.hierarchical.HierarchicalGroup`) differ only in
who gets probed and how group-wide misses escalate.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.cache.document import Document
from repro.cache.admission import make_admission
from repro.cache.expiration import ExpirationAgeTracker
from repro.cache.replacement import make_policy
from repro.cache.store import ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import PlacementScheme
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.latency import ConstantLatencyModel, LatencyModel, ServiceKind
from repro.network.topology import Topology
from repro.protocol import http as sim_http
from repro.protocol import icp
from repro.trace.record import TraceRecord

#: Responder-selection strategies for when several siblings hold a document.
RESPONDER_STRATEGIES = ("first", "random", "max_age")


class CooperativeGroup:
    """Base class for cooperative cache groups.

    Args:
        caches: The member proxy caches (index == topology index).
        scheme: Placement scheme making store/refresh decisions.
        topology: Who is sibling/parent of whom.
        latency_model: Maps service kinds to seconds.
        bus: Message accounting bus (a fresh one if omitted).
        responder_strategy: Which holder serves a remote hit when several
            reply positively: ``"first"`` (lowest index — deterministic
            stand-in for "first ICP reply"), ``"random"`` (seeded), or
            ``"max_age"`` (holder with the highest expiration age — an
            EA-flavoured extension, not in the paper).
        seed: Seed for the random responder strategy and loss injection.
        icp_loss_rate: Probability that an individual ICP reply datagram is
            lost (ICP rides UDP). A lost positive reply makes the requester
            believe that peer misses — a *false miss* — so it may fetch from
            the origin despite a group copy existing. 0.0 (default) models
            the paper's lossless LAN.
    """

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        scheme: PlacementScheme,
        topology: Topology,
        latency_model: Optional[LatencyModel] = None,
        bus: Optional[MessageBus] = None,
        responder_strategy: str = "first",
        seed: int = 0,
        icp_loss_rate: float = 0.0,
    ):
        if len(caches) != topology.num_caches:
            raise SimulationError(
                f"{len(caches)} caches but topology declares {topology.num_caches}"
            )
        if responder_strategy not in RESPONDER_STRATEGIES:
            raise SimulationError(
                f"responder_strategy must be one of {RESPONDER_STRATEGIES}, "
                f"got {responder_strategy!r}"
            )
        if not 0.0 <= icp_loss_rate <= 1.0:
            raise SimulationError(
                f"icp_loss_rate must be within [0, 1], got {icp_loss_rate}"
            )
        self.icp_loss_rate = icp_loss_rate
        #: ICP replies dropped by loss injection (false misses may follow).
        self.icp_replies_lost = 0
        self.caches: List[ProxyCache] = list(caches)
        self.scheme = scheme
        self.topology = topology
        self.latency_model = latency_model if latency_model is not None else ConstantLatencyModel()
        self.bus = bus if bus is not None else MessageBus()
        self.responder_strategy = responder_strategy
        #: Optional :class:`repro.obs.events.RunRecorder`; when set, the
        #: protocol steps below emit placement/promotion events at the
        #: exact decision points. Reporting only — never consulted for
        #: behaviour.
        self.observer = None
        self._rng = random.Random(seed)
        self._request_number = 0

    # ------------------------------------------------------------------ #
    # Request entry point
    # ------------------------------------------------------------------ #

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Resolve the client request in ``record`` arriving at cache ``index``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared protocol steps
    # ------------------------------------------------------------------ #

    def _next_request_number(self) -> int:
        self._request_number = (self._request_number + 1) % 0xFFFFFFFF
        return self._request_number

    def _icp_probe(self, requester: int, targets: Sequence[int], url: str) -> List[int]:
        """Send an ICP query to every target; return indices that hold ``url``.

        One query datagram per neighbour plus one reply each — identical
        message counts for both schemes, which is how the bus substantiates
        the paper's zero-overhead claim. The exchange is accounted in bulk
        via :meth:`MessageBus.count_icp_probe` rather than one datagram
        object per neighbour; counters and holder sets are identical to the
        datagram-by-datagram path.
        """
        self._next_request_number()
        holders: List[int] = []
        caches = self.caches
        loss_rate = self.icp_loss_rate
        for target in targets:
            has_doc = url in caches[target]
            if loss_rate and self._rng.random() < loss_rate:
                # The reply left the responder but never reached the
                # requester; the requester treats this peer as a miss.
                self.icp_replies_lost += 1
                continue
            if has_doc:
                holders.append(target)
        self.bus.count_icp_probe(
            len(targets), icp.query_wire_length(url), icp.reply_wire_length(url)
        )
        return holders

    def _choose_responder(self, holders: Sequence[int], now: float) -> int:
        """Pick which positive replier serves the remote hit."""
        if not holders:
            raise SimulationError("cannot choose a responder from no holders")
        if self.responder_strategy == "first":
            return min(holders)
        if self.responder_strategy == "random":
            return self._rng.choice(list(holders))
        return max(holders, key=lambda i: self.caches[i].expiration_age(now))

    def _remote_fetch(
        self, requester: int, responder: int, url: str, now: float
    ) -> Tuple[Document, "RemoteHitAudit"]:
        """Full remote-hit exchange: HTTP request + response with EA piggyback.

        The requester's expiration age rides the request; the responder's
        rides the response (Section 3.3). The scheme decides storage and
        refresh; this method applies the responder side (refresh or not)
        and admission at the requester.
        """
        requester_cache = self.caches[requester]
        responder_cache = self.caches[responder]
        resident = responder_cache.get_entry(url)
        if resident is None:
            raise SimulationError(
                f"responder {responder} lost {url!r} between ICP reply and HTTP fetch"
            )
        decision = self.scheme.remote_hit(
            requester_cache, responder_cache, now, size=resident.size
        )

        request = sim_http.HttpRequest(url=url, sender=requester_cache.name)
        request.with_expiration_age(decision.requester_age)
        self.bus.send_http_request(request)

        entry = responder_cache.serve_remote(url, now, refresh=decision.refresh_responder)
        assert entry is not None  # checked above
        response = sim_http.HttpResponse(
            url=url, body_size=entry.size, sender=responder_cache.name
        )
        response.with_expiration_age(decision.responder_age)
        self.bus.send_http_response(response)

        obs = self.observer
        if obs is not None:
            obs.promotion(
                now,
                responder,
                url,
                decision.requester_age,
                decision.responder_age,
                decision.refresh_responder,
            )
        document = entry.document
        stored = False
        if decision.store_at_requester:
            stored = requester_cache.admit(document, now).admitted
        else:
            requester_cache.stats.placements_declined += 1
        if obs is not None:
            obs.placement_remote(
                now,
                requester,
                url,
                entry.size,
                decision.requester_age,
                decision.responder_age,
                stored,
                decision.refresh_responder,
            )
        return document, RemoteHitAudit(
            stored_at_requester=stored,
            responder_refreshed=decision.refresh_responder,
            requester_age=decision.requester_age,
            responder_age=decision.responder_age,
        )

    def _origin_fetch(self, requester: int, url: str, size: int, now: float) -> bool:
        """Fetch ``url`` from the origin server into cache ``requester``.

        Returns whether a copy was stored (the scheme decides; both schemes
        store at the requester on a distributed-architecture miss).
        """
        requester_cache = self.caches[requester]
        request = sim_http.HttpRequest(url=url, sender=requester_cache.name)
        self.bus.send_http_request(request)
        response = sim_http.HttpResponse(url=url, body_size=size, sender="origin")
        self.bus.send_http_response(response)
        decision = self.scheme.origin_fetch(requester_cache, now)
        stored = False
        if decision.store:
            stored = requester_cache.admit(Document(url, size), now).admitted
        else:
            requester_cache.stats.placements_declined += 1
        obs = self.observer
        if obs is not None:
            obs.placement_origin(now, requester, url, size, decision.own_age, stored)
        return stored

    def _latency(self, kind: ServiceKind, size: int) -> float:
        return self.latency_model.latency(kind, size)

    # ------------------------------------------------------------------ #
    # Group-level introspection
    # ------------------------------------------------------------------ #

    def expiration_ages(self, now: Optional[float] = None) -> List[float]:
        """Each member cache's expiration age."""
        return [cache.expiration_age(now) for cache in self.caches]

    def unique_documents(self) -> int:
        """Distinct URLs cached anywhere in the group."""
        urls = set()
        for cache in self.caches:
            urls.update(cache.urls())
        return len(urls)

    def total_copies(self) -> int:
        """Total cached entries across the group (counting replicas)."""
        return sum(len(cache) for cache in self.caches)

    def replication_factor(self) -> float:
        """Mean copies per distinct cached document (1.0 = no replication)."""
        unique = self.unique_documents()
        if unique == 0:
            return 0.0
        return self.total_copies() / unique


class RemoteHitAudit:
    """Audit data produced by :meth:`CooperativeGroup._remote_fetch`."""

    __slots__ = (
        "stored_at_requester",
        "responder_refreshed",
        "requester_age",
        "responder_age",
    )

    def __init__(
        self,
        stored_at_requester: bool,
        responder_refreshed: bool,
        requester_age: float,
        responder_age: float,
    ):
        self.stored_at_requester = stored_at_requester
        self.responder_refreshed = responder_refreshed
        self.requester_age = requester_age
        self.responder_age = responder_age


def build_caches(
    num_caches: int,
    aggregate_capacity: int,
    policy_name: str = "lru",
    window_mode: str = "count",
    window_size: int = 1000,
    window_seconds: float = 3600.0,
    policy_kwargs: Optional[dict] = None,
    capacity_shares: Optional[Sequence[float]] = None,
    admission_name: Optional[str] = None,
    admission_kwargs: Optional[dict] = None,
    contention_measure: Optional[str] = None,
) -> List[ProxyCache]:
    """Construct a group's caches splitting ``aggregate_capacity``.

    By default each cache gets the equal X/N share the paper uses
    (Section 4.1). Pass ``capacity_shares`` — positive weights, one per
    cache — for heterogeneous groups (a small departmental proxy next to a
    big one); weights are normalised, so ``[1, 3]`` gives a 25 %/75 % split.

    ``contention_measure`` overrides the tracker's scoring formula
    (normally derived from the replacement policy): pass ``"lifetime"`` to
    run the EA machinery on Section 3.1's rejected Average Document Life
    Time measure (the ``ablation-measure`` experiment).
    """
    if num_caches <= 0:
        raise SimulationError("num_caches must be positive")
    if capacity_shares is None:
        weights = [1.0] * num_caches
    else:
        if len(capacity_shares) != num_caches:
            raise SimulationError(
                f"capacity_shares has {len(capacity_shares)} entries for "
                f"{num_caches} caches"
            )
        if any(share <= 0 for share in capacity_shares):
            raise SimulationError("capacity_shares must all be positive")
        weights = list(capacity_shares)
    total_weight = sum(weights)
    capacities = [int(aggregate_capacity * w / total_weight) for w in weights]
    if any(capacity <= 0 for capacity in capacities):
        raise SimulationError(
            f"aggregate capacity {aggregate_capacity} too small for "
            f"{num_caches} caches with shares {weights}"
        )
    caches = []
    for i, capacity in enumerate(capacities):
        policy = make_policy(policy_name, **(policy_kwargs or {}))
        tracker = ExpirationAgeTracker(
            kind=contention_measure or policy.expiration_age_kind,
            window_mode=window_mode,
            window_size=window_size,
            window_seconds=window_seconds,
        )
        admission = (
            make_admission(admission_name, **(admission_kwargs or {}))
            if admission_name is not None
            else None
        )
        caches.append(
            ProxyCache(
                capacity,
                policy=policy,
                tracker=tracker,
                name=f"cache{i}",
                admission=admission,
            )
        )
    return caches
