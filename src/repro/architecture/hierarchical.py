"""Hierarchical cooperative caching (paper Section 3.3, second half).

Leaves receive client requests. On a local miss a leaf ICP-probes its
siblings *and* its parent; if every probe is negative the leaf sends an HTTP
request — carrying its cache expiration age — up to its parent, which is now
"responsible to resolve the miss": it serves from its own cache if it can,
otherwise recurses toward the origin through its own parent, and on the way
back down each node applies the scheme's parent-store rule before forwarding
the document with its own expiration age piggybacked.

Chain semantics (the paper only spells out one parent level): every HTTP hop
carries the *sender's* expiration age, and every node compares itself to the
age on the request it received — i.e. to its immediate child. This is the
natural composition of the paper's two-node rule and is documented as a
design decision in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.architecture.base import CooperativeGroup
from repro.cache.document import Document
from repro.cache.store import ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import PlacementScheme
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.latency import LatencyModel, ServiceKind
from repro.network.topology import TreeTopology
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord


class HierarchicalGroup(CooperativeGroup):
    """Tree-structured cooperative cache group."""

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        scheme: PlacementScheme,
        topology: TreeTopology,
        latency_model: Optional[LatencyModel] = None,
        bus: Optional[MessageBus] = None,
        responder_strategy: str = "first",
        seed: int = 0,
        icp_loss_rate: float = 0.0,
    ):
        if not isinstance(topology, TreeTopology):
            raise SimulationError("HierarchicalGroup requires a TreeTopology")
        super().__init__(
            caches=caches,
            scheme=scheme,
            topology=topology,
            latency_model=latency_model,
            bus=bus,
            responder_strategy=responder_strategy,
            seed=seed,
            icp_loss_rate=icp_loss_rate,
        )

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Resolve one client request at cache ``index`` (normally a leaf)."""
        if record.size <= 0:
            raise SimulationError(
                f"record for {record.url!r} has non-positive size; patch the trace first"
            )
        now = record.timestamp
        cache = self.caches[index]

        entry = cache.lookup(record.url, now)
        if entry is not None:
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=entry.size,
                kind=ServiceKind.LOCAL_HIT,
                latency=self._latency(ServiceKind.LOCAL_HIT, entry.size),
            )

        # "A cache that experiences a local miss sends out an ICP query to
        # all its siblings and parents."
        probe_targets = list(self.topology.siblings_of(index))
        parent = self.topology.parent_of(index)
        if parent is not None:
            probe_targets.append(parent)
        holders = self._icp_probe(index, probe_targets, record.url)

        if holders:
            responder = self._choose_responder(holders, now)
            document, audit = self._remote_fetch(index, responder, record.url, now)
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=document.size,
                kind=ServiceKind.REMOTE_HIT,
                responder=responder,
                latency=self._latency(ServiceKind.REMOTE_HIT, document.size),
                stored_at_requester=audit.stored_at_requester,
                responder_refreshed=audit.responder_refreshed,
                requester_age=audit.requester_age,
                responder_age=audit.responder_age,
                hops=1,
            )

        if parent is None:
            # Top-level miss: fetch from origin directly (distributed rule).
            stored = self._origin_fetch(index, record.url, record.size, now)
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=record.size,
                kind=ServiceKind.MISS,
                latency=self._latency(ServiceKind.MISS, record.size),
                stored_at_requester=stored,
            )

        requester_age = cache.expiration_age(now)
        request = sim_http.HttpRequest(url=record.url, sender=cache.name)
        request.with_expiration_age(requester_age)
        self.bus.send_http_request(request)

        document, found_at, upstream_age, hops = self._resolve_at(
            parent, record.url, record.size, requester_age, now
        )

        child_decision = self.scheme.child_store(cache, upstream_age, now)
        stored = False
        if child_decision.store:
            stored = cache.admit(document, now).admitted
        else:
            cache.stats.placements_declined += 1
        obs = self.observer
        if obs is not None:
            obs.placement_node(
                now,
                "child",
                index,
                record.url,
                document.size,
                child_decision.own_age,
                upstream_age,
                stored,
            )

        kind = ServiceKind.REMOTE_HIT if found_at is not None else ServiceKind.MISS
        return RequestOutcome(
            timestamp=now,
            requester=index,
            url=record.url,
            size=document.size,
            kind=kind,
            responder=found_at,
            latency=self._latency(kind, document.size),
            stored_at_requester=stored,
            requester_age=requester_age,
            responder_age=upstream_age,
            hops=hops,
        )

    def _resolve_at(
        self, node_index: int, url: str, size: int, requester_age: float, now: float
    ) -> Tuple[Document, Optional[int], float, int]:
        """Resolve a miss at ``node_index`` on behalf of a downstream cache.

        Returns ``(document, found_at, node_age, hops)`` where ``found_at``
        is the index of the cache that held the document (None → origin)
        and ``node_age`` is this node's expiration age, piggybacked on its
        HTTP response to the child.
        """
        node = self.caches[node_index]

        if url in node:
            refresh = self.scheme.serve_refresh(node, requester_age, now)
            entry = node.serve_remote(url, now, refresh=refresh)
            assert entry is not None  # guarded by the membership check
            node_age = node.expiration_age(now)
            response = sim_http.HttpResponse(url=url, body_size=entry.size, sender=node.name)
            response.with_expiration_age(node_age)
            self.bus.send_http_response(response)
            obs = self.observer
            if obs is not None:
                obs.promotion(now, node_index, url, requester_age, node_age, refresh)
            return entry.document, node_index, node_age, 1

        grandparent = self.topology.parent_of(node_index)
        node_age = node.expiration_age(now)
        if grandparent is None:
            # Root of the hierarchy: retrieve from the origin server.
            origin_request = sim_http.HttpRequest(url=url, sender=node.name)
            self.bus.send_http_request(origin_request)
            origin_response = sim_http.HttpResponse(url=url, body_size=size, sender="origin")
            self.bus.send_http_response(origin_response)
            document = Document(url, size)
            found_at: Optional[int] = None
            hops = 1
        else:
            request = sim_http.HttpRequest(url=url, sender=node.name)
            request.with_expiration_age(node_age)
            self.bus.send_http_request(request)
            document, found_at, _upstream_age, above = self._resolve_at(
                grandparent, url, size, node_age, now
            )
            hops = above + 1

        decision = self.scheme.parent_store(node, requester_age, now)
        stored_here = False
        if decision.store:
            stored_here = node.admit(document, now).admitted
        else:
            node.stats.placements_declined += 1
        obs = self.observer
        if obs is not None:
            obs.placement_node(
                now,
                "parent",
                node_index,
                url,
                document.size,
                decision.own_age,
                requester_age,
                stored_here,
            )
        node_age = node.expiration_age(now)
        response = sim_http.HttpResponse(url=url, body_size=document.size, sender=node.name)
        response.with_expiration_age(node_age)
        self.bus.send_http_response(response)
        return document, found_at, node_age, hops
