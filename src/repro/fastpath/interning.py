"""Trace interning: map URLs and client ids to dense integers.

The object core keys every cache structure by URL string; each request
pays string hashing several times over (lookup, probe, policy order,
entry table). Interning assigns every distinct URL a dense ``doc id``
(first-appearance order) once, after which the replay loop works purely
with list indices. Clients intern the same way, which also makes the
round-robin-client partitioner a modulo over the client id.

Derived per-document columns that the protocol accounting needs — UTF-8
URL byte length and the ICP query+reply datagram size — are precomputed
here from the real protocol functions, so the engine never touches a URL
string during replay.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.protocol import icp
from repro.protocol.http import _utf8_length
from repro.trace.record import TraceRecord


class InternedTrace:
    """Columnar view of a trace: parallel per-request and per-doc columns.

    Per-request columns (index = request position in the trace):

    * ``doc_ids`` — dense document id of the requested URL.
    * ``sizes`` — raw record size in bytes (zero-size records *not* patched;
      patching is a per-run config concern, see the engine).
    * ``timestamps`` — request arrival time.
    * ``clients`` — dense client id.

    Per-document columns (index = doc id):

    * ``urls`` — the interned URL strings (id -> URL).
    * ``url_lens`` — UTF-8 byte length of each URL.
    * ``icp_probe_bytes`` — ICP query + reply datagram bytes for one probe
      of this URL (:func:`repro.protocol.icp.query_wire_length` +
      :func:`~repro.protocol.icp.reply_wire_length`).

    Per-client column (index = client id): ``client_names``.
    """

    __slots__ = (
        "doc_ids",
        "sizes",
        "timestamps",
        "clients",
        "urls",
        "url_lens",
        "icp_probe_bytes",
        "client_names",
        "num_records",
        "num_docs",
        "num_clients",
        "has_zero_sizes",
    )

    def __init__(
        self,
        doc_ids: List[int],
        sizes: List[int],
        timestamps: List[float],
        clients: List[int],
        urls: List[str],
        client_names: List[str],
    ):
        self.doc_ids = doc_ids
        self.sizes = sizes
        self.timestamps = timestamps
        self.clients = clients
        self.urls = urls
        self.client_names = client_names
        self.url_lens = [_utf8_length(url) for url in urls]
        self.icp_probe_bytes = [
            icp.query_wire_length(url) + icp.reply_wire_length(url) for url in urls
        ]
        self.num_records = len(doc_ids)
        self.num_docs = len(urls)
        self.num_clients = len(client_names)
        self.has_zero_sizes = 0 in sizes

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "InternedTrace":
        """Intern ``records`` in order; ids follow first appearance."""
        doc_index: dict = {}
        client_index: dict = {}
        urls: List[str] = []
        client_names: List[str] = []
        doc_ids: List[int] = []
        sizes: List[int] = []
        timestamps: List[float] = []
        clients: List[int] = []
        for record in records:
            url = record.url
            doc = doc_index.get(url)
            if doc is None:
                doc = len(urls)
                doc_index[url] = doc
                urls.append(url)
            client_name = record.client_id
            client = client_index.get(client_name)
            if client is None:
                client = len(client_names)
                client_index[client_name] = client
                client_names.append(client_name)
            doc_ids.append(doc)
            sizes.append(record.size)
            timestamps.append(record.timestamp)
            clients.append(client)
        return cls(doc_ids, sizes, timestamps, clients, urls, client_names)
