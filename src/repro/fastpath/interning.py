"""Trace interning: map URLs and client ids to dense integers.

The object core keys every cache structure by URL string; each request
pays string hashing several times over (lookup, probe, policy order,
entry table). Interning assigns every distinct URL a dense ``doc id``
(first-appearance order) once, after which the replay loop works purely
with list indices. Clients intern the same way, which also makes the
round-robin-client partitioner a modulo over the client id.

Derived per-document columns that the protocol accounting needs — UTF-8
URL byte length and the ICP query+reply datagram size — are precomputed
here from the real protocol functions, so the engine never touches a URL
string during replay.

Derived *per-run* columns (patched record sizes, Content-Length digit
counts, the partitioner's leaf assignment) are memoised per parameter set
on the interned trace itself: a sweep replays the same trace at many
capacities, and recomputing an O(n) column per point was measurable
(both replay engines consume these caches).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.protocol import icp
from repro.protocol.http import _utf8_length
from repro.trace.record import TraceRecord


def client_leaf_positions(client_names: Sequence[str], num_leaves: int) -> List[int]:
    """Leaf *position* (0..num_leaves-1) per interned client id.

    The hash partitioner's assignment, computed once per distinct client:
    the first 8 bytes of the URL-less MD5 of the client name, big-endian,
    modulo the leaf count — the same arithmetic as
    ``repro.architecture.partition.HashPartitioner``.
    """
    return [
        int.from_bytes(hashlib.md5(name.encode("utf-8")).digest()[:8], "big")
        % num_leaves
        for name in client_names
    ]


class InternedTrace:
    """Columnar view of a trace: parallel per-request and per-doc columns.

    Per-request columns (index = request position in the trace):

    * ``doc_ids`` — dense document id of the requested URL.
    * ``sizes`` — raw record size in bytes (zero-size records *not* patched;
      patching is a per-run config concern, see the engine).
    * ``timestamps`` — request arrival time.
    * ``clients`` — dense client id.

    Per-document columns (index = doc id):

    * ``urls`` — the interned URL strings (id -> URL).
    * ``url_lens`` — UTF-8 byte length of each URL.
    * ``icp_probe_bytes`` — ICP query + reply datagram bytes for one probe
      of this URL (:func:`repro.protocol.icp.query_wire_length` +
      :func:`~repro.protocol.icp.reply_wire_length`).

    Per-client column (index = client id): ``client_names``.
    """

    __slots__ = (
        "doc_ids",
        "sizes",
        "timestamps",
        "clients",
        "urls",
        "url_lens",
        "icp_probe_bytes",
        "client_names",
        "num_records",
        "num_docs",
        "num_clients",
        "has_zero_sizes",
        "_derived",
    )

    # Whole-trace columns are indexed by global request position; the
    # per-doc tables are indexed by the dense interned id.
    # repro: domains[doc_ids=global-seq->interned-id, sizes=global-seq->byte-size]
    # repro: domains[timestamps=global-seq->age-tick, clients=global-seq->any]
    # repro: domains[urls=interned-id->any]
    def __init__(
        self,
        doc_ids: List[int],
        sizes: List[int],
        timestamps: List[float],
        clients: List[int],
        urls: List[str],
        client_names: List[str],
    ):
        self.doc_ids = doc_ids
        self.sizes = sizes
        self.timestamps = timestamps
        self.clients = clients
        self.urls = urls
        self.client_names = client_names
        self.url_lens = [_utf8_length(url) for url in urls]
        self.icp_probe_bytes = [
            icp.query_wire_length(url) + icp.reply_wire_length(url) for url in urls
        ]
        self.num_records = len(doc_ids)
        self.num_docs = len(urls)
        self.num_clients = len(client_names)
        self.has_zero_sizes = 0 in sizes
        # Memoised per-run derived columns, keyed by the parameters that
        # shape them (patch size, partitioner + leaf layout, engine-private
        # keys). Shared by both replay engines and the batch precompute.
        self._derived: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------ #
    # Cached per-run columns
    # ------------------------------------------------------------------ #

    # repro: domains[patch_size=byte-size, cached=global-seq->byte-size]
    def record_sizes(self, patch_size: int) -> List[int]:
        """Per-request sizes with zero-size records patched to ``patch_size``.

        Cached per patch size; traces without zero-size records share the
        raw ``sizes`` column unmodified.
        """
        if not self.has_zero_sizes:
            return self.sizes
        key = ("record_sizes", patch_size)
        cached = self._derived.get(key)
        if cached is None:
            cached = [patch_size if size == 0 else size for size in self.sizes]
            self._derived[key] = cached
        return cached  # type: ignore[return-value]

    # repro: domains[patch_size=byte-size]
    def size_digits(self, patch_size: int) -> List[int]:
        """Content-Length digit count per request (origin-response header)."""
        key = ("size_digits", patch_size)
        cached = self._derived.get(key)
        if cached is None:
            cached = [len(str(size)) for size in self.record_sizes(patch_size)]
            self._derived[key] = cached
        return cached  # type: ignore[return-value]

    def leaf_column(self, partitioner: str, leaves: Sequence[int]) -> List[int]:
        """Cache index receiving each request, in trace order.

        Reproduces the three partitioners over interned client ids: the
        hash partitioner's MD5 is computed once per distinct client;
        round-robin by client is first-appearance order — exactly the
        intern order — modulo the leaf count; round-robin by request is
        the record index. Cached per (partitioner, leaf layout).
        """
        key = ("leaf_column", partitioner, tuple(leaves))
        cached = self._derived.get(key)
        if cached is None:
            num_leaves = len(leaves)
            if partitioner == "round-robin-request":
                cached = [leaves[i % num_leaves] for i in range(self.num_records)]
            else:
                if partitioner == "hash":
                    positions = client_leaf_positions(self.client_names, num_leaves)
                    client_leaf = [leaves[pos] for pos in positions]
                else:  # round-robin-client: intern order == first appearance
                    client_leaf = [
                        leaves[client % num_leaves]
                        for client in range(self.num_clients)
                    ]
                cached = [client_leaf[client] for client in self.clients]
            self._derived[key] = cached
        return cached  # type: ignore[return-value]

    def derived_cache(self) -> Dict[Tuple, object]:
        """The raw memo dict (engine-private keys; see fastpath.columns).

        Shared mutability is the API: engines *write* their per-trace
        memo entries here so repeated sweep points skip recomputation.
        """
        return self._derived  # repro: noqa[RPR134]

    @classmethod
    # repro: domains[doc=interned-id, doc_ids=global-seq->interned-id]
    # repro: domains[sizes=global-seq->byte-size, timestamps=global-seq->age-tick]
    def from_records(cls, records: Iterable[TraceRecord]) -> "InternedTrace":
        """Intern ``records`` in order; ids follow first appearance."""
        doc_index: dict = {}
        client_index: dict = {}
        urls: List[str] = []
        client_names: List[str] = []
        doc_ids: List[int] = []
        sizes: List[int] = []
        timestamps: List[float] = []
        clients: List[int] = []
        for record in records:
            url = record.url
            doc = doc_index.get(url)
            if doc is None:
                doc = len(urls)
                doc_index[url] = doc
                urls.append(url)
            client_name = record.client_id
            client = client_index.get(client_name)
            if client is None:
                client = len(client_names)
                client_index[client_name] = client
                client_names.append(client_name)
            doc_ids.append(doc)
            sizes.append(record.size)
            timestamps.append(record.timestamp)
            clients.append(client)
        return cls(doc_ids, sizes, timestamps, clients, urls, client_names)

    # repro: domains[base_docs=interned-id, next_docs=interned-id]
    # repro: domains[chunk_docs=chunk-offset->interned-id, start=global-seq]
    def chunks(self, chunk_size: int) -> Iterator["InternedChunk"]:
        """Slice this interned trace into :class:`InternedChunk` views.

        Because doc and client ids are assigned in first-appearance order,
        the intern tables seen after any prefix of the trace are exactly the
        first ``max(id)+1`` entries — so chunking is pure column slicing,
        and chunked replay is byte-identical to whole-trace replay by
        construction. ``chunk_size >= num_records`` yields a single chunk;
        ``chunk_size`` must be positive.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        doc_ids = self.doc_ids
        clients = self.clients
        base_docs = 0
        base_clients = 0
        for start in range(0, self.num_records, chunk_size):
            end = min(start + chunk_size, self.num_records)
            chunk_docs = doc_ids[start:end]
            chunk_clients = clients[start:end]
            next_docs = max(base_docs - 1, max(chunk_docs)) + 1
            next_clients = max(base_clients - 1, max(chunk_clients)) + 1
            yield InternedChunk(
                doc_ids=chunk_docs,
                sizes=self.sizes[start:end],
                timestamps=self.timestamps[start:end],
                clients=chunk_clients,
                new_urls=self.urls[base_docs:next_docs],
                new_client_names=self.client_names[base_clients:next_clients],
                base_docs=base_docs,
                base_clients=base_clients,
                base_records=start,
            )
            base_docs = next_docs
            base_clients = next_clients


class InternedChunk:
    """One contiguous slice of an interned trace, with intern-table deltas.

    Ids are *global* (dense, first-appearance order over the whole stream),
    so feeding consecutive chunks to a replay core reproduces whole-trace
    interning exactly. ``new_urls`` / ``new_client_names`` carry the intern
    table entries first seen in this chunk (ids ``base_docs ..
    base_docs+len(new_urls)-1``, resp. clients); the consumer grows its
    per-doc state by exactly these deltas before replaying the chunk.

    Derived per-new-doc columns (UTF-8 URL length, ICP probe bytes) are
    computed lazily from the real protocol functions, once per chunk.
    """

    __slots__ = (
        "doc_ids",
        "sizes",
        "timestamps",
        "clients",
        "new_urls",
        "new_client_names",
        "base_docs",
        "base_clients",
        "base_records",
        "num_records",
        "_new_url_lens",
        "_new_icp_probe_bytes",
    )

    # Chunk columns are indexed by chunk-local offset; ids stay global.
    # repro: domains[doc_ids=chunk-offset->interned-id, sizes=chunk-offset->byte-size]
    # repro: domains[timestamps=chunk-offset->age-tick, clients=chunk-offset->any]
    # repro: domains[base_docs=interned-id, base_records=global-seq]
    def __init__(
        self,
        doc_ids: List[int],
        sizes: List[int],
        timestamps: List[float],
        clients: List[int],
        new_urls: List[str],
        new_client_names: List[str],
        base_docs: int,
        base_clients: int,
        base_records: int,
    ):
        self.doc_ids = doc_ids
        self.sizes = sizes
        self.timestamps = timestamps
        self.clients = clients
        self.new_urls = new_urls
        self.new_client_names = new_client_names
        self.base_docs = base_docs
        self.base_clients = base_clients
        self.base_records = base_records
        self.num_records = len(doc_ids)
        self._new_url_lens: List[int] = []
        self._new_icp_probe_bytes: List[int] = []

    @property
    def new_url_lens(self) -> List[int]:
        """UTF-8 byte length per newly interned URL.

        Hot-path column, computed once per chunk and read-only by
        convention in the engines; copying per access would defeat it.
        """
        if not self._new_url_lens and self.new_urls:
            self._new_url_lens = [_utf8_length(url) for url in self.new_urls]
        return self._new_url_lens  # repro: noqa[RPR134]

    @property
    def new_icp_probe_bytes(self) -> List[int]:
        """ICP query + reply datagram bytes per newly interned URL.

        Same read-only-by-convention contract as :attr:`new_url_lens`.
        """
        if not self._new_icp_probe_bytes and self.new_urls:
            self._new_icp_probe_bytes = [
                icp.query_wire_length(url) + icp.reply_wire_length(url)
                for url in self.new_urls
            ]
        return self._new_icp_probe_bytes  # repro: noqa[RPR134]


class ChunkingInterner:
    """Incremental interner for streaming record sources.

    Holds the URL/client intern tables across calls so successive chunks
    receive globally consistent dense ids — the streaming equivalent of
    :meth:`InternedTrace.from_records`. Feed it consecutive record batches
    in trace order; each call returns an :class:`InternedChunk`.
    """

    __slots__ = ("_doc_index", "_client_index", "_records_seen")

    def __init__(self) -> None:
        self._doc_index: Dict[str, int] = {}
        self._client_index: Dict[str, int] = {}
        self._records_seen = 0

    @property
    def records_seen(self) -> int:
        """Total records interned so far."""
        return self._records_seen

    # repro: domains[doc=interned-id, base_docs=interned-id, base_records=global-seq]
    # repro: domains[doc_ids=chunk-offset->interned-id, sizes=chunk-offset->byte-size]
    def intern_chunk(self, records: Iterable[TraceRecord]) -> InternedChunk:
        """Intern one batch of records; ids continue from prior batches."""
        doc_index = self._doc_index
        client_index = self._client_index
        base_docs = len(doc_index)
        base_clients = len(client_index)
        base_records = self._records_seen
        new_urls: List[str] = []
        new_client_names: List[str] = []
        doc_ids: List[int] = []
        sizes: List[int] = []
        timestamps: List[float] = []
        clients: List[int] = []
        for record in records:
            url = record.url
            doc = doc_index.get(url)
            if doc is None:
                doc = len(doc_index)
                doc_index[url] = doc
                new_urls.append(url)
            client_name = record.client_id
            client = client_index.get(client_name)
            if client is None:
                client = len(client_index)
                client_index[client_name] = client
                new_client_names.append(client_name)
            doc_ids.append(doc)
            sizes.append(record.size)
            timestamps.append(record.timestamp)
            clients.append(client)
        self._records_seen = base_records + len(doc_ids)
        return InternedChunk(
            doc_ids=doc_ids,
            sizes=sizes,
            timestamps=timestamps,
            clients=clients,
            new_urls=new_urls,
            new_client_names=new_client_names,
            base_docs=base_docs,
            base_clients=base_clients,
            base_records=base_records,
        )
