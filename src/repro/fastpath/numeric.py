"""Optional numpy acceleration gate for the batch engine.

numpy is an *optional extra*: the batch engine vectorises its whole-trace
precompute and post-pass reductions with it when importable, and falls
back to pure-Python column building (``array``-module/list columns, the
same arithmetic serially) when it is not. Results are bit-identical on
both paths — the ordered float accumulations use ``cumsum`` (a strict
left-to-right fold, unlike ``sum``'s pairwise reduction) precisely so the
vectorised fold matches the serial one.

Set ``REPRO_NO_NUMPY=1`` to force the fallback path with numpy installed
(the CI matrix leg proving the fallback uses this; the container image
cannot uninstall the extra).

The index-domain analyzer (``repro analyze domains``, docs/ANALYSIS.md)
treats locals bound from this gate — ``np = load_numpy()`` — as the numpy
root, so dtype-width and index-domain checks (RPR141–147) apply to the
gated vectorised paths exactly as they would to a plain ``import numpy as
np``. Trace-length-scaled accumulators behind the gate must spell their
dtype (``np.cumsum(..., dtype=np.int64)``): numpy promotes bool/narrow
inputs only to the *platform default* integer, which is 32-bit on
Windows (RPR143).
"""

from __future__ import annotations

import os


def load_numpy():
    """The numpy module, or ``None`` (not installed, or REPRO_NO_NUMPY set).

    Resolved per call so tests and the CI fallback leg can flip the
    environment override without reloading modules; the import itself is
    cached by the interpreter after the first success.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - image bakes numpy in
        return None
    return numpy
