"""Array-backed victim-order structures over dense doc ids.

These mirror the object policies' victim semantics exactly —
:class:`IntrusiveLRUList` reproduces :class:`repro.cache.replacement.LRUPolicy`
(an ``OrderedDict`` by recency) and :class:`LFUVictimHeap` reproduces
:class:`repro.cache.replacement.LFUPolicy` (a lazy min-heap keyed on
``(hit_count, push_seq)``) — but are indexed by integer doc id so the
replay loop never hashes a string and never allocates per operation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterator, List, Tuple

from repro.errors import CacheConfigurationError


class IntrusiveLRUList:
    """Doubly-linked recency list stored as two parallel ``prev``/``next``
    arrays indexed by doc id, with a sentinel node at index ``num_docs``.

    ``next[sentinel]`` is the least-recently-used doc (the LRU victim);
    ``prev[sentinel]`` is the most-recently-used. Every operation is O(1)
    and allocation-free. Doc ids must be resident (pushed, not removed)
    when touched — exactly the contract :class:`ProxyCache` gives its
    policy.
    """

    __slots__ = ("prev", "next", "sentinel")

    def __init__(self, num_docs: int):
        sentinel = num_docs
        self.sentinel = sentinel
        self.prev: List[int] = [-1] * (num_docs + 1)
        self.next: List[int] = [-1] * (num_docs + 1)
        self.prev[sentinel] = sentinel
        self.next[sentinel] = sentinel

    def grow(self, num_docs: int) -> None:
        """Extend capacity to ``num_docs`` docs (streamed-chunk intern delta).

        The sentinel relocates from the old array tail to the new one; its
        two neighbours (the current LRU head and MRU tail) are relinked in
        O(1), the vacated slot becomes an ordinary (unlinked) doc slot, and
        every existing link is otherwise untouched — recency order is
        exactly preserved.
        """
        old_sentinel = self.sentinel
        add = num_docs - old_sentinel
        if add <= 0:
            return
        prev, nxt = self.prev, self.next
        prev.extend([-1] * add)
        nxt.extend([-1] * add)
        sentinel = num_docs
        head, tail = nxt[old_sentinel], prev[old_sentinel]
        if head == old_sentinel:  # empty list: sentinel self-loops
            prev[sentinel] = sentinel
            nxt[sentinel] = sentinel
        else:
            nxt[sentinel] = head
            prev[sentinel] = tail
            prev[head] = sentinel
            nxt[tail] = sentinel
        prev[old_sentinel] = -1
        nxt[old_sentinel] = -1
        self.sentinel = sentinel

    def push(self, doc: int) -> None:
        """Insert ``doc`` at the most-recently-used end (admission)."""
        prev, nxt, sentinel = self.prev, self.next, self.sentinel
        tail = prev[sentinel]
        nxt[tail] = doc
        prev[doc] = tail
        nxt[doc] = sentinel
        prev[sentinel] = doc

    def touch(self, doc: int) -> None:
        """Move resident ``doc`` to the most-recently-used end (a hit)."""
        prev, nxt = self.prev, self.next
        before, after = prev[doc], nxt[doc]
        nxt[before] = after
        prev[after] = before
        sentinel = self.sentinel
        tail = prev[sentinel]
        nxt[tail] = doc
        prev[doc] = tail
        nxt[doc] = sentinel
        prev[sentinel] = doc

    def remove(self, doc: int) -> None:
        """Unlink resident ``doc`` (eviction)."""
        prev, nxt = self.prev, self.next
        before, after = prev[doc], nxt[doc]
        nxt[before] = after
        prev[after] = before

    def head(self) -> int:
        """The LRU victim. Raises on an empty list (mirrors the policies)."""
        victim = self.next[self.sentinel]
        if victim == self.sentinel:
            raise CacheConfigurationError(
                "IntrusiveLRUList.head called on an empty list"
            )
        return victim

    def __iter__(self) -> Iterator[int]:
        """Docs from least- to most-recently used (tests/inspection)."""
        node = self.next[self.sentinel]
        while node != self.sentinel:
            yield node
            node = self.next[node]

    def order(self) -> List[int]:
        """Recency order as a list, LRU victim first."""
        return list(self)


class LFUVictimHeap:
    """Lazy min-heap over ``(hit_count, push_seq, doc)`` triples.

    Identical victim order to :class:`repro.cache.replacement.LFUPolicy`:
    lowest hit count wins, ties broken by the oldest push (least recent
    refresh). Each push records a per-doc live sequence number; heap
    records whose sequence is stale are skipped on pop. Since sequence
    numbers are unique per push, matching the sequence is exactly the
    object policy's ``(priority, seq)`` match.
    """

    __slots__ = ("_heap", "_live_seq", "_seq")

    def __init__(self, num_docs: int):
        self._heap: List[Tuple[int, int, int]] = []
        self._live_seq: List[int] = [-1] * num_docs
        self._seq = 0

    def grow(self, num_docs: int) -> None:
        """Extend capacity to ``num_docs`` docs (streamed-chunk intern delta)."""
        add = num_docs - len(self._live_seq)
        if add > 0:
            self._live_seq.extend([-1] * add)

    def push(self, doc: int, count: int) -> None:
        """(Re-)insert ``doc`` with its current hit count."""
        self._seq += 1
        seq = self._seq
        self._live_seq[doc] = seq
        heappush(self._heap, (count, seq, doc))

    def remove(self, doc: int) -> None:
        """Mark ``doc``'s heap records stale (eviction)."""
        self._live_seq[doc] = -1

    def victim(self) -> int:
        """The live doc with the lowest ``(hit_count, push_seq)``."""
        heap = self._heap
        live = self._live_seq
        while heap:
            _count, seq, doc = heap[0]
            if live[doc] == seq:
                return doc
            heappop(heap)  # stale record
        raise CacheConfigurationError("heap policy state corrupted: no live records")
