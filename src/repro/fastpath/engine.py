"""The columnar replay engine.

One function, :func:`simulate_columnar`, replays a trace through the exact
protocol sequence of the object core — local lookup, ICP probe, remote or
origin HTTP fetch, placement decisions, hierarchical escalation — over
columnar state: per-cache parallel arrays indexed by dense doc id, an
array-backed intrusive LRU list or lazy LFU heap for victim order, and a
ring-buffer expiration-age tracker per cache. The replay loop performs no
per-request allocation (lint rule RPR009 enforces this statically).

Traces replay either whole (the classic path, using the per-trace memoised
columns) or as a stream of :class:`repro.fastpath.interning.InternedChunk`
slices with O(chunk) memory: every per-doc state array grows by exactly
the chunk's intern-table delta before its requests replay, so chunked and
whole-trace replay are byte-identical for any chunk size (the chunking
differential tests assert this, events included).

Byte identity with the object core is the contract, not an aspiration:

* Every expiration-age *read* the object core performs is mirrored here in
  the same order — in the time-window mode a read trims the window (a side
  effect), so even decision reads whose value is unused (the ad-hoc
  scheme's audit fields) must happen.
* Window sums follow the same ``+=``/``-=`` sequence as the deque tracker
  (see :mod:`repro.fastpath.ringtracker`), so ages are bit-equal floats.
* HTTP/ICP wire lengths use the same arithmetic as
  :class:`repro.protocol.http.HttpRequest` / ``HttpResponse`` /
  :mod:`repro.protocol.icp` (asserted by tests against the real classes).
* Metric and latency accumulation orders match ``GroupMetrics.observe``.

Configurations outside the engine's envelope (custom policies, the
sanitizer, stochastic latency, ICP loss injection, per-request outcome
consumers) report a reason via
:func:`repro.fastpath.columnar_unsupported_reason`, which interprets the
declared :data:`repro.fastpath.FALLBACK_MATRIX`; ``run_simulation`` logs
it and falls back to the object engine.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.cache.stats import CacheStats
from repro.errors import SimulationError, TraceError
from repro.fastpath import columnar_unsupported_reason
from repro.fastpath.interning import InternedChunk, client_leaf_positions
from repro.fastpath.ringtracker import RingAgeTracker
from repro.fastpath.structures import IntrusiveLRUList, LFUVictimHeap
from repro.network.bus import MessageCounters
from repro.network.latency import ComponentLatencyModel, ConstantLatencyModel
from repro.network.topology import StarTopology, two_level_tree
from repro.protocol.http import format_expiration_age
from repro.simulation.metrics import GroupMetrics, average_cache_expiration_age
from repro.simulation.results import SimulationResult
from repro.trace.record import Trace

#: Requests per chunk when replaying a streamed source that does not name
#: a chunk size. Large enough to amortise per-chunk column building,
#: small enough that the resident columns stay tens of megabytes.
DEFAULT_CHUNK_SIZE = 1 << 18


def _chunk_stream(trace, chunk_size: Optional[int], spans=None) -> Iterator[Tuple]:
    """Yield ``(chunk, cached_source)`` pairs for the replay loop.

    ``cached_source`` is the backing :class:`InternedTrace` when the chunk
    covers a whole materialised trace — the engine then uses the per-trace
    memoised columns (record sizes, digits, leaf assignment) instead of
    recomputing them. Streamed sources (anything exposing
    ``interned_chunks(chunk_size)``) and genuinely chunked traces yield
    ``None`` and the engine derives per-chunk columns from the intern
    deltas.

    ``spans`` (an optional :class:`repro.obs.spans.SpanTracer`) is handed
    to sources that accept it, so generation/decoding work inside the
    source shows up as child spans of the engine's source spans; sources
    without span support are called plain.
    """
    if isinstance(trace, Trace):
        if spans is not None:
            with spans.span("intern", "source"):
                interned = trace.interned()
        else:
            interned = trace.interned()
        if chunk_size is None or chunk_size >= max(interned.num_records, 1):
            whole = InternedChunk(
                doc_ids=interned.doc_ids,
                sizes=interned.sizes,
                timestamps=interned.timestamps,
                clients=interned.clients,
                new_urls=interned.urls,
                new_client_names=interned.client_names,
                base_docs=0,
                base_clients=0,
                base_records=0,
            )
            # Share the per-doc protocol columns already computed at intern
            # time instead of re-deriving them from the URL strings.
            whole._new_url_lens = interned.url_lens
            whole._new_icp_probe_bytes = interned.icp_probe_bytes
            return iter(((whole, interned),))
        return ((chunk, None) for chunk in interned.chunks(chunk_size))
    size = chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE
    if spans is not None:
        try:
            # Generator functions validate keywords at call time, so an
            # unsupported source raises here, not mid-iteration.
            chunks = trace.interned_chunks(size, spans=spans)
        except TypeError:
            chunks = trace.interned_chunks(size)
    else:
        chunks = trace.interned_chunks(size)
    return ((chunk, None) for chunk in chunks)


def simulate_columnar(
    config, trace, obs=None, chunk_size: Optional[int] = None,
    spans=None, timeseries=None,
) -> SimulationResult:
    """Replay ``trace`` under ``config`` on the columnar engine.

    Raises :class:`SimulationError` when the config is outside the
    engine's envelope — use
    :func:`repro.simulation.simulator.run_simulation` for transparent
    fallback.

    Args:
        trace: A :class:`~repro.trace.record.Trace`, or any streamed
            source exposing ``interned_chunks(chunk_size)`` (packed
            columnar readers, chunked synthetic generators). Streamed
            sources replay with O(chunk) memory.
        obs: Optional :class:`repro.obs.events.RunRecorder`. Emission
            points mirror the object core exactly — same events, same
            order, same scalar payloads — so both engines produce
            byte-identical ``repro-events/1`` streams (enforced by the
            differential tests in ``tests/obs``). ``None`` keeps the loop
            on its zero-overhead path (one hoisted bool guard per branch).
        chunk_size: Replay the trace in interned chunks of this many
            requests. ``None`` replays a materialised trace whole (and a
            streamed source in :data:`DEFAULT_CHUNK_SIZE` chunks). Results
            and event streams are byte-identical for every choice.
        spans: Optional :class:`repro.obs.spans.SpanTracer`. The engine
            opens one ``engine:columnar`` span, times each source pull
            (generation/decoding) and each chunk replay, and attaches
            request counters. Pure telemetry: results, event bytes, and
            digests are identical with or without it (differential tests
            in ``tests/obs``); ``None`` costs nothing.
        timeseries: Optional
            :class:`repro.obs.timeseries.TimeseriesRecorder`; receives
            one cumulative counter reading per replayed chunk. Same
            out-of-band contract as ``spans``.
    """
    reason = columnar_unsupported_reason(config)
    if reason is not None:
        raise SimulationError(f"config unsupported by the columnar engine: {reason}")
    if config.patch_size <= 0:
        # Same guard (and message) patch_zero_sizes raises in the object path.
        raise TraceError(f"patch_size must be positive, got {config.patch_size}")
    patch = config.patch_size
    partitioner = config.partitioner

    # ---------------------------------------------------------------- #
    # Topology, capacities, partitioning
    # ---------------------------------------------------------------- #
    hierarchical = config.architecture == "hierarchical"
    if hierarchical:
        topology = two_level_tree(config.num_caches, config.num_parents)
    else:
        topology = StarTopology(config.num_caches)
    num_caches = topology.num_caches
    leaves = topology.leaves()
    num_leaves = len(leaves)
    rr_request = partitioner == "round-robin-request"
    hash_partitioner = partitioner == "hash"
    parent = [topology.parent_of(i) for i in range(num_caches)]
    probe_targets: List[tuple] = [() for _ in range(num_caches)]
    for leaf in leaves:
        targets = list(topology.siblings_of(leaf))
        if hierarchical and parent[leaf] is not None:
            targets.append(parent[leaf])
        probe_targets[leaf] = tuple(targets)

    # Equal split, same arithmetic as build_caches with unit weights.
    weights = [1.0] * num_caches
    total_weight = sum(weights)
    capacity = [int(config.aggregate_capacity * w / total_weight) for w in weights]
    if any(share <= 0 for share in capacity):
        raise SimulationError(
            f"aggregate capacity {config.aggregate_capacity} too small for "
            f"{num_caches} caches with shares {weights}"
        )

    # "cacheN" Via-header lengths, matching build_caches' naming.
    sender_len = [5 + len(str(i)) for i in range(num_caches)]

    # ---------------------------------------------------------------- #
    # Per-cache columnar state — empty, grown by each chunk's intern delta
    # ---------------------------------------------------------------- #
    num_docs = 0
    lru_kind = config.policy == "lru"
    present = [bytearray() for _ in range(num_caches)]
    doc_size: List[List[int]] = [[] for _ in range(num_caches)]
    entry_time: List[List[float]] = [[] for _ in range(num_caches)]
    last_hit: List[List[float]] = [[] for _ in range(num_caches)]
    hit_count: List[List[int]] = [[] for _ in range(num_caches)]
    used = [0] * num_caches
    copies = [0] * num_caches
    if lru_kind:
        order: List = [IntrusiveLRUList(0) for _ in range(num_caches)]
    else:
        order = [LFUVictimHeap(0) for _ in range(num_caches)]
    trackers = [
        RingAgeTracker(
            kind="lru" if lru_kind else "lfu",
            window_mode=config.window_mode,
            window_size=config.window_size,
            window_seconds=config.window_seconds,
        )
        for _ in range(num_caches)
    ]
    age_of = [tracker.cache_expiration_age for tracker in trackers]
    record_age = [tracker.record for tracker in trackers]

    # Per-doc protocol columns and per-client leaf assignment, grown with
    # the intern tables (engine-owned copies; chunk deltas append here).
    url_len: List[int] = []
    icp_pair: List[int] = []
    url_of: List[str] = []
    client_leaf: List[int] = []

    # Per-cache stats columns (CacheStats fields).
    st_lookups = [0] * num_caches
    st_local_hits = [0] * num_caches
    st_local_misses = [0] * num_caches
    st_remote_served = [0] * num_caches
    st_admissions = [0] * num_caches
    st_rejections = [0] * num_caches
    st_evictions = [0] * num_caches
    st_bytes_local = [0] * num_caches
    st_bytes_remote = [0] * num_caches
    st_bytes_admitted = [0] * num_caches
    st_bytes_evicted = [0] * num_caches
    st_declined = [0] * num_caches
    st_promo_granted = [0] * num_caches
    st_promo_withheld = [0] * num_caches

    # Bus counters: [icp_q, icp_r, http_req, http_resp, icp_B, hdr_B, body_B]
    bus = [0, 0, 0, 0, 0, 0, 0]
    # Metrics: [requests, local, remote, miss, B_req, B_local, B_remote, B_miss]
    met = [0, 0, 0, 0, 0, 0, 0, 0]
    latency_sum = [0.0]

    # ---------------------------------------------------------------- #
    # Scheme / latency / strategy parameters
    # ---------------------------------------------------------------- #
    ea = config.scheme == "ea"
    tie_requester = config.tie_break == "requester"
    replica_cap = config.max_replica_fraction if ea else None
    max_age_strategy = config.responder_strategy == "max_age"
    constant_latency = config.latency == "constant"
    if constant_latency:
        model = ConstantLatencyModel()
        lat_local = model.local_hit
        lat_remote = model.remote_hit
        lat_miss = model.miss
        lan_bw = wan_bw = 1.0  # unused
    else:
        model = ComponentLatencyModel()
        lat_local = model.local_service
        lat_remote = model.icp_rtt + model.proxy_http_setup
        lat_miss = model.icp_rtt + model.origin_http_setup
        lan_bw = model.lan_bandwidth
        wan_bw = model.wan_bandwidth
    fmt_age = format_expiration_age
    warmup = config.warmup_requests

    # ---------------------------------------------------------------- #
    # Observability (hoisted: the disabled path costs one bool test)
    # ---------------------------------------------------------------- #
    rec = obs
    emit = rec is not None
    probe_hit_hops = 1 if hierarchical else 0
    kind_local = "local_hit"
    kind_remote = "remote_hit"
    kind_miss = "miss"

    def _snapshot_rows(due: float):
        """Per-cache gauge rows mirroring CooperativeSimulator._snapshot_rows."""
        return [
            (
                age_of[c](due),
                used[c],
                copies[c],
                st_lookups[c],
                st_local_hits[c],
                st_remote_served[c],
                st_evictions[c],
            )
            for c in range(num_caches)
        ]

    # ---------------------------------------------------------------- #
    # Shared operations (closures over the columnar state)
    # ---------------------------------------------------------------- #

    def _admit(cache: int, doc: int, size: int, now: float) -> bool:
        """Mirror of ProxyCache.admit; returns AdmitOutcome.admitted."""
        held = present[cache]
        if held[doc]:
            # Already cached: refresh instead of re-admitting.
            last_hit[cache][doc] = now
            bumped = hit_count[cache][doc] + 1
            hit_count[cache][doc] = bumped
            if lru_kind:
                order[cache].touch(doc)
            else:
                order[cache].push(doc, bumped)
            return True
        cap = capacity[cache]
        if size > cap:
            st_rejections[cache] += 1
            return False
        in_use = used[cache]
        if in_use + size > cap:
            sizes_c = doc_size[cache]
            last_c = last_hit[cache]
            entry_c = entry_time[cache]
            hits_c = hit_count[cache]
            order_c = order[cache]
            record_c = record_age[cache]
            evicted = 0
            evicted_bytes = 0
            while in_use + size > cap:
                victim = order_c.head() if lru_kind else order_c.victim()
                held[victim] = 0
                victim_size = sizes_c[victim]
                in_use -= victim_size
                order_c.remove(victim)
                if lru_kind:
                    age = now - last_c[victim]
                else:
                    age = (now - entry_c[victim]) / hits_c[victim]
                record_c(age, now)
                if emit:
                    rec.eviction(now, cache, url_of[victim], victim_size, age)
                evicted += 1
                evicted_bytes += victim_size
            st_evictions[cache] += evicted
            st_bytes_evicted[cache] += evicted_bytes
            copies[cache] -= evicted
        held[doc] = 1
        doc_size[cache][doc] = size
        entry_time[cache][doc] = now
        last_hit[cache][doc] = now
        hit_count[cache][doc] = 1
        used[cache] = in_use + size
        if lru_kind:
            order[cache].push(doc)
        else:
            order[cache].push(doc, 1)
        st_admissions[cache] += 1
        st_bytes_admitted[cache] += size
        copies[cache] += 1
        return True

    def _serve_remote(cache: int, doc: int, now: float, refresh: bool) -> int:
        """Mirror of ProxyCache.serve_remote; returns the entry size."""
        size = doc_size[cache][doc]
        st_remote_served[cache] += 1
        st_bytes_remote[cache] += size
        if refresh:
            st_promo_granted[cache] += 1
            last_hit[cache][doc] = now
            bumped = hit_count[cache][doc] + 1
            hit_count[cache][doc] = bumped
            if lru_kind:
                order[cache].touch(doc)
            else:
                order[cache].push(doc, bumped)
        else:
            st_promo_withheld[cache] += 1
        return size

    def _resolve(node: int, doc: int, record_size: int, digits: int,
                 requester_age: float, now: float):
        """Mirror of HierarchicalGroup._resolve_at.

        Returns ``(size, found_at, node_age, hops)``; ``found_at`` None →
        origin.
        """
        if present[node][doc]:
            # EA promotes only a longer-lived copy; ad-hoc always refreshes
            # (and performs no age read for the decision).
            refresh = age_of[node](now) > requester_age if ea else True
            size = _serve_remote(node, doc, now, refresh)
            node_age = age_of[node](now)
            age_text = fmt_age(node_age)
            bus[3] += 1
            bus[5] += 70 + len(str(size)) + sender_len[node] + len(age_text)
            bus[6] += size
            if emit:
                rec.promotion(now, node, url_of[doc], requester_age, node_age, refresh)
            return size, node, node_age, 1

        grandparent = parent[node]
        node_age = age_of[node](now)
        if grandparent is None:
            # Root: fetch from the origin (request and response carry no age).
            bus[2] += 1
            bus[5] += url_len[doc] + sender_len[node] + 24
            bus[3] += 1
            bus[5] += 50 + digits
            bus[6] += record_size
            size = record_size
            found_at = None
            hops = 1
        else:
            age_text = fmt_age(node_age)
            bus[2] += 1
            bus[5] += url_len[doc] + sender_len[node] + len(age_text) + 50
            size, found_at, _upstream, above = _resolve(
                grandparent, doc, record_size, digits, node_age, now
            )
            hops = above + 1
        # Parent-store rule: both schemes read the node's own age.
        own_age = age_of[node](now)
        if (own_age > requester_age) if ea else True:
            stored_node = _admit(node, doc, size, now)
        else:
            st_declined[node] += 1
            stored_node = False
        if emit:
            rec.placement_node(
                now, "parent", node, url_of[doc], size, own_age, requester_age,
                stored_node,
            )
        node_age = age_of[node](now)
        age_text = fmt_age(node_age)
        bus[3] += 1
        bus[5] += 70 + len(str(size)) + sender_len[node] + len(age_text)
        bus[6] += size
        return size, found_at, node_age, hops

    # ---------------------------------------------------------------- #
    # Chunked replay — state grows per intern delta, then the zero-
    # allocation request loop runs over the chunk's columns
    # ---------------------------------------------------------------- #
    processed = 0
    traced = spans is not None
    sampling = timeseries is not None
    chunks = _chunk_stream(trace, chunk_size, spans)
    if traced:
        # Imported lazily so untraced replay never touches repro.obs.
        from repro.obs.spans import source_label

        spans.begin("engine:columnar", "engine")
        chunks = spans.wrap_source(chunks, source_label(trace))
    for chunk, cached_source in chunks:
        if traced:
            spans.begin("chunk", "replay")
        new_urls = chunk.new_urls
        if new_urls:
            add = len(new_urls)
            num_docs += add
            url_of.extend(new_urls)
            url_len.extend(chunk.new_url_lens)
            icp_pair.extend(chunk.new_icp_probe_bytes)
            zero_bytes = bytes(add)
            zero_ints = [0] * add
            zero_floats = [0.0] * add
            for c in range(num_caches):
                present[c].extend(zero_bytes)
                doc_size[c].extend(zero_ints)
                entry_time[c].extend(zero_floats)
                last_hit[c].extend(zero_floats)
                hit_count[c].extend(zero_ints)
                order[c].grow(num_docs)

        if cached_source is not None:
            # Whole materialised trace: per-trace memoised columns.
            leaf_column = cached_source.leaf_column(partitioner, leaves)
            record_sizes = cached_source.record_sizes(patch)
            size_digits = cached_source.size_digits(patch)
        else:
            new_clients = chunk.new_client_names
            if new_clients and not rr_request:
                base_client = len(client_leaf)
                if hash_partitioner:
                    client_leaf.extend(
                        leaves[pos]
                        for pos in client_leaf_positions(new_clients, num_leaves)
                    )
                else:  # round-robin-client: intern order == appearance order
                    client_leaf.extend(
                        leaves[(base_client + i) % num_leaves]
                        for i in range(len(new_clients))
                    )
            if rr_request:
                base_record = chunk.base_records
                leaf_column = [
                    leaves[(base_record + i) % num_leaves]
                    for i in range(chunk.num_records)
                ]
            else:
                leaf_column = [client_leaf[client] for client in chunk.clients]
            chunk_sizes = chunk.sizes
            if 0 in chunk_sizes:
                record_sizes = [
                    patch if size == 0 else size for size in chunk_sizes
                ]
            else:
                record_sizes = chunk_sizes
            size_digits = [len(str(size)) for size in record_sizes]

        for cache, doc, now, record_size, digits in zip(
            leaf_column, chunk.doc_ids, chunk.timestamps, record_sizes, size_digits
        ):
            if emit:
                rec.maybe_snapshot(now, _snapshot_rows)
            st_lookups[cache] += 1
            held = present[cache]
            if held[doc]:
                # Local hit: record_hit + policy refresh, then observe.
                size = doc_size[cache][doc]
                st_local_hits[cache] += 1
                st_bytes_local[cache] += size
                last_hit[cache][doc] = now
                bumped = hit_count[cache][doc] + 1
                hit_count[cache][doc] = bumped
                if lru_kind:
                    order[cache].touch(doc)
                else:
                    order[cache].push(doc, bumped)
                processed += 1
                if processed > warmup:
                    met[0] += 1
                    met[4] += size
                    latency_sum[0] += lat_local
                    met[1] += 1
                    met[5] += size
                if emit:
                    rec.request(
                        now, cache, url_of[doc], kind_local, size, None, False,
                        False, 0,
                    )
                continue

            st_local_misses[cache] += 1
            targets = probe_targets[cache]
            holders = [t for t in targets if present[t][doc]]
            num_targets = len(targets)
            bus[0] += num_targets
            bus[1] += num_targets
            bus[4] += num_targets * icp_pair[doc]

            if holders:
                # Remote hit via probe (same path for both architectures).
                if max_age_strategy:
                    responder = holders[0]
                    best_age = age_of[responder](now)
                    for candidate in holders[1:]:
                        candidate_age = age_of[candidate](now)
                        if candidate_age > best_age:
                            responder = candidate
                            best_age = candidate_age
                else:  # "first": lowest index
                    responder = min(holders)
                # Scheme decision (both schemes read requester then responder).
                requester_age = age_of[cache](now)
                responder_age = age_of[responder](now)
                if ea:
                    if requester_age > responder_age:
                        store = True
                    elif requester_age == responder_age:
                        store = tie_requester
                    else:
                        store = False
                    refresh = responder_age > requester_age
                else:
                    store = True
                    refresh = True
                size = doc_size[responder][doc]
                if (
                    store
                    and replica_cap is not None
                    and size > replica_cap * capacity[cache]
                ):
                    store = False
                    refresh = True
                age_text = fmt_age(requester_age)
                bus[2] += 1
                bus[5] += url_len[doc] + sender_len[cache] + len(age_text) + 50
                _serve_remote(responder, doc, now, refresh)
                age_text = fmt_age(responder_age)
                bus[3] += 1
                bus[5] += 70 + len(str(size)) + sender_len[responder] + len(age_text)
                bus[6] += size
                if emit:
                    rec.promotion(
                        now, responder, url_of[doc], requester_age, responder_age,
                        refresh,
                    )
                if store:
                    stored_here = _admit(cache, doc, size, now)
                else:
                    st_declined[cache] += 1
                    stored_here = False
                if emit:
                    rec.placement_remote(
                        now, cache, url_of[doc], size, requester_age, responder_age,
                        stored_here, refresh,
                    )
                processed += 1
                if processed > warmup:
                    met[0] += 1
                    met[4] += size
                    if constant_latency:
                        latency_sum[0] += lat_remote
                    else:
                        latency_sum[0] += lat_remote + size / lan_bw
                    met[2] += 1
                    met[6] += size
                if emit:
                    rec.request(
                        now, cache, url_of[doc], kind_remote, size, responder,
                        stored_here, refresh, probe_hit_hops,
                    )
                continue

            up = parent[cache]
            if up is None:
                # Group-wide miss (or hierarchy root): origin fetch, store local.
                bus[2] += 1
                bus[5] += url_len[doc] + sender_len[cache] + 24
                bus[3] += 1
                bus[5] += 50 + digits
                bus[6] += record_size
                own_age = age_of[cache](now)  # origin_fetch decision reads the own age
                stored_here = _admit(cache, doc, record_size, now)
                if emit:
                    rec.placement_origin(
                        now, cache, url_of[doc], record_size, own_age, stored_here
                    )
                processed += 1
                if processed > warmup:
                    met[0] += 1
                    met[4] += record_size
                    if constant_latency:
                        latency_sum[0] += lat_miss
                    else:
                        latency_sum[0] += lat_miss + record_size / wan_bw
                    met[3] += 1
                    met[7] += record_size
                if emit:
                    rec.request(
                        now, cache, url_of[doc], kind_miss, record_size, None,
                        stored_here, False, 0,
                    )
                continue

            # Hierarchical escalation: all probes negative, parent resolves.
            requester_age = age_of[cache](now)
            age_text = fmt_age(requester_age)
            bus[2] += 1
            bus[5] += url_len[doc] + sender_len[cache] + len(age_text) + 50
            size, found_at, upstream_age, hops = _resolve(
                up, doc, record_size, digits, requester_age, now
            )
            # Child-store rule (both schemes read the child's own age).
            child_age = age_of[cache](now)
            if ea:
                if child_age > upstream_age:
                    store = True
                elif child_age == upstream_age:
                    store = tie_requester
                else:
                    store = False
            else:
                store = True
            if store:
                stored_here = _admit(cache, doc, size, now)
            else:
                st_declined[cache] += 1
                stored_here = False
            if emit:
                rec.placement_node(
                    now, "child", cache, url_of[doc], size, child_age, upstream_age,
                    stored_here,
                )
            processed += 1
            if processed > warmup:
                met[0] += 1
                met[4] += size
                if found_at is not None:
                    if constant_latency:
                        latency_sum[0] += lat_remote
                    else:
                        latency_sum[0] += lat_remote + size / lan_bw
                    met[2] += 1
                    met[6] += size
                else:
                    if constant_latency:
                        latency_sum[0] += lat_miss
                    else:
                        latency_sum[0] += lat_miss + size / wan_bw
                    met[3] += 1
                    met[7] += size
            if emit:
                rec.request(
                    now, cache, url_of[doc],
                    kind_remote if found_at is not None else kind_miss,
                    size, found_at, stored_here, False, hops,
                )

        if traced:
            spans.end(records=chunk.num_records)
        if sampling:
            timeseries.sample(
                requests=processed,
                local_hits=sum(st_local_hits),
                remote_hits=sum(st_remote_served),
                evictions=sum(st_evictions),
                admissions=sum(st_admissions),
                declined=sum(st_declined),
                promoted=sum(st_promo_granted),
                bytes_local=sum(st_bytes_local),
                bytes_remote=sum(st_bytes_remote),
                body_bytes=bus[6],
                residency_bytes=sum(used),
                t_last=float(chunk.timestamps[-1]) if chunk.num_records else 0.0,
            )
    if traced:
        spans.end(requests=processed)

    # ---------------------------------------------------------------- #
    # Result assembly (object-core dataclasses; identical serialisation)
    # ---------------------------------------------------------------- #
    metrics = GroupMetrics(
        requests=met[0],
        local_hits=met[1],
        remote_hits=met[2],
        misses=met[3],
        bytes_requested=met[4],
        bytes_local_hit=met[5],
        bytes_remote_hit=met[6],
        bytes_miss=met[7],
        total_measured_latency=latency_sum[0],
    )
    counters = MessageCounters(
        icp_queries=bus[0],
        icp_replies=bus[1],
        http_requests=bus[2],
        http_responses=bus[3],
        icp_bytes=bus[4],
        http_header_bytes=bus[5],
        http_body_bytes=bus[6],
    )
    cache_stats = [
        CacheStats(
            lookups=st_lookups[c],
            local_hits=st_local_hits[c],
            local_misses=st_local_misses[c],
            remote_hits_served=st_remote_served[c],
            admissions=st_admissions[c],
            rejections=st_rejections[c],
            evictions=st_evictions[c],
            bytes_served_local=st_bytes_local[c],
            bytes_served_remote=st_bytes_remote[c],
            bytes_admitted=st_bytes_admitted[c],
            bytes_evicted=st_bytes_evicted[c],
            placements_declined=st_declined[c],
            promotions_granted=st_promo_granted[c],
            promotions_withheld=st_promo_withheld[c],
        )
        for c in range(num_caches)
    ]
    ages = [age_of[c](None) for c in range(num_caches)]
    unique_documents = sum(1 for held in zip(*present) if any(held))
    total_copies = sum(copies)
    replication = total_copies / unique_documents if unique_documents else 0.0
    return SimulationResult(
        config=config.to_dict(),
        metrics=metrics,
        message_counters=counters,
        cache_stats=cache_stats,
        expiration_ages=ages,
        avg_cache_expiration_age=average_cache_expiration_age(ages),
        unique_documents=unique_documents,
        total_copies=total_copies,
        replication_factor=replication,
        estimated_latency=metrics.estimated_latency(),
        manifest=None,
    )
