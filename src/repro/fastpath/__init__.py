"""Columnar fast-path simulation engine.

``repro.fastpath`` replays a trace through the same protocol sequence as
the object core (``repro.architecture`` + ``repro.cache``) but over
columnar state: URLs and clients are interned to dense integer ids at
trace load (:meth:`repro.trace.record.Trace.interned`), per-cache entry
metadata lives in parallel arrays indexed by doc id, LRU recency is an
array-backed intrusive doubly-linked list, and the expiration-age window
is a preallocated ring buffer. The replay loop allocates nothing per
request.

The engine is selected via ``SimulationConfig(engine="columnar")`` and is
**byte-identical** to the object core: same
:meth:`~repro.simulation.results.SimulationResult.to_dict` (and therefore
``to_json``) output for every supported configuration — the differential
harness in ``tests/fastpath`` enforces this across scheme × architecture ×
policy. Configurations the engine does not support (see
:func:`columnar_unsupported_reason`) transparently fall back to the object
engine with a logged reason.
"""

from repro.fastpath.engine import columnar_unsupported_reason, simulate_columnar
from repro.fastpath.interning import InternedTrace
from repro.fastpath.ringtracker import RingAgeTracker
from repro.fastpath.structures import IntrusiveLRUList, LFUVictimHeap

__all__ = [
    "InternedTrace",
    "IntrusiveLRUList",
    "LFUVictimHeap",
    "RingAgeTracker",
    "columnar_unsupported_reason",
    "simulate_columnar",
]
