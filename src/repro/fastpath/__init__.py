"""Columnar fast-path simulation engine.

``repro.fastpath`` replays a trace through the same protocol sequence as
the object core (``repro.architecture`` + ``repro.cache``) but over
columnar state: URLs and clients are interned to dense integer ids at
trace load (:meth:`repro.trace.record.Trace.interned`), per-cache entry
metadata lives in parallel arrays indexed by doc id, LRU recency is an
array-backed intrusive doubly-linked list, and the expiration-age window
is a preallocated ring buffer. The replay loop allocates nothing per
request.

The engine is selected via ``SimulationConfig(engine="columnar")`` and is
**byte-identical** to the object core: same
:meth:`~repro.simulation.results.SimulationResult.to_dict` (and therefore
``to_json``) output for every supported configuration — the differential
harness in ``tests/fastpath`` enforces this across scheme × architecture ×
policy. Configurations the engine does not support (see
:data:`FALLBACK_MATRIX`) transparently fall back to the object engine with
a logged reason.

The fallback matrix below is the *single* declaration of the engine's
envelope: :func:`columnar_unsupported_reason` interprets it at dispatch
time, ``repro analyze parity`` diffs it statically against the config
fields both engines actually read, and ``docs/PERFORMANCE.md`` renders it
for humans. Adding a :class:`~repro.simulation.simulator.SimulationConfig`
field therefore requires either porting it to the columnar engine or
declaring it here — anything else fails the parity analyzer (RPR101).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Replacement policies the columnar engine implements natively.
SUPPORTED_POLICIES = ("lru", "lfu")

#: Placement schemes the columnar engine implements natively.
SUPPORTED_SCHEMES = ("adhoc", "ea")

#: EA tie-break rules the columnar engine implements natively.
SUPPORTED_TIE_BREAKS = ("requester", "responder")


@dataclass(frozen=True)
class FallbackRule:
    """One row of the engine-fallback matrix.

    Attributes:
        field: The :class:`~repro.simulation.simulator.SimulationConfig`
            field this rule consults.
        supported: Values the columnar engine handles natively; any other
            value forces the object engine.
        reason: ``str.format`` template for the fallback explanation
            (``{value}`` and ``{supported}`` are available).
        when: Optional guard ``(field, values)`` — the rule only applies
            while that other config field holds one of ``values`` (the EA
            tie-break is irrelevant under the ad-hoc scheme).
    """

    field: str
    supported: Tuple[object, ...]
    reason: str
    when: Optional[Tuple[str, Tuple[object, ...]]] = None

    def check(self, config: object) -> Optional[str]:
        """The fallback reason ``config`` triggers on this rule, or None."""
        if self.when is not None:
            guard_field, guard_values = self.when
            if getattr(config, guard_field) not in guard_values:
                return None
        value = getattr(config, self.field)
        if value in self.supported:
            return None
        return self.reason.format(value=value, supported=self.supported)


#: The engine-fallback matrix: every config field whose *value* can force
#: the object engine, with the values the columnar engine supports and the
#: reason logged on fallback. Rules are checked in order; the first hit
#: wins. Consumed by :func:`columnar_unsupported_reason` at dispatch time
#: and by the ``repro analyze parity`` drift analyzer statically.
FALLBACK_MATRIX: Tuple[FallbackRule, ...] = (
    FallbackRule(
        field="policy",
        supported=SUPPORTED_POLICIES,
        reason="replacement policy {value!r} has no columnar port "
        "(supported: {supported})",
    ),
    FallbackRule(
        field="scheme",
        supported=SUPPORTED_SCHEMES,
        reason="placement scheme {value!r} has no columnar port",
    ),
    FallbackRule(
        field="tie_break",
        supported=SUPPORTED_TIE_BREAKS,
        reason="tie_break {value!r} has no columnar port",
        when=("scheme", ("ea",)),
    ),
    FallbackRule(
        field="sanitize",
        supported=(False,),
        reason="sanitize=True instruments the object core's structures",
    ),
    FallbackRule(
        field="use_engine",
        supported=(False,),
        reason="use_engine=True replays through the discrete-event scheduler",
    ),
    FallbackRule(
        field="keep_outcomes",
        supported=(False,),
        reason="keep_outcomes=True materialises per-request outcome objects",
    ),
    FallbackRule(
        field="collect_histogram",
        supported=(False,),
        reason="collect_histogram=True streams per-request latencies",
    ),
    FallbackRule(
        field="timeseries_window",
        supported=(0.0,),
        reason="timeseries_window>0 buckets per-request outcomes",
    ),
    FallbackRule(
        field="latency",
        supported=("constant", "component"),
        reason="stochastic latency draws per-request random noise",
    ),
    FallbackRule(
        field="responder_strategy",
        supported=("first", "max_age"),
        reason="random responder strategy draws from the seeded RNG",
    ),
    FallbackRule(
        field="icp_loss_rate",
        supported=(0.0,),
        reason="icp_loss_rate>0 draws per-probe loss randomness",
    ),
)

#: Config fields that cannot cause engine drift even though the columnar
#: engine never reads them, and why. The parity analyzer treats these as
#: declared-handled; everything else must be read by ``repro.fastpath`` or
#: appear in :data:`FALLBACK_MATRIX`.
COLUMNAR_NEUTRAL_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("engine", "the dispatch selector itself, consumed by run_simulation"),
    ("seed", "only feeds stochastic features, all of which force fallback"),
    ("latency_sigma", "only the stochastic latency model reads it, which forces fallback"),
)


def columnar_unsupported_reason(config: object) -> Optional[str]:
    """Why ``config`` cannot run on the columnar engine, or None if it can.

    Interprets :data:`FALLBACK_MATRIX` in declaration order. A non-None
    reason means the caller should use the object engine; the dispatcher in
    :func:`repro.simulation.simulator.run_simulation` logs the reason and
    falls back transparently. Unknown scheme/policy/tie names also fall
    back so the object engine raises its canonical errors.
    """
    for rule in FALLBACK_MATRIX:
        reason = rule.check(config)
        if reason is not None:
            return reason
    return None


def batch_unsupported_reason(config: object) -> Optional[str]:
    """Why ``config`` cannot run on the batch engine, or None if it can.

    The batch engine shares the columnar envelope *exactly*: any config
    its vectorised fast loop does not cover replays on the chunked
    columnar core inside :func:`repro.fastpath.batch.simulate_batch`
    (byte-identically), so dispatch interprets the same
    :data:`FALLBACK_MATRIX`. Whether a config takes the fast loop or the
    columnar core is reported separately by
    :func:`repro.fastpath.batch.batch_fastloop_reason`.
    """
    return columnar_unsupported_reason(config)


from repro.fastpath.engine import simulate_columnar  # noqa: E402
from repro.fastpath.batch import batch_fastloop_reason, simulate_batch  # noqa: E402
from repro.fastpath.interning import InternedTrace  # noqa: E402
from repro.fastpath.ringtracker import RingAgeTracker  # noqa: E402
from repro.fastpath.structures import IntrusiveLRUList, LFUVictimHeap  # noqa: E402

__all__ = [
    "COLUMNAR_NEUTRAL_FIELDS",
    "FALLBACK_MATRIX",
    "FallbackRule",
    "InternedTrace",
    "IntrusiveLRUList",
    "LFUVictimHeap",
    "RingAgeTracker",
    "batch_fastloop_reason",
    "batch_unsupported_reason",
    "columnar_unsupported_reason",
    "simulate_batch",
    "simulate_columnar",
]
