"""Ring-buffer port of :class:`repro.cache.expiration.ExpirationAgeTracker`.

Same three window modes (cumulative / count / time), same +inf-when-empty
contract, same running-sum arithmetic — but the window lives in
preallocated parallel ``ages``/``times`` rings instead of a deque of
tuples, so recording an eviction allocates nothing.

Float identity matters here: the engine must report bit-identical
expiration ages to the object tracker, and the window sum is a running
float accumulation whose value depends on operation order. This port
performs the *same sequence* of ``+=``/``-=`` on the sum as the deque
implementation (add the new age first, then subtract evictees), so the
sums — and every decision derived from them — are bit-equal.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.cache.document import EvictionRecord
from repro.cache.expiration import (
    TRACKER_KINDS,
    WINDOW_MODES,
    ExpirationAgeSnapshot,
    document_expiration_age,
)
from repro.errors import CacheConfigurationError

#: Initial ring capacity for the time-window mode, which has no fixed
#: victim count; the ring doubles as needed.
_INITIAL_TIME_CAPACITY = 64


class RingAgeTracker:
    """Drop-in :class:`ExpirationAgeTracker` replacement on a ring buffer.

    The engine feeds it pre-computed document ages via :meth:`record`;
    :meth:`record_eviction` keeps the object tracker's record-based API for
    parity tests and external callers.
    """

    __slots__ = (
        "kind",
        "window_mode",
        "window_size",
        "window_seconds",
        "_ages",
        "_times",
        "_head",
        "_count",
        "_capacity",
        "_window_sum",
        "_cumulative_sum",
        "_total_evictions",
    )

    def __init__(
        self,
        kind: str = "lru",
        window_mode: str = "count",
        window_size: int = 1000,
        window_seconds: float = 3600.0,
    ):
        if kind not in TRACKER_KINDS:
            raise CacheConfigurationError(f"unknown expiration-age kind {kind!r}")
        if window_mode not in WINDOW_MODES:
            raise CacheConfigurationError(
                f"unknown window mode {window_mode!r}; expected one of {WINDOW_MODES}"
            )
        if window_mode == "count" and window_size <= 0:
            raise CacheConfigurationError("window_size must be positive")
        if window_mode == "time" and window_seconds <= 0:
            raise CacheConfigurationError("window_seconds must be positive")
        self.kind = kind
        self.window_mode = window_mode
        self.window_size = window_size
        self.window_seconds = window_seconds
        capacity = window_size if window_mode == "count" else _INITIAL_TIME_CAPACITY
        self._capacity = capacity
        self._ages: List[float] = [0.0] * capacity
        self._times: List[float] = [0.0] * capacity
        self._head = 0  # ring index of the oldest windowed victim
        self._count = 0  # victims currently in the window
        self._window_sum = 0.0
        self._cumulative_sum = 0.0
        self._total_evictions = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, age: float, evict_time: float) -> float:
        """Fold one eviction (pre-computed document age) into the window."""
        self._total_evictions += 1
        self._cumulative_sum += age
        mode = self.window_mode
        if mode == "cumulative":
            return age
        if mode == "count":
            # Same arithmetic order as the deque tracker: add the new age,
            # then subtract the displaced oldest one.
            self._window_sum += age
            capacity = self._capacity
            head = self._head
            if self._count == capacity:
                self._window_sum -= self._ages[head]
                self._ages[head] = age
                self._head = head + 1 if head + 1 < capacity else 0
            else:
                self._ages[(head + self._count) % capacity] = age
                self._count += 1
            return age
        # time mode: append (growing if full), then trim lazily.
        if self._count == self._capacity:
            self._grow()
        slot = (self._head + self._count) % self._capacity
        self._ages[slot] = age
        self._times[slot] = evict_time
        self._count += 1
        self._window_sum += age
        self._trim_time(evict_time)
        return age

    def record_eviction(self, record: EvictionRecord) -> float:
        """Object-tracker-compatible entry point: score then record."""
        return self.record(document_expiration_age(record, self.kind), record.evict_time)

    def _grow(self) -> None:
        """Double the time-mode ring, unrolling it to start at index 0."""
        capacity = self._capacity
        head = self._head
        order = [(head + i) % capacity for i in range(self._count)]
        ages = self._ages
        times = self._times
        new_capacity = capacity * 2
        self._ages = [ages[i] for i in order] + [0.0] * (new_capacity - self._count)
        self._times = [times[i] for i in order] + [0.0] * (new_capacity - self._count)
        self._capacity = new_capacity
        self._head = 0

    def _trim_time(self, now: float) -> None:
        cutoff = now - self.window_seconds
        times = self._times
        ages = self._ages
        capacity = self._capacity
        head = self._head
        count = self._count
        window_sum = self._window_sum
        while count and times[head] < cutoff:
            window_sum -= ages[head]
            head = head + 1 if head + 1 < capacity else 0
            count -= 1
        self._head = head
        self._count = count
        self._window_sum = window_sum

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def cache_expiration_age(self, now: Optional[float] = None) -> float:
        """Paper Eq. 5 over the configured window; ``+inf`` when empty."""
        if self.window_mode == "cumulative":
            if self._total_evictions == 0:
                return math.inf
            return self._cumulative_sum / self._total_evictions
        if self.window_mode == "time" and now is not None:
            self._trim_time(now)
        if not self._count:
            return math.inf
        return self._window_sum / self._count

    @property
    def total_evictions(self) -> int:
        """Evictions observed over the tracker's lifetime."""
        return self._total_evictions

    def snapshot(self, now: Optional[float] = None) -> ExpirationAgeSnapshot:
        """Immutable view of the tracker's current state."""
        in_window = (
            self._total_evictions
            if self.window_mode == "cumulative"
            else self._count
        )
        return ExpirationAgeSnapshot(
            cache_expiration_age=self.cache_expiration_age(now),
            victims_in_window=in_window,
            total_evictions=self._total_evictions,
        )

    def reset(self) -> None:
        """Forget all observed evictions (start a fresh window)."""
        self._head = 0
        self._count = 0
        self._window_sum = 0.0
        self._cumulative_sum = 0.0
        self._total_evictions = 0
