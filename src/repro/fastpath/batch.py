"""The batch replay engine: vectorised precompute + run-compressed loop.

:func:`simulate_batch` (``engine="batch"``) replays the same protocol
sequence as the object core and the columnar engine, but hoists every
request-independent computation out of the per-request loop into
whole-chunk batch precomputation:

* **Leaf assignment, patched record sizes, Content-Length digit counts**
  — per-request columns computed in one vectorised pass (numpy when
  available, pure-Python list columns otherwise; see
  :mod:`repro.fastpath.numeric`).
* **Wire-length components** — the request-header byte count of a remote
  fetch and the full origin request+response header bytes depend only on
  the (doc, leaf) pair, so they are precomputed per request and summed by
  outcome class after the loop.
* **Flat slot addressing** — per-(cache, doc) state lives in single flat
  arrays indexed ``slot = doc * num_caches + cache``, so the hit path
  costs one index computation, no nested list hops.
* **Lazy LRU** — recency is not a linked list but a per-cache min-heap
  over ``(touch_index, slot)`` pairs plus a flat ``seq`` array holding
  each resident copy's latest touch index (the global request index). A
  hit refreshes recency with *one* array store; the heap is only
  consulted at eviction time, where stale entries (``seq`` moved on) are
  lazily re-pushed. The accepted victim is exactly the resident slot
  with the minimum current touch index — the LRU list's victim — so
  eviction order (and therefore every expiration age) is identical.
* **Run-length segmentation** — consecutive requests for the same (doc,
  leaf) pair cannot change any observable decision after the first one
  resolves to a resident copy, so the stateful loop iterates *run starts*
  only; members are accounted in the vectorised post-pass.
* **Hit-run bulk scanning (the warm regime)** — once any cache has
  filled, replay still spends most of its time on *local hits on
  already-resident documents* (Zipf skew), whose only state effects are
  the two recency stores. The ``present_b`` byte table doubles as a
  dense residency bitmap: a vectorised gather classifies a whole block
  of pending runs at once (``resident[slot] != 0``), only the
  predicted-miss runs (miss, remote hit, admission, eviction) replay
  through the scalar protocol path, and all the predicted-hit runs'
  recency touches are applied in *one* fancy-indexed scatter per block
  (duplicate slots resolve last-wins, which is exactly the scalar
  loop's final state). Deferred touches are protected by per-slot
  prediction marks: if an eviction ever selects a marked slot, the
  block's consumed touches are flushed on the spot and the remaining
  classifications are discarded and redone. Local hits can never change
  placement in this protocol — EA placement and promotion decisions
  only happen on *remote* hits, which are local misses at the
  requesting leaf and therefore terminate the run under the residency
  test; the residency bitmap **is** the promotion-armed mask.
* **First-occurrence / compulsory-miss masks (the cold regime)** — while
  no cache has ever filled, every expiration age is ``inf``, EA placement
  decisions are constants, every admission succeeds, and a request can
  change cache state only if it is the *first occurrence of its (doc,
  leaf) slot*. Those first occurrences are found vectorially (one stable
  argsort per chunk, memoised for whole-trace replay), a split index is
  computed where the regime provably ends (first admission that would
  evict, reject, or trip the replica cap), and the prefix replays with a
  Python loop over first occurrences *only* — local hits are pure
  post-pass arithmetic. The general loop takes over at the split.
* **Outcome post-pass** — the loop records one outcome byte per request
  (0 local hit / 2 remote hit / 3 origin miss) plus the served size;
  metrics, per-cache stats, bus counters, and the latency fold are then
  computed from those columns in bulk. The ordered float latency
  accumulation uses ``np.add.accumulate`` (a strict left fold), which is
  bit-identical to the serial ``+=`` sequence.

Byte identity with both existing engines is the contract: the
differential matrix in ``tests/fastpath`` asserts equal ``to_json`` text
across object/columnar/batch for every supported configuration and every
chunking choice.

The vectorised fast loop covers the paper's evaluation envelope —
distributed architecture, LRU replacement, pure expiration-age windows
(``count``/``cumulative``), no observer. Everything else inside the
engine envelope (hierarchical escalation, LFU, time windows, an attached
``RunRecorder``) replays on the chunked columnar core via
:func:`repro.fastpath.engine.simulate_columnar`, which is already
byte-identical — :func:`batch_fastloop_reason` reports which path a
config takes. Configs outside the shared envelope raise, exactly like
``simulate_columnar`` (``run_simulation`` falls back to the object core).
"""

from __future__ import annotations

import math
from array import array
from heapq import heappop, heappush
from typing import List, Optional

from repro.cache.stats import CacheStats
from repro.errors import SimulationError, TraceError
from repro.fastpath import columnar_unsupported_reason
from repro.fastpath.engine import _chunk_stream, simulate_columnar
from repro.fastpath.interning import client_leaf_positions
from repro.fastpath.numeric import load_numpy
from repro.network.bus import MessageCounters
from repro.network.latency import ComponentLatencyModel, ConstantLatencyModel
from repro.network.topology import StarTopology
from repro.protocol.http import format_expiration_age
from repro.simulation.metrics import GroupMetrics, average_cache_expiration_age
from repro.simulation.results import SimulationResult

_INF = math.inf


def batch_fastloop_reason(config, obs=None) -> Optional[str]:
    """Why ``config`` replays on the chunked columnar core instead of the
    batch fast loop, or None when the vectorised loop applies.

    Purely informational (both paths are byte-identical); the run
    manifest and ``repro analyze`` surface it so fast-loop coverage is
    observable.
    """
    if obs is not None:
        return "an attached observer requires the event-emitting columnar loop"
    if config.architecture != "distributed":
        return "hierarchical escalation replays on the columnar core"
    if config.policy != "lru":
        return "lfu victim accounting replays on the columnar core"
    if config.window_mode not in ("count", "cumulative"):
        return "time-window age reads have trim side effects; columnar core"
    return None


def simulate_batch(
    config, trace, obs=None, chunk_size: Optional[int] = None,
    regimes: Optional[dict] = None, spans=None, timeseries=None,
) -> SimulationResult:
    """Replay ``trace`` under ``config`` on the batch engine.

    Accepts the same sources as :func:`simulate_columnar`: a materialised
    :class:`~repro.trace.record.Trace` or any streamed source exposing
    ``interned_chunks(chunk_size)`` (packed columnar readers, chunked
    synthetic generators); streamed sources replay with O(chunk) memory.
    Raises :class:`SimulationError` for configs outside the shared
    engine envelope — use ``run_simulation`` for transparent fallback.

    ``regimes``, when given a dict, receives the per-regime request
    counts after the run: ``cold`` (vectorised first-occurrence replay),
    ``hit_run`` (bulk-scanned warm hit runs), and ``scalar``
    (per-request protocol path). Configs that replay on the chunked
    columnar core instead record ``fallback_reason``. Counts only — the
    engine never reads a clock; ``repro profile`` derives wall-time
    shares from the profiler's per-function attribution.

    ``spans`` / ``timeseries`` are the out-of-band telemetry channels
    shared with :func:`simulate_columnar` (span tracer; per-chunk sample
    recorder). Unlike an attached observer they do *not* force the
    columnar fallback — the fast loop reports into them at chunk/regime
    granularity, with the wall-clock reads quarantined inside
    ``repro.obs``. Results are byte-identical with or without them.
    """
    reason = columnar_unsupported_reason(config)
    if reason is not None:
        raise SimulationError(f"config unsupported by the batch engine: {reason}")
    if config.patch_size <= 0:
        # Same guard (and message) patch_zero_sizes raises in the object path.
        raise TraceError(f"patch_size must be positive, got {config.patch_size}")
    loop_reason = batch_fastloop_reason(config, obs)
    if loop_reason is not None:
        # Envelope configs the fast loop does not vectorise replay on the
        # chunked columnar core — byte-identical by its own contract.
        if regimes is not None:
            regimes["fallback_reason"] = loop_reason
        return simulate_columnar(
            config, trace, obs=obs, chunk_size=chunk_size,
            spans=spans, timeseries=timeseries,
        )
    return _simulate_fast(config, trace, chunk_size, regimes, spans, timeseries)


def _simulate_fast(
    config, trace, chunk_size: Optional[int], regimes: Optional[dict] = None,
    spans=None, timeseries=None,
) -> SimulationResult:
    """The vectorised fast loop (distributed + LRU + pure windows, no obs)."""
    np = load_numpy()
    patch = config.patch_size
    partitioner = config.partitioner

    # ---------------------------------------------------------------- #
    # Topology, capacities, partitioning (mirrors simulate_columnar)
    # ---------------------------------------------------------------- #
    topology = StarTopology(config.num_caches)
    num_caches = topology.num_caches
    leaves = topology.leaves()
    num_leaves = len(leaves)
    rr_request = partitioner == "round-robin-request"
    hash_partitioner = partitioner == "hash"
    probe_targets = [tuple(topology.siblings_of(leaf)) for leaf in leaves]
    num_targets = num_caches - 1

    # Equal split, same arithmetic as build_caches with unit weights.
    weights = [1.0] * num_caches
    total_weight = sum(weights)
    capacity = [int(config.aggregate_capacity * w / total_weight) for w in weights]
    if any(share <= 0 for share in capacity):
        raise SimulationError(
            f"aggregate capacity {config.aggregate_capacity} too small for "
            f"{num_caches} caches with shares {weights}"
        )
    cap = capacity[0]  # equal shares: one scalar serves every admit check

    # "cacheN" Via-header lengths, matching build_caches' naming.
    sender_len = [5 + len(str(i)) for i in range(num_caches)]

    # ---------------------------------------------------------------- #
    # Flat doc-major state: slot = doc * NC + cache. Growth per chunk is
    # a pure extend — slot numbering never changes. ``seq[slot]`` is the
    # global index of the request that last touched the copy; ``heaps[c]``
    # orders candidates lazily (see the module docstring).
    # ---------------------------------------------------------------- #
    NC = num_caches
    num_docs = 0
    # repro: domains[present_b=cache-slot->any:uint8, pred=cache-slot->any:uint8]
    # repro: domains[dsz=cache-slot->byte-size:int64, lh=cache-slot->age-tick:float64]
    # repro: domains[seq=cache-slot->global-seq:int64]
    present_b = bytearray()
    # Per-slot metadata lives in buffer-protocol columns — ``array`` /
    # ``bytearray`` — so the scalar protocol path (miss_path/_admit,
    # which runs once per *state-changing* request and dominates
    # evicting replay) gets Python-speed element access, while the
    # warm/cold regimes take zero-copy ``np.frombuffer`` views for bulk
    # scatters. Views are created where needed and dropped before the
    # next growth (a buffer with an exported view cannot be resized).
    # ``array("d")`` holds C doubles, so ``lh`` arithmetic stays bit-
    # and serialisation-identical to the object core's floats.
    dsz = array("q")  # resident copy size
    lh = array("d")  # last-touch timestamp
    seq = array("q")  # last-touch global request index
    pred = bytearray() if np is not None else None
    # Warm-scanner shared cells (see warm_loop). ``pred_conflict`` is set
    # when an eviction invalidated the current block's classifications;
    # ``flush_cb`` holds the active block's flush closure so _admit can
    # apply deferred hit touches before evicting a marked slot;
    # ``touched`` records the newest scalar (touch index, timestamp) per
    # slot inside a block so the block-end scatter cannot roll a
    # promotion refresh back to an older bulk value.
    pred_conflict = [False]
    flushed = [False]
    flush_cb: List = [None]
    blk_state: List = [None, None, 0, 0]
    touched: dict = {}
    sr_hits = [0]  # run members resolved by scalar_run's residency recheck
    heaps: List[list] = [[] for _ in range(NC)]
    used = [0] * NC
    copies = [0] * NC

    # Inline expiration-age window state (same arithmetic sequence as
    # RingAgeTracker / the object deque tracker, so sums are bit-equal).
    count_mode = config.window_mode == "count"
    W = config.window_size
    ring: List[List[float]] = [[0.0] * (W if count_mode else 0) for _ in range(NC)]
    rhead = [0] * NC
    rcount = [0] * NC
    rsum = [0.0] * NC
    csum = [0.0] * NC
    tot = [0] * NC
    # Cached age value + formatted-age text length per cache; ages change
    # only when an eviction records into the window, so reads are O(1).
    cur_age = [_INF] * NC
    age_len = [3] * NC  # len("inf")

    # Per-doc protocol columns (engine-owned copies, grown per chunk).
    url_len_l: List[int] = []
    icp_l: List[int] = []
    client_leaf: List[int] = []
    if np is not None:
        url_len_g = _NpGrow(np)
        icp_g = _NpGrow(np)
        client_leaf_g = _NpGrow(np)
        first_size_g = _NpGrow(np)  # -1 until a doc's first request lands
        leaves_np = np.array(leaves, dtype=np.intp)
        sender_np = np.array(sender_len, dtype=np.int64)
        pow10 = np.power(10, np.arange(1, 19, dtype=np.int64))
    else:
        url_len_g = icp_g = client_leaf_g = first_size_g = None
        leaves_np = sender_np = pow10 = None

    # Per-cache stats columns (CacheStats fields).
    st_lookups = [0] * NC
    st_local_hits = [0] * NC
    st_local_misses = [0] * NC
    st_remote_served = [0] * NC
    st_admissions = [0] * NC
    st_rejections = [0] * NC
    st_evictions = [0] * NC
    st_bytes_local = [0] * NC
    st_bytes_remote = [0] * NC
    st_bytes_admitted = [0] * NC
    st_bytes_evicted = [0] * NC
    st_declined = [0] * NC
    st_promo_granted = [0] * NC
    st_promo_withheld = [0] * NC

    # Bus counters: [icp_q, icp_r, http_req, http_resp, icp_B, hdr_B, body_B]
    bus = [0, 0, 0, 0, 0, 0, 0]
    # Metrics: [requests, local, remote, miss, B_req, B_local, B_remote, B_miss]
    met = [0, 0, 0, 0, 0, 0, 0, 0]
    latency_sum = [0.0]

    # ---------------------------------------------------------------- #
    # Scheme / latency / strategy parameters
    # ---------------------------------------------------------------- #
    ea = config.scheme == "ea"
    tie_requester = config.tie_break == "requester"
    replica_cap = config.max_replica_fraction if ea else None
    rc_on = replica_cap is not None
    max_age_strategy = config.responder_strategy == "max_age"
    constant_latency = config.latency == "constant"
    if constant_latency:
        model = ConstantLatencyModel()
        lat_local = model.local_hit
        lat_remote = model.remote_hit
        lat_miss = model.miss
        lan_bw = wan_bw = 1.0  # unused
    else:
        model = ComponentLatencyModel()
        lat_local = model.local_service
        lat_remote = model.icp_rtt + model.proxy_http_setup
        lat_miss = model.icp_rtt + model.origin_http_setup
        lan_bw = model.lan_bandwidth
        wan_bw = model.wan_bandwidth
    if np is not None:
        # Outcome-code-indexed latency components (index 1 unused).
        lat_lookup = np.array([lat_local, 0.0, lat_remote, lat_miss])
    fmt_age = format_expiration_age
    warmup = config.warmup_requests
    sdig: dict = {}  # stored-size -> len(str(size)), bounded by doc count

    # Rebound per chunk; miss_path reads them as free variables.
    # repro: domains[gbase=global-seq, out=chunk-offset->any:uint8]
    leaf_l: List[int] = []
    rsz_l: List[int] = []
    gbase = 0
    out = bytearray()
    served: List[int] = []
    # Lean mode is only sound while *every* request so far matched its
    # doc's first-seen size: one deviating chunk can leave a stored size
    # that differs from the size column, so the flag latches off.
    sizes_consistent = True

    # Cold regime (see module docstring): sound while no eviction has ever
    # happened anywhere, which this engine guarantees by construction — the
    # flag latches off *before* the first request that could evict runs.
    # EA with tie_break="responder" never stores on a remote hit, so seen
    # slots would not all be resident; that shape replays on the loop.
    cold = np is not None and (not ea or tie_requester)
    # Per doc: min leaf holding a copy (-1 until first seen). Cold-only
    # state, and cold is numpy-only, so this is always a numpy column.
    if np is not None:
        first_min_g = _NpGrow(np)
        first_min = first_min_g.view()  # repro: domains[first_min=interned-id->any:int64]
    else:
        first_min_g = None
        first_min = None
    # Deferred last-touch fixups from cold segments: (slot, touch index,
    # timestamp) arrays, applied only if the general loop (which reads
    # lh/seq at evictions) ever takes over. ``seq`` is touch-monotone, so
    # replaying fixups oldest-first under a ``g > seq[slot]`` guard
    # commutes with any direct writes the cold loop already made
    # (responder promotions). Slots are unique within each tuple, so the
    # masked scatters below are conflict-free.
    pending: List[tuple] = []

    def flush_pending() -> None:
        if not pending:
            return
        seq_v = np.frombuffer(seq, dtype=np.int64)
        lh_v = np.frombuffer(lh)
        for slots_p, gs_p, tss_p in pending:
            m = gs_p > seq_v[slots_p]
            sm = slots_p[m]
            seq_v[sm] = gs_p[m]
            lh_v[sm] = tss_p[m]
        pending.clear()

    def miss_path(i: int, slot: int, now: float) -> None:
        """Everything after a failed local lookup for request ``i``.

        Mirrors the columnar engine's miss branch for the distributed
        architecture: ICP probe scan, remote serve + placement decision,
        or origin fetch + admission — with all outcome-classifiable
        accounting (bus/metrics/latency) deferred to the post-pass via
        ``out``/``served``.
        """
        cache = leaf_l[i]
        base = slot - cache
        # Probe scan in the engine's target order (ascending siblings).
        responder = -1
        if max_age_strategy:
            best_age = 0.0
            for t in probe_targets[cache]:
                if present_b[base + t]:
                    t_age = cur_age[t]
                    if responder < 0 or t_age > best_age:
                        responder = t
                        best_age = t_age
        else:  # "first": lowest holder index == first hit in ascending scan
            for t in probe_targets[cache]:
                if present_b[base + t]:
                    responder = t
                    break

        if responder >= 0:
            # Remote hit. Scheme decision reads requester then responder age.
            req_age = cur_age[cache]
            resp_age = cur_age[responder]
            if ea:
                if req_age > resp_age:
                    store = True
                elif req_age == resp_age:
                    store = tie_requester
                else:
                    store = False
                refresh = resp_age > req_age
            else:
                store = True
                refresh = True
            rslot = base + responder
            size = dsz[rslot]
            if rc_on and store and size > replica_cap * cap:
                store = False
                refresh = True
            # Header bytes that need the responder / the live ages stay
            # inline; the (doc, leaf)-only request-header base is summed in
            # the post-pass from the precomputed column.
            al = age_len[cache]
            if al < 0:
                al = len(fmt_age(req_age))
                age_len[cache] = al
            alr = age_len[responder]
            if alr < 0:
                alr = len(fmt_age(resp_age))
                age_len[responder] = alr
            sd = sdig.get(size)
            if sd is None:
                sd = len(str(size))
                sdig[size] = sd
            bus[5] += al + alr + 70 + sd + sender_len[responder]
            # serve_remote at the responder.
            st_remote_served[responder] += 1
            st_bytes_remote[responder] += size
            if refresh:
                st_promo_granted[responder] += 1
                lh[rslot] = now
                seq[rslot] = gbase + i
                touched[rslot] = (gbase + i, now)
            else:
                st_promo_withheld[responder] += 1
            if store:
                _admit(cache, slot, size, now, gbase + i)
            else:
                st_declined[cache] += 1
            out[i] = 2
            served[i] = size
            return

        # Group-wide miss: origin fetch, store at the requester. The
        # engine's own-age decision read is side-effect-free in pure
        # window modes, so only the admission remains.
        size = rsz_l[i]
        _admit(cache, slot, size, now, gbase + i)
        out[i] = 3
        served[i] = size

    def _admit(cache: int, slot: int, size: int, now: float, g: int) -> None:
        """Mirror of ProxyCache.admit for a non-resident doc.

        The refresh branch is unreachable here (every caller just saw
        ``present_b[slot] == 0``), and ``entry_time``/``hit_count`` are
        dead state under LRU — both are elided.
        """
        if size > cap:
            st_rejections[cache] += 1
            return
        in_use = used[cache]
        if in_use + size > cap:
            evicted = 0
            ebytes = 0
            rg = ring[cache]
            heap_c = heaps[cache]
            while in_use + size > cap:
                s, victim = heap_c[0]
                if not present_b[victim]:
                    heappop(heap_c)  # evicted earlier; entry is dead
                    continue
                if pred is not None and pred[victim]:
                    # The candidate carries a deferred warm-block hit
                    # touch (or an outstanding hit prediction): bring
                    # the block's consumed touches current, then
                    # re-examine — the flushed recency may reschedule
                    # it. The flush aborts the rest of the block.
                    flush_cb[0]()
                    continue
                cur = seq[victim]
                if cur != s:
                    # Touched since pushed: reschedule at its live index.
                    heappop(heap_c)
                    heappush(heap_c, (cur, victim))
                    continue
                # Live minimum touch index == the LRU list's victim.
                heappop(heap_c)
                present_b[victim] = 0
                vs = dsz[victim]
                in_use -= vs
                age = now - lh[victim]
                # Window record: same +=/-= sequence as RingAgeTracker.
                if count_mode:
                    rsum[cache] += age
                    wc = rcount[cache]
                    h = rhead[cache]
                    if wc == W:
                        rsum[cache] -= rg[h]
                        rg[h] = age
                        rhead[cache] = h + 1 if h + 1 < W else 0
                    else:
                        rg[(h + wc) % W] = age
                        rcount[cache] = wc + 1
                else:
                    tot[cache] += 1
                    csum[cache] += age
                evicted += 1
                ebytes += vs
            st_evictions[cache] += evicted
            st_bytes_evicted[cache] += ebytes
            copies[cache] -= evicted
            # Refresh the cached age value; the text length lazily.
            if count_mode:
                wc = rcount[cache]
                cur_age[cache] = rsum[cache] / wc if wc else _INF
            else:
                cur_age[cache] = csum[cache] / tot[cache]
            age_len[cache] = -1
        present_b[slot] = 1
        dsz[slot] = size
        lh[slot] = now
        seq[slot] = g
        heappush(heaps[cache], (g, slot))
        used[cache] = in_use + size
        st_admissions[cache] += 1
        st_bytes_admitted[cache] += size
        copies[cache] += 1

    def scalar_run(r: int) -> int:
        """Replay run ``r`` through the per-request protocol path.

        Dispatched by the warm scanner for runs classified non-resident
        at block-scan time. The classification can be stale in the hit
        direction by the time the run is reached (an admission earlier
        in the block made the slot resident), so a live recheck turns
        those into plain hit runs. Otherwise the first request misses;
        once an admission sticks, the remaining members collapse to
        local hits whose only state effect is the final touch. Returns
        the member count; members resolved by the residency recheck or
        by run collapse after a sticking admission — requests that
        never individually execute the protocol path — are additionally
        tallied in ``sr_hits`` so the regime breakdown reports them as
        hit-run work, not scalar fallback. A named function (not
        inlined in the scanner) so ``repro profile`` attributes
        scalar-path wall time to one frame.
        """
        i = starts_l[r]
        slot = sslots_l[r]
        e = ends_l[r]
        if present_b[slot]:
            lh[slot] = ts_l[e - 1]
            seq[slot] = gbase + e - 1
            if not lean:
                served[i:e] = dsz[slot]
            sr_hits[0] += e - i
            return e - i
        miss_path(i, slot, sts_l[r])
        if e - i > 1:
            if present_b[slot]:
                lh[slot] = ts_l[e - 1]
                seq[slot] = gbase + e - 1
                if not lean:
                    served[i + 1 : e] = dsz[slot]
                sr_hits[0] += e - i - 1
            else:
                # Rejected/declined: each member re-misses until one
                # admission sticks, then the tail collapses.
                j = i + 1
                while j < e:
                    if present_b[slot]:
                        lh[slot] = ts_l[e - 1]
                        seq[slot] = gbase + e - 1
                        if not lean:
                            served[j:e] = dsz[slot]
                        sr_hits[0] += e - j
                        break
                    miss_path(j, slot, ts_l[j])
                    j += 1
        return e - i

    def warm_loop():
        """Warm-regime scanner: block classification, deferred bulk touches.

        Classifies runs in fixed-size blocks with one gather against the
        live residency bitmap (``present_b`` viewed as uint8 — mutations
        from :func:`_admit`/:func:`miss_path` are visible through the
        view), replays only the predicted-miss runs through
        :func:`scalar_run`, and applies all the predicted-hit runs'
        lazy-LRU touches in one fancy-indexed scatter per block after
        the scalar work (a slot recurring among the hits resolves
        last-wins under fancy assignment — numpy applies values in index
        order — which is exactly the scalar loop's final state).

        Deferring the hit touches within a block is sound because
        nothing reads them until an eviction selects one of the touched
        slots: every predicted-hit slot carries a ``pred`` mark, and
        :func:`_admit` invokes the flush closure before evicting a
        marked slot, which applies the consumed touches immediately and
        aborts the rest of the block for reclassification
        (``pred_conflict``). Predicted-miss runs can only go stale in
        the hit direction (an earlier admission), handled by the live
        recheck in :func:`scalar_run`. Promotion refreshes landing on
        scatter-covered slots are reconciled by the ``touched`` fixup —
        the newest touch index wins, matching scalar order. Returns
        (hit_run_requests, scalar_requests) for the chunk tail.
        """
        # repro: domains[starts_r=any->chunk-offset:intp, ends_r=any->chunk-offset:intp]
        # repro: domains[rslots=any->cache-slot:intp, rlast_ts=any->age-tick:float64]
        starts_r, ends_r, rslots, rlast_ts = runs_np
        rlast_g = ends_r + (gbase - 1)
        nruns = len(starts_r)
        hit_req = 0
        scal_req = 0
        sr_hits[0] = 0
        # No reference to these views may survive the chunk body — the
        # backing buffers' extend() on the next chunk would raise
        # BufferError. They are locals of this call, which returns
        # before the next chunk grows anything.
        res = np.frombuffer(present_b, dtype=np.uint8)
        dszv = np.frombuffer(dsz, dtype=np.int64)
        lhv = np.frombuffer(lh)
        seqv = np.frombuffer(seq, dtype=np.int64)
        predv = np.frombuffer(pred, dtype=np.uint8)
        r = int(np.searchsorted(starts_r, tail_start)) if tail_start else 0
        B = 1024
        # Deferral credit: the block scatter machinery only pays for
        # itself when blocks complete. Conflict aborts burn credit;
        # conflict-free mixed blocks and pure-hit blocks (the signature
        # of a stable residency set) earn it back. At zero credit mixed
        # blocks replay fully scalar — eviction-churn regimes then run
        # at plain per-run cost instead of thrashing classification.
        credit = 4

        def fill_served(sg, s, e) -> None:
            # Non-lean only: fill each bulk hit run's member span with
            # the resident copy's stored size. Spans are disjoint from
            # the scalar runs' own served writes, so order is free.
            lens = e - s
            tot = int(lens.sum())
            if not tot:
                return
            off = np.cumsum(lens, dtype=np.int64)
            idx = np.arange(tot, dtype=np.intp) + np.repeat(s - (off - lens), lens)
            served[idx] = np.repeat(dszv[sg], lens)

        def apply_touches(sl_b, hitm_b, r0, upto) -> None:
            # Scatter the consumed hit prefix's touches, then re-assert
            # any newer scalar touches (promotion refreshes) the scatter
            # may have rolled back, and retire the block's marks.
            cons = upto - r0
            if cons:
                m = hitm_b[:cons]
                sg = sl_b[:cons][m]
                lhv[sg] = rlast_ts[r0:upto][m]
                seqv[sg] = rlast_g[r0:upto][m]
            if touched:
                for slot, gt in touched.items():
                    if gt[0] > seq[slot]:
                        seq[slot] = gt[0]
                        lh[slot] = gt[1]
                touched.clear()
            predv[sl_b] = 0

        def flush_block() -> None:
            apply_touches(
                blk_state[0], blk_state[1], blk_state[2], blk_state[3]
            )
            flushed[0] = True
            pred_conflict[0] = True

        flush_cb[0] = flush_block
        while r < nruns:
            blk = B if r + B <= nruns else nruns - r
            sl = rslots[r : r + blk]
            hitm = res[sl] != 0
            nh = int(hitm.sum())
            if nh == blk:
                # Pure hit block: one scatter pair, no scalar work, no
                # marks needed — nothing below can read stale recency
                # because nothing below runs.
                lhv[sl] = rlast_ts[r : r + blk]
                seqv[sl] = rlast_g[r : r + blk]
                if not lean:
                    fill_served(sl, starts_r[r : r + blk], ends_r[r : r + blk])
                hit_req += ends_l[r + blk - 1] - starts_l[r]
                r += blk
                if B < 8192:
                    B <<= 1
                if credit < 8:
                    credit += 1
                continue
            if nh * 4 < blk or not credit:
                # Churn block (hits scarce): replay every run through
                # the scalar path with live residency checks — no
                # deferral, no marks, no conflicts possible. This keeps
                # eviction-heavy regimes at the plain per-run cost
                # instead of thrashing the block machinery.
                for p in range(r, r + blk):
                    scal_req += scalar_run(p)
                r += blk
                continue
            mpos = np.flatnonzero(~hitm)
            predv[sl] = hitm
            flushed[0] = False
            pred_conflict[0] = False
            blk_state[0] = sl
            blk_state[1] = hitm
            blk_state[2] = r
            stop = r + blk
            blk_scal = 0
            for p in (mpos + r).tolist():
                blk_state[3] = p
                blk_scal += scalar_run(p)
                if pred_conflict[0]:
                    # An eviction invalidated the outstanding
                    # predictions; reclassify from the next run with a
                    # smaller block so conflict storms stay cheap.
                    stop = p + 1
                    if B > 128:
                        B >>= 1
                    credit = credit - 2 if credit > 2 else 0
                    break
            else:
                if B < 8192:
                    B <<= 1
                if credit < 8:
                    credit += 1
            if not flushed[0]:
                apply_touches(sl, hitm, r, stop)
            if not lean:
                cons = stop - r
                m = hitm[:cons]
                fill_served(
                    sl[:cons][m], starts_r[r:stop][m], ends_r[r:stop][m]
                )
            scal_req += blk_scal
            hit_req += ends_l[stop - 1] - starts_l[r] - blk_scal
            r = stop
        flush_cb[0] = None
        # Reclassify the residency-recheck hit-runs: they were tallied
        # through scalar_run's return value but never entered the
        # protocol path, so the breakdown reports them as hit-run work.
        return hit_req + sr_hits[0], scal_req - sr_hits[0]

    # Regime tallies (requests handled per path; see ``regimes``).
    reg_cold = 0
    reg_hit = 0
    reg_scalar = 0

    # ---------------------------------------------------------------- #
    # Chunked replay
    # ---------------------------------------------------------------- #
    traced = spans is not None
    sampling = timeseries is not None
    chunks = _chunk_stream(trace, chunk_size, spans)
    if traced:
        # Imported lazily so untraced replay never touches repro.obs.
        from repro.obs.spans import source_label

        spans.begin("engine:batch", "engine")
        chunks = spans.wrap_source(chunks, source_label(trace))
    grand_total = 0
    for chunk, cached_source in chunks:
        n = chunk.num_records
        if traced:
            spans.begin("chunk", "replay")
        new_urls = chunk.new_urls
        if new_urls:
            add = len(new_urls)
            num_docs += add
            url_len_l.extend(chunk.new_url_lens)
            icp_l.extend(chunk.new_icp_probe_bytes)
            grown = add * NC
            present_b.extend(bytes(grown))
            # Zero-fill appends (8-byte elements for the q/d arrays); no
            # numpy view of these buffers is live here — the vector
            # paths create theirs after growth and drop them before the
            # next chunk.
            dsz.frombytes(bytes(8 * grown))
            lh.frombytes(bytes(8 * grown))
            seq.frombytes(bytes(8 * grown))
            if np is not None:
                pred.extend(bytes(grown))
                first_min_g.extend(np, np.full(add, -1, dtype=np.int64))
                first_min = first_min_g.view()
                url_len_g.extend(np, chunk.new_url_lens)
                icp_g.extend(np, chunk.new_icp_probe_bytes)
                first_size_g.extend(np, np.full(add, -1, dtype=np.int64))
        new_clients = chunk.new_client_names
        if new_clients and not rr_request:
            base_client = len(client_leaf)
            if hash_partitioner:
                fresh = [
                    leaves[pos]
                    for pos in client_leaf_positions(new_clients, num_leaves)
                ]
            else:  # round-robin-client: intern order == appearance order
                fresh = [
                    leaves[(base_client + k) % num_leaves]
                    for k in range(len(new_clients))
                ]
            client_leaf.extend(fresh)
            if np is not None:
                client_leaf_g.extend(np, fresh)
        if not n:
            if traced:
                spans.end(records=0)
            continue

        # ------------------------------------------------------------ #
        # Batch precompute: per-request columns + run segmentation.
        # Memoised on the interned trace for whole-trace replay (sweeps
        # re-replay the same trace at many capacities).
        # ------------------------------------------------------------ #
        if traced:
            spans.begin("columns", "replay")
        memo_key = None
        cols = None
        if cached_source is not None:
            memo_key = (
                "batch_cols", np is not None, patch, partitioner,
                tuple(leaves), NC,
            )
            cols = cached_source.derived_cache().get(memo_key)
        if cols is None:
            if np is not None:
                cols = _columns_np(
                    np, chunk, cached_source, patch, partitioner, leaves,
                    leaves_np, sender_np, pow10, NC, num_leaves,
                    client_leaf_g, url_len_g, icp_g, first_size_g,
                )
            else:
                cols = _columns_py(
                    chunk, cached_source, patch, partitioner, leaves,
                    sender_len, NC, num_leaves, client_leaf, url_len_l, icp_l,
                )
            if memo_key is not None:
                cached_source.derived_cache()[memo_key] = cols
        (starts_l, sslots_l, sts_l, ends_l, leaf_l, rsz_l, post, cconst, npx) = cols
        if traced:
            spans.end()
        sizes_consistent = sizes_consistent and cconst
        lean = sizes_consistent
        ts_l = chunk.timestamps
        gbase = chunk.base_records
        if np is not None:
            # repro: domains[docs_np=chunk-offset->interned-id:intp]
            # repro: domains[slots_np=chunk-offset->cache-slot:intp]
            # repro: domains[ts_np=chunk-offset->age-tick:float64]
            # repro: domains[fsreq_np=chunk-offset->byte-size:int64]
            docs_np, slots_np, ts_np, fsreq_np, runs_np = npx

        out = bytearray(n)
        served_np = None  # set by the cold path: first-size served column
        tail_start = 0  # first request index the general loop replays

        # ------------------------------------------------------------ #
        # Cold-regime prefix: replay first-slot-occurrences only, up to
        # the split where an admission would first evict/reject/decline.
        # ------------------------------------------------------------ #
        if cold:
            if traced:
                spans.begin("cold", "regime")
            leaf_np = post[0]
            grp = None
            if cached_source is not None:
                gkey = ("batch_grp", partitioner, tuple(leaves), NC)
                grp = cached_source.derived_cache().get(gkey)
            if grp is None:
                order = np.argsort(slots_np, kind="stable")
                ss = slots_np[order]
                bnd = np.empty(n, dtype=bool)
                bnd[0] = True
                if n > 1:
                    bnd[1:] = ss[1:] != ss[:-1]
                gpos = np.flatnonzero(bnd)
                gend = np.empty(len(gpos), dtype=np.intp)
                gend[:-1] = gpos[1:]
                gend[-1] = n
                # Stable sort keeps each group's original indices ascending,
                # so group boundaries give first/last occurrence directly.
                grp = (ss[gpos], order[gpos], order[gend - 1])
                if cached_source is not None:
                    cached_source.derived_cache()[gkey] = grp
            # repro: domains[grp_slot=any->cache-slot:intp, grp_first=any->chunk-offset:intp]
            # repro: domains[grp_last=any->chunk-offset:intp]
            grp_slot, grp_first, grp_last = grp
            # Cold invariant: a slot was seen before iff it is resident.
            # (No reference to the frombuffer view may outlive this
            # statement — present_b.extend() would raise BufferError.)
            new_g = np.frombuffer(present_b, dtype=np.uint8)[grp_slot] == 0
            ev_ord = np.argsort(grp_first[new_g])
            ev_idx = grp_first[new_g][ev_ord]
            ev_slot = grp_slot[new_g][ev_ord]
            ev_doc = docs_np[ev_idx]
            ev_size = fsreq_np[ev_idx]  # admitted size is always the first size
            ev_leaf = leaf_np[ev_idx]
            split = n
            bad = ev_size > cap
            if rc_on:
                bad = bad | (ev_size > replica_cap * cap)
            if bool(bad.any()):
                split = int(ev_idx[int(np.argmax(bad))])
            for c in range(NC):
                cm = ev_leaf == c
                cs = np.cumsum(ev_size[cm], dtype=np.int64)
                k = int(np.searchsorted(cs, cap - used[c], side="right"))
                if k < len(cs):
                    oidx = int(ev_idx[cm][k])
                    if oidx < split:
                        split = oidx
            if split:
                ecount = int(np.searchsorted(ev_idx, split))
                if ecount:
                    # Vectorised first-occurrence replay. Events are
                    # regrouped by doc (stable sort keeps time order
                    # inside each group); the serving sibling of every
                    # non-compulsory event is the doc's running-minimum
                    # holding leaf — the ascending probe scan under
                    # all-inf ages picks the minimum holding sibling —
                    # seeded with the carried-over ``first_min`` state.
                    e_idx = ev_idx[:ecount]
                    e_slot = ev_slot[:ecount]
                    e_leaf = ev_leaf[:ecount]
                    e_size = ev_size[:ecount]
                    e_ts = ts_np[e_idx]
                    e_g = e_idx + gbase
                    dorder = np.argsort(ev_doc[:ecount], kind="stable")
                    d_doc = ev_doc[:ecount][dorder]
                    d_leaf = e_leaf[dorder]
                    gstart = np.empty(ecount, dtype=bool)
                    gstart[0] = True
                    gstart[1:] = d_doc[1:] != d_doc[:-1]
                    # bool input would otherwise promote to the platform
                    # default integer (int32 on Windows).
                    gid = np.cumsum(gstart, dtype=np.int64) - 1
                    # Segmented inclusive running minimum of the leaf
                    # column via offset max-accumulate: group offsets
                    # dominate the encoded values, so earlier groups can
                    # never leak into later ones. NC encodes "no holder".
                    enc = gid * (NC + 1) + (NC - d_leaf)
                    run_incl = NC - (np.maximum.accumulate(enc) - gid * (NC + 1))
                    seed = first_min[d_doc[gstart]]
                    seed = np.where(seed < 0, NC, seed)
                    shifted = np.empty(ecount, dtype=np.int64)
                    shifted[0] = NC
                    shifted[1:] = run_incl[:-1]
                    before = np.minimum(
                        seed[gid], np.where(gstart, NC, shifted)
                    )
                    compulsory = before >= NC
                    gendm = np.empty(ecount, dtype=bool)
                    gendm[:-1] = gstart[1:]
                    gendm[-1] = True
                    first_min[d_doc[gstart]] = np.minimum(
                        seed, run_incl[gendm]
                    )
                    d_idx = e_idx[dorder]
                    ov = np.frombuffer(out, dtype=np.uint8)
                    ov[d_idx] = np.where(compulsory, 3, 2)
                    del ov
                    rem = ~compulsory
                    if bool(rem.any()):
                        fm_r = before[rem]
                        sz_r = e_size[dorder][rem]
                        # 76 + Content-Length digits + sender header.
                        bus[5] += int((
                            np.searchsorted(pow10, sz_r, side="right")
                            + 77
                            + sender_np[fm_r]
                        ).sum())
                        rcnt = np.bincount(fm_r, minlength=NC)
                        rbyt = np.bincount(fm_r, weights=sz_r, minlength=NC)
                        for c in range(NC):
                            k = int(rcnt[c])
                            if k:
                                st_remote_served[c] += k
                                st_bytes_remote[c] += int(rbyt[c])
                                if ea:
                                    # Equal (inf) ages: never granted.
                                    st_promo_withheld[c] += k
                                else:
                                    st_promo_granted[c] += k
                    # Admissions: slots are unique (first occurrences),
                    # so the scatters are conflict-free. (The residency
                    # view must not outlive this block.)
                    pb = np.frombuffer(present_b, dtype=np.uint8)
                    pb[e_slot] = 1
                    del pb
                    dszv = np.frombuffer(dsz, dtype=np.int64)
                    lhv = np.frombuffer(lh)
                    seqv = np.frombuffer(seq, dtype=np.int64)
                    dszv[e_slot] = e_size
                    lhv[e_slot] = e_ts
                    seqv[e_slot] = e_g
                    acnt = np.bincount(e_leaf, minlength=NC)
                    abyt = np.bincount(e_leaf, weights=e_size, minlength=NC)
                    for c in range(NC):
                        k = int(acnt[c])
                        if not k:
                            continue
                        cm = e_leaf == c
                        # Cold-regime heaps are append-only with globally
                        # ascending touch indices, so the entry list is
                        # sorted — and a sorted list is a valid min-heap.
                        heaps[c].extend(
                            zip(e_g[cm].tolist(), e_slot[cm].tolist())
                        )
                        used[c] += int(abyt[c])
                        st_admissions[c] += k
                        st_bytes_admitted[c] += int(abyt[c])
                        copies[c] += k
                    if not ea and bool(rem.any()):
                        # Responder promotions touch the serving slot.
                        # Applied *after* the admission scatter: a slot
                        # admitted earlier in this batch can be
                        # promotion-touched later, and the latest touch
                        # must win. Duplicates share a doc group, so
                        # array order is time order and fancy assignment
                        # resolves last-wins.
                        rslot_r = e_slot[dorder][rem] - d_leaf[rem] + fm_r
                        lhv[rslot_r] = e_ts[dorder][rem]
                        seqv[rslot_r] = e_g[dorder][rem]
                    del dszv, lhv, seqv
                served_np = fsreq_np  # never mutated: may be memo-shared
                if split == n:
                    tail_start = n
                    pending.append(
                        (grp_slot, grp_last + gbase, ts_np[grp_last])
                    )
                else:
                    tail_start = split
                    sl_p = slots_np[:split]
                    order_p = np.argsort(sl_p, kind="stable")
                    ssp = sl_p[order_p]
                    bnd = np.empty(split, dtype=bool)
                    bnd[0] = True
                    if split > 1:
                        bnd[1:] = ssp[1:] != ssp[:-1]
                    gpos = np.flatnonzero(bnd)
                    gend = np.empty(len(gpos), dtype=np.intp)
                    gend[:-1] = gpos[1:]
                    gend[-1] = split
                    p_last = order_p[gend - 1]
                    pending.append(
                        (ssp[gpos], p_last + gbase, ts_np[p_last])
                    )
            if split < n:
                # The next admission can evict: ages stop being inf, so
                # the regime is over for good. The general loop needs the
                # exact last-touch state, so apply the deferred fixups.
                flush_pending()
                cold = False
                if split:
                    # Rebuild run segmentation for the tail only. A run
                    # straddling the split re-enters as a fresh run start,
                    # which the loop handles identically.
                    tn = n - split
                    tkeep = np.empty(tn, dtype=bool)
                    tkeep[0] = True
                    if tn > 1:
                        tkeep[1:] = slots_np[split + 1 :] != slots_np[split:-1]
                    tstarts = np.flatnonzero(tkeep) + split
                    starts_l = tstarts.tolist()
                    ends_l = starts_l[1:]
                    ends_l.append(n)
                    sslots_l = slots_np[tstarts].tolist()
                    sts_l = ts_np[tstarts].tolist()
                    tends = np.empty(len(tstarts), dtype=np.intp)
                    tends[:-1] = tstarts[1:]
                    tends[-1] = n
                    runs_np = (
                        tstarts, tends, slots_np[tstarts], ts_np[tends - 1]
                    )
            if traced:
                spans.end(requests=tail_start)

        # The served column is only materialised when the stateful path
        # (whose miss branch records into it) actually runs; in numpy
        # mode it is an int64 array so bulk hit-runs can fill member
        # spans with one np.repeat scatter (lean mode derives every
        # served size from the precomputed column instead, so the writes
        # are dead there — the zeros allocation is one memset).
        reg_cold += tail_start
        if np is None:
            served = [0] * n
        elif tail_start < n:
            served = np.zeros(n, dtype=np.int64)
        else:
            served = []

        # ------------------------------------------------------------ #
        # The stateful tail: run starts only. A run whose first request
        # leaves the doc resident collapses — members are local hits
        # whose only state effect is the final touch index and last-hit.
        # With numpy the warm scanner bulk-processes whole all-hit run
        # prefixes (see warm_loop); the pure-Python fallback replays
        # every run through the scalar path below.
        # ------------------------------------------------------------ #
        if traced and tail_start < n:
            spans.begin("warm", "regime")
            warm_hit_base = reg_hit
            warm_scal_base = reg_scalar
        if tail_start >= n:
            pass  # fully cold chunk: no stateful loop at all
        elif np is not None:
            hit_req, scal_req = warm_loop()
            reg_hit += hit_req
            reg_scalar += scal_req
        else:
            reg_scalar += n
            for i, slot, now, e in zip(starts_l, sslots_l, sts_l, ends_l):
                if present_b[slot]:
                    sz = dsz[slot]
                    served[i] = sz
                    lh[slot] = now
                    seq[slot] = gbase + i
                    if e - i > 1:
                        lh[slot] = ts_l[e - 1]
                        seq[slot] = gbase + e - 1
                        served[i + 1 : e] = [sz] * (e - i - 1)
                    continue
                miss_path(i, slot, now)
                if e - i > 1:
                    if present_b[slot]:
                        # Stored: the rest of the run collapses to local hits.
                        sz = dsz[slot]
                        lh[slot] = ts_l[e - 1]
                        seq[slot] = gbase + e - 1
                        served[i + 1 : e] = [sz] * (e - i - 1)
                    else:
                        # Rejected/declined: each member re-misses until one
                        # admission sticks, then the tail collapses.
                        j = i + 1
                        while j < e:
                            if present_b[slot]:
                                sz = dsz[slot]
                                served[j] = sz
                                lh[slot] = ts_l[j]
                                seq[slot] = gbase + j
                                if e - j > 1:
                                    lh[slot] = ts_l[e - 1]
                                    seq[slot] = gbase + e - 1
                                    served[j + 1 : e] = [sz] * (e - j - 1)
                                break
                            miss_path(j, slot, ts_l[j])
                            j += 1
        if traced and tail_start < n:
            spans.end(
                hit_run=reg_hit - warm_hit_base,
                scalar=reg_scalar - warm_scal_base,
            )

        # ------------------------------------------------------------ #
        # Outcome post-pass: bus, per-cache stats, metrics, latency.
        # ------------------------------------------------------------ #
        if traced:
            spans.begin("post", "replay")
        base_records = gbase
        w_start = warmup - base_records
        if w_start < 0:
            w_start = 0
        elif w_start > n:
            w_start = n
        if np is not None:
            # repro: domains[leaf_np=chunk-offset->any:intp]
            # repro: domains[icp_req_np=chunk-offset->byte-size:int64]
            # repro: domains[remote_base_np=chunk-offset->byte-size:int64]
            # repro: domains[origin_hdr_np=chunk-offset->byte-size:int64]
            # repro: domains[rsz_np=chunk-offset->byte-size:int64]
            leaf_np, icp_req_np, remote_base_np, origin_hdr_np, rsz_np = post
            out_np = np.frombuffer(out, dtype=np.uint8)
            if served_np is None:
                served_np = rsz_np if lean else served
            elif not lean and tail_start < n:
                # Cold prefix served from the first-size column; the
                # stateful tail recorded into the served array. Copy
                # before patching: the column may be memo-shared.
                served_np = served_np.copy()
                served_np[tail_start:] = served[tail_start:]
            nonlocal_mask = out_np != 0
            nl = int(nonlocal_mask.sum())
            if nl:
                remote_mask = out_np == 2
                miss_mask = out_np == 3
                bus[0] += num_targets * nl
                bus[1] += num_targets * nl
                bus[2] += nl
                bus[3] += nl
                bus[4] += num_targets * int(icp_req_np[nonlocal_mask].sum())
                bus[5] += int(remote_base_np[remote_mask].sum())
                bus[5] += int(origin_hdr_np[miss_mask].sum())
                bus[6] += int(served_np[nonlocal_mask].sum())
            local_mask = out_np == 0
            lookup_counts = np.bincount(leaf_np, minlength=NC)
            hit_counts = np.bincount(leaf_np[local_mask], minlength=NC)
            leaf_loc = leaf_np[local_mask]
            srv_loc = served_np[local_mask]
            for c in range(NC):
                st_lookups[c] += int(lookup_counts[c])
                hits_c = int(hit_counts[c])
                st_local_hits[c] += hits_c
                st_local_misses[c] += int(lookup_counts[c]) - hits_c
                st_bytes_local[c] += int(srv_loc[leaf_loc == c].sum())
            m = n - w_start
            if m:
                outm = out_np[w_start:]
                srvm = served_np[w_start:]
                loc_m = outm == 0
                rem_m = outm == 2
                mis_m = outm == 3
                met[0] += m
                met[1] += int(loc_m.sum())
                met[2] += int(rem_m.sum())
                met[3] += int(mis_m.sum())
                met[4] += int(srvm.sum())
                met[5] += int(srvm[loc_m].sum())
                met[6] += int(srvm[rem_m].sum())
                met[7] += int(srvm[mis_m].sum())
                vals = lat_lookup[outm]
                if not constant_latency:
                    srvf = srvm.astype(np.float64)
                    add_term = srvf / np.where(rem_m, lan_bw, wan_bw)
                    vals = np.where(loc_m, vals, vals + add_term)
                fold = np.empty(m + 1, dtype=np.float64)
                fold[0] = latency_sum[0]
                fold[1:] = vals
                np.add.accumulate(fold, out=fold)
                latency_sum[0] = float(fold[m])
        else:
            icp_req_l, remote_base_l, origin_hdr_l = post
            _post_py(
                n, out, served, leaf_l, icp_req_l, remote_base_l, origin_hdr_l,
                w_start, num_targets, constant_latency,
                lat_local, lat_remote, lat_miss, lan_bw, wan_bw,
                bus, met, latency_sum,
                st_lookups, st_local_hits, st_local_misses, st_bytes_local,
            )
        if traced:
            spans.end()  # post
            spans.end(records=n)  # chunk
        grand_total = gbase + n
        if sampling:
            timeseries.sample(
                requests=grand_total,
                local_hits=sum(st_local_hits),
                remote_hits=sum(st_remote_served),
                evictions=sum(st_evictions),
                admissions=sum(st_admissions),
                declined=sum(st_declined),
                promoted=sum(st_promo_granted),
                bytes_local=sum(st_bytes_local),
                bytes_remote=sum(st_bytes_remote),
                body_bytes=bus[6],
                residency_bytes=sum(used),
                t_last=float(ts_l[n - 1]),
                cold=reg_cold,
                hit_run=reg_hit,
                scalar=reg_scalar,
            )
    if traced:
        spans.end(requests=grand_total)

    # ---------------------------------------------------------------- #
    # Result assembly (object-core dataclasses; identical serialisation)
    # ---------------------------------------------------------------- #
    metrics = GroupMetrics(
        requests=met[0],
        local_hits=met[1],
        remote_hits=met[2],
        misses=met[3],
        bytes_requested=met[4],
        bytes_local_hit=met[5],
        bytes_remote_hit=met[6],
        bytes_miss=met[7],
        total_measured_latency=latency_sum[0],
    )
    counters = MessageCounters(
        icp_queries=bus[0],
        icp_replies=bus[1],
        http_requests=bus[2],
        http_responses=bus[3],
        icp_bytes=bus[4],
        http_header_bytes=bus[5],
        http_body_bytes=bus[6],
    )
    cache_stats = [
        CacheStats(
            lookups=st_lookups[c],
            local_hits=st_local_hits[c],
            local_misses=st_local_misses[c],
            remote_hits_served=st_remote_served[c],
            admissions=st_admissions[c],
            rejections=st_rejections[c],
            evictions=st_evictions[c],
            bytes_served_local=st_bytes_local[c],
            bytes_served_remote=st_bytes_remote[c],
            bytes_admitted=st_bytes_admitted[c],
            bytes_evicted=st_bytes_evicted[c],
            placements_declined=st_declined[c],
            promotions_granted=st_promo_granted[c],
            promotions_withheld=st_promo_withheld[c],
        )
        for c in range(NC)
    ]
    if regimes is not None:
        regimes["cold"] = reg_cold
        regimes["hit_run"] = reg_hit
        regimes["scalar"] = reg_scalar
    if count_mode:
        # float(): the window sums may be np.float64 once the numpy-backed
        # lh column feeds the age arithmetic; values are bit-identical.
        ages = [
            float(rsum[c] / rcount[c]) if rcount[c] else _INF for c in range(NC)
        ]
    else:
        ages = [float(csum[c] / tot[c]) if tot[c] else _INF for c in range(NC)]
    if np is not None and num_docs:
        held = np.frombuffer(present_b, dtype=np.uint8)
        unique_documents = int((held.reshape(num_docs, NC) != 0).any(axis=1).sum())
    else:
        unique_documents = sum(
            1 for d in range(num_docs)
            if any(present_b[d * NC : (d + 1) * NC])
        )
    total_copies = sum(copies)
    replication = total_copies / unique_documents if unique_documents else 0.0
    return SimulationResult(
        config=config.to_dict(),
        metrics=metrics,
        message_counters=counters,
        cache_stats=cache_stats,
        expiration_ages=ages,
        avg_cache_expiration_age=average_cache_expiration_age(ages),
        unique_documents=unique_documents,
        total_copies=total_copies,
        replication_factor=replication,
        estimated_latency=metrics.estimated_latency(),
        manifest=None,
    )


class _NpGrow:
    """Amortised-growth numpy column (int64 by default).

    Streamed replay extends per-doc/per-slot columns every chunk;
    rebuilding a numpy array from the python list each time would be
    O(docs x chunks). This doubles capacity instead, so total copy work
    is O(docs). Callers re-fetch :meth:`view` after every extend — the
    buffer may have been reallocated.
    """

    __slots__ = ("buf", "used")

    def __init__(self, np, dtype: str = "int64"):
        self.buf = np.empty(1024, dtype=dtype)
        self.used = 0

    def extend(self, np, values) -> None:
        need = self.used + len(values)
        capacity = len(self.buf)
        if need > capacity:
            while capacity < need:
                capacity *= 2
            grown = np.empty(capacity, dtype=self.buf.dtype)
            grown[: self.used] = self.buf[: self.used]
            self.buf = grown
        self.buf[self.used : need] = values
        self.used = need

    def view(self):
        return self.buf[: self.used]


# repro: domains[pow10=any->any:int64, leaves_np=any->any:intp]
# repro: domains[sender_np=any->byte-size:int64]
# repro: domains[url_len_g=interned-id->byte-size:int64]
# repro: domains[icp_g=interned-id->byte-size:int64]
# repro: domains[first_size_g=interned-id->byte-size:int64]
def _columns_np(
    np, chunk, cached_source, patch, partitioner, leaves,
    leaves_np, sender_np, pow10, NC, num_leaves,
    client_leaf_g, url_len_g, icp_g, first_size_g,
):
    """Vectorised per-chunk columns + run segmentation (numpy path)."""
    n = chunk.num_records
    # repro: domains[leaf_np=chunk-offset->any:intp, rsz_np=chunk-offset->byte-size:int64]
    docs_np = np.array(chunk.doc_ids, dtype=np.intp)  # repro: domains[docs_np=chunk-offset->interned-id:intp]
    ts_np = np.array(chunk.timestamps, dtype=np.float64)  # repro: domains[ts_np=chunk-offset->age-tick:float64]
    if cached_source is not None:
        leaf_l = cached_source.leaf_column(partitioner, leaves)
        leaf_np = np.array(leaf_l, dtype=np.intp)
        rsz_l = cached_source.record_sizes(patch)
        rsz_np = np.array(rsz_l, dtype=np.int64)
    else:
        if partitioner == "round-robin-request":
            base = chunk.base_records
            leaf_np = leaves_np[
                np.arange(base, base + n, dtype=np.intp) % num_leaves
            ]
        else:
            leaf_np = client_leaf_g.view()[
                np.array(chunk.clients, dtype=np.intp)
            ].astype(np.intp)
        leaf_l = leaf_np.tolist()
        sz_np = np.array(chunk.sizes, dtype=np.int64)
        if bool((sz_np == 0).any()):
            rsz_np = np.where(sz_np == 0, patch, sz_np)
        else:
            rsz_np = sz_np
        rsz_l = rsz_np.tolist()
    digits_np = np.searchsorted(pow10, rsz_np, side="right") + 1
    remote_base_np = url_len_g.view()[docs_np] + sender_np[leaf_np] + 50
    origin_hdr_np = remote_base_np + 24 + digits_np
    icp_req_np = icp_g.view()[docs_np]
    # Lean-mode eligibility: every doc's patched size constant so far.
    # First-occurrence assignment: reversed fancy indexing makes the
    # earliest duplicate win; docs seen in prior chunks keep their value.
    fs = first_size_g.view()
    known = fs[docs_np]
    unseen = known < 0
    if bool(unseen.any()):
        fs[docs_np[unseen][::-1]] = rsz_np[unseen][::-1]
        known = fs[docs_np]
    lean = bool((known == rsz_np).all())
    slots_np = docs_np * NC + leaf_np  # repro: domains[slots_np=chunk-offset->cache-slot:intp]
    keep = np.empty(n, dtype=bool)  # repro: domains[keep=chunk-offset->any:bool]
    keep[0] = True
    if n > 1:
        keep[1:] = slots_np[1:] != slots_np[:-1]
    starts_np = np.flatnonzero(keep)  # repro: domains[starts_np=any->chunk-offset:intp]
    starts_l = starts_np.tolist()
    ends_l = starts_l[1:]
    ends_l.append(n)
    sslots_l = slots_np[starts_np].tolist()
    sts_l = ts_np[starts_np].tolist()
    ends_np = np.empty(len(starts_np), dtype=np.intp)  # repro: domains[ends_np=any->chunk-offset:intp]
    ends_np[:-1] = starts_np[1:]
    ends_np[-1] = n
    # Run columns for the warm-regime bulk scanner: per-run slot plus the
    # final member's timestamp (its sequence number is ends-1 + the
    # chunk's base, added at replay time — the memoised columns must stay
    # chunk-position-independent only in what varies per replay).
    runs = (starts_np, ends_np, slots_np[starts_np], ts_np[ends_np - 1])
    post = (leaf_np, icp_req_np, remote_base_np, origin_hdr_np, rsz_np)
    # ``known`` is the per-request first-seen-size column — the size any
    # resident copy of the doc holds while the cold regime lasts.
    npx = (docs_np, slots_np, ts_np, known, runs)
    return (starts_l, sslots_l, sts_l, ends_l, leaf_l, rsz_l, post, lean, npx)


def _columns_py(
    chunk, cached_source, patch, partitioner, leaves,
    sender_len, NC, num_leaves, client_leaf, url_len_l, icp_l,
):
    """Pure-Python per-chunk columns (numpy absent / REPRO_NO_NUMPY)."""
    n = chunk.num_records
    docs = chunk.doc_ids
    ts_l = chunk.timestamps
    if cached_source is not None:
        leaf_l = cached_source.leaf_column(partitioner, leaves)
        rsz_l = cached_source.record_sizes(patch)
        digits_l = cached_source.size_digits(patch)
    else:
        if partitioner == "round-robin-request":
            base = chunk.base_records
            leaf_l = [leaves[(base + k) % num_leaves] for k in range(n)]
        else:
            leaf_l = [client_leaf[client] for client in chunk.clients]
        sizes = chunk.sizes
        if 0 in sizes:
            rsz_l = [patch if size == 0 else size for size in sizes]
        else:
            rsz_l = sizes
        digits_l = [len(str(size)) for size in rsz_l]
    remote_base_l = [
        url_len_l[doc] + sender_len[leaf] + 50
        for doc, leaf in zip(docs, leaf_l)
    ]
    origin_hdr_l = [
        rb + 24 + dg for rb, dg in zip(remote_base_l, digits_l)
    ]
    icp_req_l = [icp_l[doc] for doc in docs]
    slots_l = [doc * NC + leaf for doc, leaf in zip(docs, leaf_l)]
    starts_l = []
    sslots_l = []
    sts_l = []
    prev = -1
    for idx, slot in enumerate(slots_l):
        if slot != prev:
            starts_l.append(idx)
            sslots_l.append(slot)
            sts_l.append(ts_l[idx])
            prev = slot
    ends_l = starts_l[1:]
    ends_l.append(n)
    post = (icp_req_l, remote_base_l, origin_hdr_l)
    # The serial fallback always replays the full loop (explicit served
    # column); lean/cold modes are numpy-path specialisations only.
    return (starts_l, sslots_l, sts_l, ends_l, leaf_l, rsz_l, post, False, None)


def _post_py(
    n, out, served, leaf_l, icp_req_l, remote_base_l, origin_hdr_l,
    w_start, num_targets, constant_latency,
    lat_local, lat_remote, lat_miss, lan_bw, wan_bw,
    bus, met, latency_sum,
    st_lookups, st_local_hits, st_local_misses, st_bytes_local,
):
    """Serial outcome post-pass (fallback path); same fold order as the
    columnar engine's inline accounting, so floats are bit-equal."""
    lat = latency_sum[0]
    nl = 0
    bus4 = 0
    bus5 = 0
    bus6 = 0
    m0 = m1 = m2 = m3 = m4 = m5 = m6 = m7 = 0
    for i in range(n):
        o = out[i]
        c = leaf_l[i]
        s = served[i]
        st_lookups[c] += 1
        if o == 0:
            st_local_hits[c] += 1
            st_bytes_local[c] += s
        else:
            st_local_misses[c] += 1
            nl += 1
            bus4 += icp_req_l[i]
            bus5 += remote_base_l[i] if o == 2 else origin_hdr_l[i]
            bus6 += s
        if i >= w_start:
            m0 += 1
            m4 += s
            if o == 0:
                lat += lat_local
                m1 += 1
                m5 += s
            elif o == 2:
                if constant_latency:
                    lat += lat_remote
                else:
                    lat += lat_remote + s / lan_bw
                m2 += 1
                m6 += s
            else:
                if constant_latency:
                    lat += lat_miss
                else:
                    lat += lat_miss + s / wan_bw
                m3 += 1
                m7 += s
    bus[0] += num_targets * nl
    bus[1] += num_targets * nl
    bus[2] += nl
    bus[3] += nl
    bus[4] += num_targets * bus4
    bus[5] += bus5
    bus[6] += bus6
    met[0] += m0
    met[1] += m1
    met[2] += m2
    met[3] += m3
    met[4] += m4
    met[5] += m5
    met[6] += m6
    met[7] += m7
    latency_sum[0] = lat
