"""repro.obs — observability for simulation runs.

Three pieces, one contract:

* :mod:`repro.obs.registry` — counters/gauges/histograms that no-op when
  disabled (aggregated telemetry);
* :mod:`repro.obs.events` — the ``repro-events/1`` structured JSONL stream
  both engines emit byte-identically (per-decision telemetry), validated
  by :mod:`repro.obs.schema` and inspected via :mod:`repro.obs.tools`;
* :mod:`repro.obs.manifest` / :mod:`repro.obs.session` — the
  ``repro-manifest/1`` provenance record attached to results;
* :mod:`repro.obs.spans` — hierarchical wall-clock spans exported as
  Chrome Trace Event Format (``repro-trace-events/1``, Perfetto-loadable);
* :mod:`repro.obs.timeseries` — per-chunk ``repro-timeseries/1`` samples
  (throughput, hit ratios, EA placement activity, regime occupancy).

The contract: observing a run never changes it. Recorders are passed out
of band (never on :class:`~repro.simulation.simulator.SimulationConfig`),
payload timestamps are simulation time only, and results with and without
observation are byte-identical. See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.events import EVENTS_SCHEMA, RunRecorder, age_json, age_ranks
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    file_digest,
    result_digest,
    write_manifest,
)
from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    merge_snapshots,
)
from repro.obs.schema import validate_event, validate_events_file, validate_stream
from repro.obs.session import ObservedRun, run_observed, sweep_event_filename
from repro.obs.spans import (
    TRACE_EVENTS_SCHEMA,
    SpanTracer,
    load_trace_events,
    render_timeline,
    source_label,
    validate_trace_events,
)
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    TimeseriesRecorder,
    read_timeseries,
    render_report,
)
from repro.obs.tools import diff_events, summarize_events, tail_events

__all__ = [
    "Counter",
    "EVENTS_SCHEMA",
    "Gauge",
    "HISTOGRAM_BUCKETS",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "ObsError",
    "ObservedRun",
    "RunRecorder",
    "SpanTracer",
    "TIMESERIES_SCHEMA",
    "TRACE_EVENTS_SCHEMA",
    "TimeseriesRecorder",
    "age_json",
    "age_ranks",
    "build_manifest",
    "config_hash",
    "diff_events",
    "file_digest",
    "load_trace_events",
    "merge_snapshots",
    "read_timeseries",
    "render_report",
    "render_timeline",
    "result_digest",
    "run_observed",
    "source_label",
    "summarize_events",
    "sweep_event_filename",
    "tail_events",
    "validate_event",
    "validate_events_file",
    "validate_stream",
    "write_manifest",
]
