"""Offline event-stream tooling behind ``repro obs tail|summarize|diff``.

These helpers work on files, stream line-by-line, and never load a whole
event file into memory — sweep streams from long traces can run to
millions of lines. Malformed input (empty files, truncated tails,
corrupted records) raises :class:`~repro.obs.registry.ObsError` with the
offending ``path:line``, never a raw traceback — the CLI maps these to a
clean message on stderr and a nonzero exit.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, ObsError


def _parse_event(path: str, number: int, line: str) -> Dict[str, Any]:
    """One event line as a dict, or ObsError naming the corrupt line."""
    try:
        event = json.loads(line)
    except ValueError as exc:
        raise ObsError(f"{path}:{number}: malformed event line: {exc}") from None
    if not isinstance(event, dict):
        raise ObsError(
            f"{path}:{number}: event line is {type(event).__name__}, expected object"
        )
    return event


def tail_events(path: str, count: int = 10) -> List[str]:
    """The last ``count`` lines of an event file, newline-stripped.

    Raises :class:`ObsError` for an empty file — an event stream always
    carries at least its ``run`` header, so nothing-to-tail means the
    producer died before writing anything.
    """
    window: deque = deque(maxlen=max(count, 0))
    seen = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            seen += 1
            window.append(line.rstrip("\n"))
    if not seen:
        raise ObsError(f"{path}: empty event file (no lines to tail)")
    return list(window)


def summarize_events(path: str) -> Dict[str, Any]:
    """One-pass roll-up of an event stream.

    Returns counts by event type, request outcomes by kind, placement
    verdicts by role (attempted/stored), promotion grants, eviction
    volume, the age-tie count (``cmp == "eq"`` across placement/promotion
    events — the EA tie-break in action), the time span covered, and
    ``distributions`` — histogram summaries (count/mean/min/max plus
    p50/p95/p99 bucket-estimated quantiles) of request sizes, evicted
    sizes, and evicted document ages.

    Raises :class:`ObsError` for empty files and corrupted lines, with
    the line number of the first bad record.
    """
    counts: Dict[str, int] = {}
    kinds: Dict[str, int] = {}
    placements: Dict[str, Dict[str, int]] = {}
    promotions = {"granted": 0, "withheld": 0}
    ties = 0
    evicted_bytes = 0
    stored_requests = 0
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    registry = MetricsRegistry()
    request_sizes = registry.histogram("request.size_bytes")
    evict_sizes = registry.histogram("evict.size_bytes")
    evict_ages = registry.histogram("evict.age_s")
    number = 0
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            event = _parse_event(path, number, line)
            kind = event.get("e", "?")
            counts[kind] = counts.get(kind, 0) + 1
            t = event.get("t")
            if isinstance(t, (int, float)):
                if t_first is None:
                    t_first = t
                t_last = t
            if kind == "request":
                kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
                if event.get("stored"):
                    stored_requests += 1
                size = event.get("size")
                if isinstance(size, (int, float)):
                    request_sizes.observe(size)
            elif kind == "placement":
                bucket = placements.setdefault(
                    event["role"], {"attempted": 0, "stored": 0}
                )
                bucket["attempted"] += 1
                if event.get("stored"):
                    bucket["stored"] += 1
                if event.get("cmp") == "eq":
                    ties += 1
            elif kind == "promotion":
                promotions["granted" if event.get("granted") else "withheld"] += 1
                if event.get("cmp") == "eq":
                    ties += 1
            elif kind == "evict":
                size = event.get("size", 0)
                evicted_bytes += size
                if isinstance(size, (int, float)):
                    evict_sizes.observe(size)
                age = event.get("age")
                if isinstance(age, (int, float)):
                    evict_ages.observe(age)
    if not number:
        raise ObsError(f"{path}: empty event file (nothing to summarize)")
    distributions = {
        name: {
            key: summary[key]
            for key in ("count", "mean", "min", "max", "p50", "p95", "p99")
        }
        for name, summary in registry.snapshot()["histograms"].items()
        if summary["count"]
    }
    return {
        "events": counts,
        "requests_by_kind": dict(sorted(kinds.items())),
        "requests_stored": stored_requests,
        "placements_by_role": {role: placements[role] for role in sorted(placements)},
        "promotions": promotions,
        "age_ties": ties,
        "evicted_bytes": evicted_bytes,
        "time_span": None if t_first is None else [t_first, t_last],
        "distributions": distributions,
    }


def diff_events(
    left_path: str, right_path: str
) -> Optional[Tuple[int, Optional[str], Optional[str]]]:
    """First divergence between two streams, or ``None`` when identical.

    Returns ``(line_number, left_line, right_line)`` — a line is ``None``
    when that file ended early. Comparison is textual, matching the
    cross-engine byte-identity contract.
    """
    with open(left_path, "r", encoding="utf-8") as left, open(
        right_path, "r", encoding="utf-8"
    ) as right:
        number = 0
        while True:
            number += 1
            a = left.readline()
            b = right.readline()
            if not a and not b:
                return None
            if a != b:
                return (
                    number,
                    a.rstrip("\n") if a else None,
                    b.rstrip("\n") if b else None,
                )
