"""Per-chunk time-series telemetry: the ``repro-timeseries/1`` stream.

End-of-run aggregates hide the caching *dynamics* the paper's EA argument
is about — hit ratios and placement behaviour change as the caches warm
and evictions begin. A :class:`TimeseriesRecorder` receives cumulative
counter readings from the chunked engines once per replayed chunk and
writes one JSONL sample of per-chunk deltas and rates:

* throughput (``req_s``, wall seconds per chunk),
* hit ratio and byte-hit ratio,
* evictions / admissions,
* EA placement decisions (declined) and promotions (granted),
* batch regime occupancy (cold / hit-run / scalar), when batch-replayed,
* residency bytes (a gauge), and optionally the :mod:`tracemalloc`
  high-water mark.

Stream framing mirrors ``repro-events/1``: a ``begin`` header carrying
the schema/config-hash/trace-fingerprint, ``sample`` records, and an
``end`` trailer with run totals. Like the manifest's wall time, samples
contain wall-clock readings and are therefore *out of band by
construction*: the recorder only ever reads engine counters, never
writes simulation state, so results and event streams are byte-identical
with or without a recorder attached (differential tests in
``tests/obs``). This is distinct from
:mod:`repro.simulation.timeseries`, which samples simulation-time gauges
deterministically; this stream is about wall-clock behaviour per chunk.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.obs.registry import ObsError

TIMESERIES_SCHEMA = "repro-timeseries/1"

#: Spark characters for the terminal report, lowest to highest.
_SPARKS = "_.-=+*#%@"


class TimeseriesRecorder:
    """Turns cumulative engine counters into a per-chunk sample stream.

    The engines call :meth:`sample` once per chunk with *cumulative*
    readings (requests replayed so far, hits so far, ...); the recorder
    differences them against the previous call, stamps the chunk's wall
    time, and emits one compact JSON line. Wall-clock reads live here —
    in ``repro.obs``, outside the determinism-audited engine graph —
    under the same ``RPR111`` carve-out as the session wall timer.

    Args:
        sink: Open text file the JSONL stream is written to.
        track_memory: Include the :mod:`tracemalloc` high-water mark in
            every sample (requires tracing to be active — e.g. via
            ``run_observed(track_memory=True)``; silently omitted
            otherwise).
    """

    __slots__ = ("_sink", "_track_memory", "_prev", "_index", "_t0", "_t_prev")

    def __init__(self, sink, track_memory: bool = False):
        self._sink = sink
        self._track_memory = track_memory
        self._prev: Dict[str, int] = {}
        self._index = 0
        self._t0: Optional[float] = None
        self._t_prev = 0.0

    def begin(self, config_hash: str, trace_fingerprint: str, engine: str) -> None:
        """Write the stream header; call exactly once, before the run."""
        self._emit(
            {
                "schema": TIMESERIES_SCHEMA,
                "k": "begin",
                "config": config_hash,
                "trace": trace_fingerprint,
                "engine": engine,
            }
        )
        # Telemetry-only wall clock: per-chunk rates, never simulation state.
        self._t0 = self._t_prev = time.perf_counter()  # repro: noqa[RPR111]

    def sample(
        self,
        *,
        requests: int,
        local_hits: int,
        remote_hits: int,
        evictions: int,
        admissions: int,
        declined: int,
        promoted: int,
        bytes_local: int,
        bytes_remote: int,
        body_bytes: int,
        residency_bytes: int,
        t_last: float,
        cold: Optional[int] = None,
        hit_run: Optional[int] = None,
        scalar: Optional[int] = None,
    ) -> None:
        """Record one chunk from cumulative counter readings.

        ``body_bytes`` is the bus's HTTP body-byte counter; together with
        ``bytes_local`` it bounds the bytes requested this chunk, which
        is what the byte-hit ratio is taken against (on hierarchical
        topologies bus bytes count per hop, making the ratio a lower
        bound there). ``residency_bytes`` is a gauge, not a delta.
        """
        if self._t0 is None:
            raise ObsError("TimeseriesRecorder.sample() before begin()")
        # Same carve-out as begin(): wall time is read, written out, and
        # never fed back into anything the engines compute.
        now = time.perf_counter()  # repro: noqa[RPR111]
        wall_s = now - self._t_prev
        self._t_prev = now
        prev = self._prev
        d_req = requests - prev.get("requests", 0)
        d_hits = (local_hits + remote_hits) - prev.get("hits", 0)
        d_bytes_hit = (bytes_local + bytes_remote) - prev.get("bytes_hit", 0)
        d_bytes_req = (bytes_local + body_bytes) - prev.get("bytes_req", 0)
        record: Dict[str, Any] = {
            "k": "sample",
            "i": self._index,
            "t": float(t_last),
            "wall_s": round(wall_s, 6),
            "requests": int(d_req),
            "req_s": round(d_req / wall_s, 1) if wall_s > 0 else 0.0,
            "hits": int(d_hits),
            "hit_ratio": round(d_hits / d_req, 6) if d_req else 0.0,
            "byte_hit_ratio": (
                round(d_bytes_hit / d_bytes_req, 6) if d_bytes_req else 0.0
            ),
            "evictions": int(evictions - prev.get("evictions", 0)),
            "admissions": int(admissions - prev.get("admissions", 0)),
            "placements_declined": int(declined - prev.get("declined", 0)),
            "promotions_granted": int(promoted - prev.get("promoted", 0)),
            "residency_bytes": int(residency_bytes),
        }
        if cold is not None:
            record["regime"] = {
                "cold": int(cold - prev.get("cold", 0)),
                "hit_run": int((hit_run or 0) - prev.get("hit_run", 0)),
                "scalar": int((scalar or 0) - prev.get("scalar", 0)),
            }
            prev["cold"] = int(cold)
            prev["hit_run"] = int(hit_run or 0)
            prev["scalar"] = int(scalar or 0)
        if self._track_memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                record["mem_hwm"] = tracemalloc.get_traced_memory()[1]
        prev["requests"] = int(requests)
        prev["hits"] = int(local_hits + remote_hits)
        prev["bytes_hit"] = int(bytes_local + bytes_remote)
        prev["bytes_req"] = int(bytes_local + body_bytes)
        prev["evictions"] = int(evictions)
        prev["admissions"] = int(admissions)
        prev["declined"] = int(declined)
        prev["promoted"] = int(promoted)
        self._index += 1
        self._emit(record)

    def end(self) -> None:
        """Write the trailer with run totals; call exactly once."""
        if self._t0 is None:
            raise ObsError("TimeseriesRecorder.end() before begin()")
        wall_s = time.perf_counter() - self._t0  # repro: noqa[RPR111]
        self._emit(
            {
                "k": "end",
                "chunks": self._index,
                "requests": self._prev.get("requests", 0),
                "wall_s": round(wall_s, 6),
            }
        )

    def _emit(self, record: Dict[str, Any]) -> None:
        self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")


# --------------------------------------------------------------------- #
# Offline: reading and sparkline reporting
# --------------------------------------------------------------------- #


def read_timeseries(path: str) -> Dict[str, Any]:
    """Parse a ``repro-timeseries/1`` file into header/samples/trailer.

    Raises :class:`ObsError` on unreadable, empty, truncated (no
    trailer), or mid-record-corrupted files — the same contract the obs
    CLI enforces for event files.
    """
    header: Optional[Dict[str, Any]] = None
    trailer: Optional[Dict[str, Any]] = None
    samples: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ObsError(f"{path}:{number}: corrupt record: {exc}")
                kind = record.get("k")
                if kind == "begin":
                    if record.get("schema") != TIMESERIES_SCHEMA:
                        raise ObsError(
                            f"{path}:{number}: unexpected schema "
                            f"{record.get('schema')!r}"
                        )
                    header = record
                elif kind == "sample":
                    samples.append(record)
                elif kind == "end":
                    trailer = record
                else:
                    raise ObsError(f"{path}:{number}: unknown record kind {kind!r}")
    except OSError as exc:
        raise ObsError(f"cannot read timeseries file {path}: {exc}")
    if header is None:
        raise ObsError(f"{path}: not a {TIMESERIES_SCHEMA} stream (no header)")
    if trailer is None:
        raise ObsError(f"{path}: truncated stream (no end trailer)")
    return {"header": header, "samples": samples, "trailer": trailer}


def _sparkline(values: List[float], width: int) -> str:
    """Windowed sparkline: values bucketed to ``width`` cells by mean."""
    if not values:
        return ""
    buckets: List[float] = []
    count = min(width, len(values))
    for b in range(count):
        lo = b * len(values) // count
        hi = max(lo + 1, (b + 1) * len(values) // count)
        window = values[lo:hi]
        buckets.append(sum(window) / len(window))
    lo_v = min(buckets)
    hi_v = max(buckets)
    span = hi_v - lo_v
    if span <= 0:
        return _SPARKS[0] * len(buckets)
    top = len(_SPARKS) - 1
    return "".join(
        _SPARKS[int(round((v - lo_v) / span * top))] for v in buckets
    )


def render_report(data: Dict[str, Any], width: int = 48) -> str:
    """Terminal report: one windowed sparkline row per sampled metric."""
    header = data["header"]
    samples = data["samples"]
    trailer = data["trailer"]
    lines = [
        f"timeseries: engine={header.get('engine')} "
        f"chunks={trailer.get('chunks')} requests={trailer.get('requests')} "
        f"wall={trailer.get('wall_s'):.3f}s"
    ]
    if not samples:
        lines.append("  (no samples)")
        return "\n".join(lines)
    metrics = [
        ("req_s", "req/s"),
        ("hit_ratio", "hit ratio"),
        ("byte_hit_ratio", "byte-hit ratio"),
        ("evictions", "evictions"),
        ("placements_declined", "ea declined"),
        ("promotions_granted", "ea promoted"),
        ("residency_bytes", "residency B"),
    ]
    for key, label in metrics:
        values = [float(s.get(key, 0)) for s in samples]
        lines.append(
            f"  {label:<15} {_sparkline(values, width)}  "
            f"min {min(values):g}  mean {sum(values) / len(values):g}  "
            f"max {max(values):g}"
        )
    if any("regime" in s for s in samples):
        for reg in ("cold", "hit_run", "scalar"):
            values = [float(s.get("regime", {}).get(reg, 0)) for s in samples]
            lines.append(
                f"  regime:{reg:<8} {_sparkline(values, width)}  "
                f"total {int(sum(values))}"
            )
    if any("mem_hwm" in s for s in samples):
        values = [float(s.get("mem_hwm", 0)) for s in samples]
        lines.append(
            f"  {'mem HWM B':<15} {_sparkline(values, width)}  "
            f"max {int(max(values))}"
        )
    return "\n".join(lines)
