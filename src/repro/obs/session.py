"""Observed runs: glue between the engines, the recorder, and manifests.

:func:`run_observed` is the one-call form — replay a trace with optional
event capture and come back with the manifest attached to the result.
:class:`ObservedRun` is the split form for callers that need to drive the
simulator themselves (the CLI's ``--sanitize`` path holds the simulator to
read its report afterwards) but still want identical event/manifest
handling.

Wall time is measured here — *outside* the simulation-reachable call graph
— which is exactly why the simulator and recorder never touch a clock
themselves (docs/ANALYSIS.md determinism rules; the RPR111 analyzer walks
the engines, not this session layer).
"""

from __future__ import annotations

import re
import time
from typing import Optional

from repro.obs.events import RunRecorder
from repro.obs.manifest import build_manifest, config_hash, write_manifest
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import (
    SimulationConfig,
    resolved_engine,
    run_simulation,
)
from repro.trace.record import Trace


class ObservedRun:
    """Event sink + wall timer for one run; call :meth:`finish` exactly once.

    Args:
        config: The run's configuration (hashed into the header/manifest).
        trace: The trace about to be replayed (fingerprint likewise).
        events_path: Target for the ``repro-events/1`` stream; ``None``
            records no events but still produces a manifest.
        snapshot_interval: Simulation-seconds between snapshot events.
    """

    def __init__(
        self,
        config: SimulationConfig,
        trace: Trace,
        events_path: Optional[str] = None,
        snapshot_interval: float = 0.0,
    ):
        self.config = config
        self.trace = trace
        self.events_path = events_path
        self.snapshot_interval = snapshot_interval
        self.recorder: Optional[RunRecorder] = None
        self._sink = None
        if events_path is not None:
            self._sink = open(events_path, "w", encoding="utf-8", newline="\n")
            self.recorder = RunRecorder(self._sink, snapshot_interval)
            self.recorder.begin(config_hash(config), trace.fingerprint())
        # Reachable only via the call graph's receiver-agnostic __init__
        # tier, never from an engine: wall time is measured outside the
        # simulation by design (the manifest's one volatile field).
        self._start = time.perf_counter()  # repro: noqa[RPR111]

    def finish(self, result: SimulationResult) -> SimulationResult:
        """Close the stream, build the manifest, attach it to ``result``."""
        # Same carve-out as __init__: the wall timer brackets the run from
        # the session layer; nothing inside the replay reads it.
        wall_time = time.perf_counter() - self._start  # repro: noqa[RPR111]
        counts = None
        if self.recorder is not None:
            self.recorder.end()
            counts = self.recorder.counts
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        result.manifest = build_manifest(
            self.config,
            self.trace.fingerprint(),
            engine_requested=self.config.engine,
            engine_resolved=resolved_engine(self.config),
            wall_time_s=wall_time,
            result=result,
            snapshot_interval=self.snapshot_interval,
            events_path=self.events_path,
            event_counts=counts,
        )
        return result


def run_observed(
    config: SimulationConfig,
    trace: Trace,
    events_path: Optional[str] = None,
    snapshot_interval: float = 0.0,
    manifest_path: Optional[str] = None,
) -> SimulationResult:
    """Replay ``trace`` under ``config`` with observability attached.

    Identical simulation behaviour to :func:`run_simulation` — the
    recorder only *reads* protocol state — with ``result.manifest``
    populated and, when requested, the event stream and manifest written
    to disk. With ``events_path=None`` this is the "instrumentation
    disabled" configuration the overhead benchmark gates at ≤2%.
    """
    observed = ObservedRun(
        config, trace, events_path=events_path, snapshot_interval=snapshot_interval
    )
    result = observed.finish(run_simulation(config, trace, obs=observed.recorder))
    if manifest_path is not None:
        write_manifest(result.manifest, manifest_path)
    return result


def sweep_event_filename(index: int, capacity_label: str, scheme: str) -> str:
    """Stable per-point event-file name for sweep ``--events`` directories."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", capacity_label)
    return f"point{index:03d}_{safe}_{scheme}.jsonl"
