"""Observed runs: glue between the engines, the recorder, and manifests.

:func:`run_observed` is the one-call form — replay a trace with optional
event capture and come back with the manifest attached to the result.
:class:`ObservedRun` is the split form for callers that need to drive the
simulator themselves (the CLI's ``--sanitize`` path holds the simulator to
read its report afterwards) but still want identical event/manifest
handling.

Wall time is measured here — *outside* the simulation-reachable call graph
— which is exactly why the simulator and recorder never touch a clock
themselves (docs/ANALYSIS.md determinism rules; the RPR111 analyzer walks
the engines, not this session layer).
"""

from __future__ import annotations

import re
import time
from typing import Optional

from repro.obs.events import RunRecorder
from repro.obs.manifest import build_manifest, config_hash, write_manifest
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import (
    SimulationConfig,
    resolved_engine,
    run_simulation,
)
from repro.trace.record import Trace
from repro.trace.stream import source_fingerprint


class ObservedRun:
    """Event sink + wall timer for one run; call :meth:`finish` exactly once.

    Args:
        config: The run's configuration (hashed into the header/manifest).
        trace: The trace about to be replayed — a :class:`Trace` or any
            streamed source; its fingerprint (via
            :func:`~repro.trace.stream.source_fingerprint`) lands in the
            event-stream header and the manifest.
        events_path: Target for the ``repro-events/1`` stream; ``None``
            records no events but still produces a manifest.
        snapshot_interval: Simulation-seconds between snapshot events.
        track_memory: Trace Python allocations with :mod:`tracemalloc`
            and record the run's high-water mark in the manifest as
            ``peak_memory_bytes``. Opt-in because tracing costs real
            wall time; it is how the O(chunk) streaming-memory claim is
            *gated* rather than asserted.
        spans: Optional :class:`repro.obs.spans.SpanTracer`; when given,
            the whole observed run is bracketed by a root ``run`` span
            (engine/source/regime spans nest under it when the tracer is
            also passed to the engine). Timings only — the tracer never
            feeds back into simulation state.
        timeseries_path: Target for a ``repro-timeseries/1`` per-chunk
            sample stream (see :mod:`repro.obs.timeseries`); ``None``
            records no samples. The recorder is exposed as
            :attr:`timeseries` for callers that drive the engines
            themselves.
    """

    def __init__(
        self,
        config: SimulationConfig,
        trace: Trace,
        events_path: Optional[str] = None,
        snapshot_interval: float = 0.0,
        track_memory: bool = False,
        spans=None,
        timeseries_path: Optional[str] = None,
    ):
        self.config = config
        self.trace = trace
        self.events_path = events_path
        self.snapshot_interval = snapshot_interval
        self.recorder: Optional[RunRecorder] = None
        self.spans = spans
        self.timeseries = None
        self._sink = None
        self._ts_sink = None
        self._trace_fp = source_fingerprint(trace)
        if events_path is not None:
            self._sink = open(events_path, "w", encoding="utf-8", newline="\n")
            self.recorder = RunRecorder(self._sink, snapshot_interval)
            self.recorder.begin(config_hash(config), self._trace_fp)
        self._tracing_memory = False
        if track_memory:
            import tracemalloc

            # Leave an already-running tracer alone (its peak belongs to
            # whoever started it); only own the start/stop pair we create.
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracing_memory = True
        if timeseries_path is not None:
            from repro.obs.timeseries import TimeseriesRecorder

            self._ts_sink = open(
                timeseries_path, "w", encoding="utf-8", newline="\n"
            )
            self.timeseries = TimeseriesRecorder(
                self._ts_sink, track_memory=track_memory
            )
            self.timeseries.begin(
                config_hash(config), self._trace_fp, resolved_engine(config)
            )
        if spans is not None:
            spans.begin("run", "run")
        # Reachable only via the call graph's receiver-agnostic __init__
        # tier, never from an engine: wall time is measured outside the
        # simulation by design (the manifest's one volatile field).
        self._start = time.perf_counter()  # repro: noqa[RPR111]

    def finish(self, result: SimulationResult) -> SimulationResult:
        """Close the stream, build the manifest, attach it to ``result``."""
        # Same carve-out as __init__: the wall timer brackets the run from
        # the session layer; nothing inside the replay reads it.
        wall_time = time.perf_counter() - self._start  # repro: noqa[RPR111]
        peak_memory = None
        if self._tracing_memory:
            import tracemalloc

            peak_memory = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
            self._tracing_memory = False
        if self.spans is not None:
            self.spans.end(requests=result.metrics.requests)
        counts = None
        if self.recorder is not None:
            self.recorder.end()
            counts = self.recorder.counts
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if self.timeseries is not None:
            self.timeseries.end()
            self.timeseries = None
        if self._ts_sink is not None:
            self._ts_sink.close()
            self._ts_sink = None
        result.manifest = build_manifest(
            self.config,
            self._trace_fp,
            engine_requested=self.config.engine,
            engine_resolved=resolved_engine(self.config),
            wall_time_s=wall_time,
            result=result,
            snapshot_interval=self.snapshot_interval,
            events_path=self.events_path,
            event_counts=counts,
            peak_memory_bytes=peak_memory,
        )
        return result


def run_observed(
    config: SimulationConfig,
    trace: Trace,
    events_path: Optional[str] = None,
    snapshot_interval: float = 0.0,
    manifest_path: Optional[str] = None,
    track_memory: bool = False,
    chunk_size: Optional[int] = None,
    spans=None,
    trace_out: Optional[str] = None,
    timeseries_path: Optional[str] = None,
    regimes=None,
) -> SimulationResult:
    """Replay ``trace`` under ``config`` with observability attached.

    Identical simulation behaviour to :func:`run_simulation` — the
    recorder only *reads* protocol state — with ``result.manifest``
    populated and, when requested, the event stream and manifest written
    to disk. With ``events_path=None`` this is the "instrumentation
    disabled" configuration the overhead benchmark gates at ≤2%.
    ``trace`` may be a streamed source; ``chunk_size`` and
    ``track_memory`` pass through to :func:`run_simulation` and
    :class:`ObservedRun` respectively.

    Span tracing: pass ``spans`` (a
    :class:`repro.obs.spans.SpanTracer`) to thread one through the run,
    or just ``trace_out`` — a tracer is created automatically and its
    Chrome Trace Event Format JSON written there after the run (load in
    Perfetto, or render with ``repro obs timeline``). ``timeseries_path``
    streams per-chunk ``repro-timeseries/1`` samples;``regimes`` (a
    mutable mapping) receives batch regime occupancy tallies, as in
    :func:`~repro.fastpath.batch.simulate_batch`. All four are telemetry
    only: events bytes, result digests, and memo keys are byte-identical
    with or without them (differential tests in ``tests/obs``).
    """
    if spans is None and trace_out is not None:
        from repro.obs.spans import SpanTracer

        spans = SpanTracer()
    observed = ObservedRun(
        config,
        trace,
        events_path=events_path,
        snapshot_interval=snapshot_interval,
        track_memory=track_memory,
        spans=spans,
        timeseries_path=timeseries_path,
    )
    result = observed.finish(
        run_simulation(
            config,
            trace,
            obs=observed.recorder,
            chunk_size=chunk_size,
            regimes=regimes,
            spans=spans,
            timeseries=observed.timeseries,
        )
    )
    if manifest_path is not None:
        write_manifest(result.manifest, manifest_path)
    if trace_out is not None:
        spans.write(trace_out)
    return result


def sweep_event_filename(index: int, capacity_label: str, scheme: str) -> str:
    """Stable per-point event-file name for sweep ``--events`` directories."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", capacity_label)
    return f"point{index:03d}_{safe}_{scheme}.jsonl"
