"""In-process metrics registry: counters, gauges, and histograms.

The registry is the *aggregated* half of ``repro.obs`` (the structured
event stream in :mod:`repro.obs.events` is the per-decision half): cheap
named instruments that hot paths bump and reporting surfaces read out in
one :meth:`MetricsRegistry.snapshot` call.

Design constraints, in order:

1. **Disabled must cost nothing.** Instrumented code holds either a real
   instrument or the shared null instrument; the null variants' methods are
   empty and allocation-free, so a disabled registry adds one attribute
   call per event and nothing else. Hot loops that want even that gone
   guard on ``registry.enabled`` (a plain bool) instead.
2. **Deterministic read-out.** ``snapshot()`` orders instruments by name,
   so two runs that bump the same instruments serialise identically —
   the same rule the event stream follows (docs/ANALYSIS.md determinism).
3. **No wall clock.** Instruments carry values the caller hands them (sim
   time, byte counts, durations measured *outside* the simulation-reachable
   graph); the registry itself never reads a clock.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


class ObsError(ReproError):
    """Raised for observability-layer misuse (bad names, malformed streams)."""


def _check_name(name: str) -> str:
    if not name or any(ch.isspace() for ch in name):
        raise ObsError(f"instrument name must be non-empty and space-free, got {name!r}")
    return name


class Counter:
    """Monotonic counter (events, bytes, decisions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative increments are a bug, not an API)."""
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (bytes in use, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Histogram bucket upper bounds: powers of two from 1 up, plus +inf.
#: Fixed (not configurable per-instrument) so merged snapshots align.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(0, 31)
) + (math.inf,)


def _bucket_quantile(
    q: float,
    count: int,
    bucket_counts: List[int],
    lo_clamp: Optional[float],
    hi_clamp: Optional[float],
) -> Optional[float]:
    """Estimate the ``q``-quantile from power-of-two bucket counts.

    Linear interpolation within the bucket holding the target rank
    (Prometheus-style), clamped to the exact observed min/max so the
    estimate never leaves the data's range. ``None`` before any
    observation. Shared by :meth:`Histogram.quantile` and
    :func:`merge_snapshots` so per-worker and merged quantiles use one
    estimator.
    """
    if not count:
        return None
    rank = q * count
    cumulative = 0.0
    for i, in_bucket in enumerate(bucket_counts):
        if not in_bucket:
            continue
        below = cumulative
        cumulative += in_bucket
        if cumulative >= rank:
            upper = HISTOGRAM_BUCKETS[i]
            lower = HISTOGRAM_BUCKETS[i - 1] if i else 0.0
            if math.isinf(upper):
                estimate = lower if hi_clamp is None else hi_clamp
            else:
                estimate = lower + (upper - lower) * ((rank - below) / in_bucket)
            if lo_clamp is not None and estimate < lo_clamp:
                estimate = lo_clamp
            if hi_clamp is not None and estimate > hi_clamp:
                estimate = hi_clamp
            return estimate
    return hi_clamp


#: Quantiles every histogram snapshot carries, as (key, q) pairs.
SNAPSHOT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


class Histogram:
    """Fixed-bucket distribution (sizes, latencies, victim ages).

    Buckets are the shared power-of-two ladder :data:`HISTOGRAM_BUCKETS`;
    ``observe`` is O(log buckets) via bisection, which keeps it fit for the
    request path. Count/total/min/max are exact regardless of bucketing;
    quantiles (:meth:`quantile`) are bucket-interpolated estimates.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bucket_counts")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bucket_counts = [0] * len(HISTOGRAM_BUCKETS)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(HISTOGRAM_BUCKETS) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= HISTOGRAM_BUCKETS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated ``q``-quantile (``None`` if empty).

        Exact at the extremes (clamped to observed min/max); inside a
        bucket the estimate assumes a uniform spread, so its error is
        bounded by the power-of-two bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        return _bucket_quantile(q, self.count, self.bucket_counts, self.min, self.max)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # pragma: no cover - trivial
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # pragma: no cover - trivial
        pass


#: Shared do-nothing instruments handed out by a disabled registry, so
#: instrumented code never branches on enablement itself.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named instrument registry.

    Args:
        enabled: When False, every factory returns the shared null
            instrument and :meth:`snapshot` is empty — the no-op
            configuration instrumented code points at by default.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(_check_name(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(_check_name(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(_check_name(name))
        return instrument

    def snapshot(self) -> Dict[str, object]:
        """All instruments, name-sorted, as JSON-safe primitives."""
        counters = {n: c.value for n, c in sorted(self._counters.items())}
        gauges = {n: g.value for n, g in sorted(self._gauges.items())}
        histograms = {}
        for name, hist in sorted(self._histograms.items()):
            summary = {
                "count": hist.count,
                "total": hist.total,
                "mean": hist.mean,
                "min": None if hist.count == 0 else hist.min,
                "max": None if hist.count == 0 else hist.max,
                "buckets": list(hist.bucket_counts),
            }
            for key, q in SNAPSHOT_QUANTILES:
                summary[key] = hist.quantile(q)
            histograms[name] = summary
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Process-wide disabled registry: the default target of instrumentation
#: that nobody asked to observe.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def merge_snapshots(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Element-wise merge of :meth:`MetricsRegistry.snapshot` payloads.

    Counters sum; gauges keep the last write (list order); histogram
    summaries sum counts, totals, and per-bucket counts, extremise
    min/max, and recompute p50/p95/p99 from the merged buckets — because
    all histograms share :data:`HISTOGRAM_BUCKETS`, merged quantiles are
    exactly what a single registry observing every value would have
    estimated. Used to fold per-worker registries into one sweep-level
    read-out.
    """
    merged = MetricsRegistry()
    last_gauges: Dict[str, float] = {}
    mins: Dict[str, Optional[float]] = {}
    maxs: Dict[str, Optional[float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
            merged.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
            last_gauges[name] = value
        for name, summary in snap.get("histograms", {}).items():  # type: ignore[union-attr]
            hist = merged.histogram(name)
            hist.count += summary["count"]
            hist.total += summary["total"]
            for i, in_bucket in enumerate(summary.get("buckets", ())):
                hist.bucket_counts[i] += in_bucket
            for table, key, pick in ((mins, "min", min), (maxs, "max", max)):
                value = summary.get(key)
                if value is None:
                    continue
                table[name] = value if table.get(name) is None else pick(table[name], value)
    for name, value in last_gauges.items():
        merged.gauge(name).set(value)
    out = merged.snapshot()
    for name, summary in out["histograms"].items():  # type: ignore[union-attr]
        summary["mean"] = summary["total"] / summary["count"] if summary["count"] else 0.0
        summary["min"] = mins.get(name)
        summary["max"] = maxs.get(name)
        for key, q in SNAPSHOT_QUANTILES:
            summary[key] = _bucket_quantile(
                q, summary["count"], summary["buckets"], mins.get(name), maxs.get(name)
            )
    return out
