"""Structured event emission: the ``repro-events/1`` JSONL stream.

One simulation run, observed, is one JSON-Lines file: a ``run`` header,
then per-decision events in replay order (``request`` outcomes, EA
``placement``/``promotion`` verdicts carrying both piggybacked expiration
ages, ``evict`` records with the victim's age, periodic ``snapshot``
ticks), then an ``end`` trailer. The stream is the inspectable form of the
EA scheme's internal dynamics — the drifting per-proxy expiration ages and
one-sided placement decisions the paper's argument rests on.

Byte identity across engines is achieved *by construction*: both the
object core and the columnar engine call the same :class:`RunRecorder`
methods, at protocol-equivalent points, with scalar arguments; every line
is serialised here, with one fixed key order per event type and the
``"inf"`` sentinel for infinite ages (the same convention as
:meth:`repro.simulation.results.SimulationResult.to_dict`). The
differential tests in ``tests/obs`` then only need to compare file text.

Determinism rules (docs/ANALYSIS.md) apply to event payloads: timestamps
are **simulation time only** — the recorder never reads a wall clock.

Tie classification is delegated to
:func:`repro.core.placement.classify_age_comparison` /
:func:`repro.core.placement.ages_equal`, so an event labelled ``"eq"`` can
never disagree with the tie-break the simulator actually took.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.placement import ages_equal, classify_age_comparison

#: Schema identifier carried by every stream's ``run`` header.
EVENTS_SCHEMA = "repro-events/1"

#: Snapshot row: (age, used_bytes, docs, lookups, local_hits,
#: remote_served, evictions) for one cache, index-aligned with the group.
SnapshotRow = Tuple[float, int, int, int, int, int, int]


def age_json(age: float) -> Any:
    """Expiration age as a JSON-safe value (``+inf`` → the string "inf")."""
    if math.isinf(age):
        return "inf"
    return age


def age_ranks(ages: Sequence[float]) -> List[int]:
    """Dense 1-based ranks by descending expiration age; ties share a rank.

    Tie detection goes through :func:`ages_equal` — the sanctioned tie test
    — so snapshot rank labels agree with the EA tie-break by construction
    (two cold caches both reporting ``+inf`` share rank 1).
    """
    order = sorted(range(len(ages)), key=lambda i: ages[i], reverse=True)
    ranks = [0] * len(ages)
    rank = 0
    previous: Optional[float] = None
    for index in order:
        if previous is None or not ages_equal(ages[index], previous):
            rank += 1
            previous = ages[index]
        ranks[index] = rank
    return ranks


class RunRecorder:
    """Serialises one run's event stream to a text sink.

    Args:
        sink: File-like object with ``write`` (text mode). The recorder
            writes one compact JSON object per line and never closes the
            sink — the owning session does.
        snapshot_interval: Simulation-time seconds between ``snapshot``
            events; ``0`` disables snapshots. The timer arms on the first
            request (first tick due one interval after the first
            timestamp), so streams do not depend on wall clocks or trace
            start offsets.
    """

    __slots__ = ("snapshot_interval", "counts", "_write", "_next_snapshot", "_requests")

    def __init__(self, sink, snapshot_interval: float = 0.0):
        if snapshot_interval < 0:
            snapshot_interval = 0.0
        self.snapshot_interval = snapshot_interval
        #: Lines emitted so far, by event type (feeds the run manifest).
        self.counts: Dict[str, int] = {}
        self._write = sink.write
        self._next_snapshot: Optional[float] = None
        self._requests = 0

    # ------------------------------------------------------------------ #
    # Emission core
    # ------------------------------------------------------------------ #

    def _emit(self, kind: str, payload: Dict[str, Any]) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._write(json.dumps(payload, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------ #
    # Stream framing
    # ------------------------------------------------------------------ #

    def begin(self, config_hash: str, trace_fingerprint: str) -> None:
        """Emit the ``run`` header. Call once, before any other event."""
        self._emit(
            "run",
            {
                "e": "run",
                "schema": EVENTS_SCHEMA,
                "config": config_hash,
                "trace": trace_fingerprint,
                "snapshot_interval": self.snapshot_interval,
            },
        )

    def end(self) -> None:
        """Emit the ``end`` trailer with the request-event count."""
        self._emit("end", {"e": "end", "requests": self._requests})

    # ------------------------------------------------------------------ #
    # Per-request events (called by both engines at mirrored points)
    # ------------------------------------------------------------------ #

    def request(
        self,
        t: float,
        cache: int,
        url: str,
        kind: str,
        size: int,
        responder: Optional[int],
        stored: bool,
        refreshed: bool,
        hops: int,
    ) -> None:
        """Final outcome of one client request (last event per request)."""
        self._requests += 1
        self._emit(
            "request",
            {
                "e": "request",
                "t": t,
                "cache": cache,
                "url": url,
                "kind": kind,
                "size": size,
                "responder": responder,
                "stored": stored,
                "refreshed": refreshed,
                "hops": hops,
            },
        )

    def placement_remote(
        self,
        t: float,
        cache: int,
        url: str,
        size: int,
        requester_age: float,
        responder_age: float,
        stored: bool,
        refreshed: bool,
    ) -> None:
        """Requester-side verdict of a remote-hit exchange.

        ``stored`` is what actually happened (admission can still reject a
        scheme-approved copy); ``cmp`` orders requester vs responder age.
        """
        self._emit(
            "placement",
            {
                "e": "placement",
                "t": t,
                "role": "remote",
                "cache": cache,
                "url": url,
                "size": size,
                "requester_age": age_json(requester_age),
                "responder_age": age_json(responder_age),
                "cmp": classify_age_comparison(requester_age, responder_age),
                "stored": stored,
                "refreshed": refreshed,
            },
        )

    def placement_origin(
        self, t: float, cache: int, url: str, size: int, own_age: float, stored: bool
    ) -> None:
        """Store verdict for a document fetched directly from the origin."""
        self._emit(
            "placement",
            {
                "e": "placement",
                "t": t,
                "role": "origin",
                "cache": cache,
                "url": url,
                "size": size,
                "own_age": age_json(own_age),
                "stored": stored,
            },
        )

    def placement_node(
        self,
        t: float,
        role: str,
        cache: int,
        url: str,
        size: int,
        own_age: float,
        peer_age: float,
        stored: bool,
    ) -> None:
        """Hierarchical store verdict: ``role`` is ``"parent"`` or ``"child"``.

        ``peer_age`` is the expiration age piggybacked on the HTTP hop the
        node compared itself against (the child's request age for a parent,
        the upstream response age for a child).
        """
        self._emit(
            "placement",
            {
                "e": "placement",
                "t": t,
                "role": role,
                "cache": cache,
                "url": url,
                "size": size,
                "own_age": age_json(own_age),
                "peer_age": age_json(peer_age),
                "cmp": classify_age_comparison(own_age, peer_age),
                "stored": stored,
            },
        )

    def promotion(
        self,
        t: float,
        cache: int,
        url: str,
        requester_age: float,
        responder_age: float,
        granted: bool,
    ) -> None:
        """Responder-side fresh-lease verdict on a remote serve."""
        self._emit(
            "promotion",
            {
                "e": "promotion",
                "t": t,
                "cache": cache,
                "url": url,
                "requester_age": age_json(requester_age),
                "responder_age": age_json(responder_age),
                "cmp": classify_age_comparison(responder_age, requester_age),
                "granted": granted,
            },
        )

    def eviction(self, t: float, cache: int, url: str, size: int, age: float) -> None:
        """One victim removed, with the document age fed to the EA tracker."""
        self._emit(
            "evict",
            {
                "e": "evict",
                "t": t,
                "cache": cache,
                "url": url,
                "size": size,
                "age": age_json(age),
            },
        )

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def maybe_snapshot(
        self, now: float, rows_fn: Callable[[float], Sequence[SnapshotRow]]
    ) -> None:
        """Emit every snapshot tick due at or before ``now``.

        ``rows_fn(due)`` is called per tick with the tick's timestamp so
        ages are read at the tick time; in the time-window mode those reads
        trim the tracker window early, which is value-neutral (the same
        subtractions happen in the same order either way) — and both
        engines perform them identically, so results and streams agree.
        """
        interval = self.snapshot_interval
        if interval <= 0:
            return
        due = self._next_snapshot
        if due is None:
            self._next_snapshot = now + interval
            return
        while now >= due:
            self.snapshot(due, rows_fn(due))
            due += interval
        self._next_snapshot = due

    def snapshot(self, t: float, rows: Sequence[SnapshotRow]) -> None:
        """Emit one per-proxy gauge snapshot at tick time ``t``."""
        ranks = age_ranks([row[0] for row in rows])
        caches = []
        for index, (age, used, docs, lookups, local_hits, remote_served, evictions) in (
            enumerate(rows)
        ):
            caches.append(
                {
                    "cache": index,
                    "age": age_json(age),
                    "rank": ranks[index],
                    "used": used,
                    "docs": docs,
                    "lookups": lookups,
                    "local_hits": local_hits,
                    "remote_served": remote_served,
                    "evictions": evictions,
                }
            )
        self._emit("snapshot", {"e": "snapshot", "t": t, "caches": caches})

    # ------------------------------------------------------------------ #
    # Wiring helpers
    # ------------------------------------------------------------------ #

    def eviction_hook(self, cache_index: int):
        """Per-cache eviction callback for ``ProxyCache.eviction_observer``."""

        def hook(record, age: float) -> None:
            self.eviction(record.evict_time, cache_index, record.url, record.size, age)

        return hook
