"""Hierarchical span tracing: monotonic-clock attribution for replay runs.

``repro.obs`` already had aggregates (:mod:`repro.obs.registry`), decisions
(:mod:`repro.obs.events`), and provenance (:mod:`repro.obs.manifest`);
spans are the *where-did-the-time-go* channel. A :class:`SpanTracer`
records a tree of monotonic-clock spans —

    run → engine:<name> → source / chunk → regime (cold / warm) …

— with integer counters attached per span, and exports the tree as Chrome
Trace Event Format JSON (loadable in Perfetto or ``chrome://tracing``) or
as a terminal timeline (``repro obs timeline``). Parallel sweeps merge
each worker's span rows into the parent tracer on a per-point lane via
the existing :class:`repro.parallel.telemetry.TaskReport` channel.

Determinism contract (docs/OBSERVABILITY.md): tracers are passed out of
band exactly like event recorders — never on ``SimulationConfig`` — and
the engines only ever *write into* them, so ``repro-events/1`` bytes,
result digests, and memo keys are identical with tracing on or off
(enforced by the differential tests in ``tests/obs``). The wall-clock
reads live here, behind the same ``RPR111`` carve-out as the session
wall timer and the sweep workers' task timing: the values are telemetry
only and nothing inside the replay ever reads them back.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.registry import ObsError

#: Schema tag carried in the exported file's ``otherData`` block. The
#: ``traceEvents`` payload itself is standard Chrome Trace Event Format.
TRACE_EVENTS_SCHEMA = "repro-trace-events/1"

#: Span row layout: ``[name, cat, start_ns, end_ns, tid, args]`` where
#: ``args`` is a counter dict or None. Rows are plain lists so worker
#: tracers pickle cheaply across the sweep pool.
SpanRow = List[Any]


class SpanTracer:
    """Records a stack-disciplined tree of wall-clock spans.

    One tracer per run (or per sweep, with worker rows merged in).
    ``begin``/``end`` are the hot-path API — two attribute lookups, one
    clock read, one list op each — and are only ever called behind a
    hoisted ``spans is not None`` guard, so a run without a tracer pays
    nothing. Categories are free-form; the engines use ``run`` /
    ``engine`` / ``source`` / ``replay`` / ``regime``.
    """

    __slots__ = ("rows", "tid", "labels", "_stack")

    def __init__(self, tid: int = 0):
        self.rows: List[SpanRow] = []
        self.tid = tid
        #: Lane labels (``tid -> name``) exported as thread-name metadata.
        self.labels: Dict[int, str] = {}
        self._stack: List[SpanRow] = []

    def begin(self, name: str, cat: str = "run") -> None:
        """Open a span as a child of the currently open span."""
        # Telemetry-only monotonic clock; never feeds simulation state.
        self._stack.append(
            [name, cat, time.perf_counter_ns(), 0, self.tid, None]  # repro: noqa[RPR111]
        )

    def end(self, **counters: int) -> None:
        """Close the innermost open span, attaching ``counters`` to it."""
        if not self._stack:
            raise ObsError("SpanTracer.end() with no open span")
        row = self._stack.pop()
        # Same carve-out as begin(): the close timestamp is telemetry only.
        row[3] = time.perf_counter_ns()  # repro: noqa[RPR111]
        if counters:
            row[5] = dict(counters)
        self.rows.append(row)

    def add(self, **counters: int) -> None:
        """Accumulate counters onto the innermost open span."""
        if not self._stack:
            raise ObsError("SpanTracer.add() with no open span")
        args = self._stack[-1][5]
        if args is None:
            args = self._stack[-1][5] = {}
        for key, value in counters.items():
            args[key] = args.get(key, 0) + value

    def span(self, name: str, cat: str = "run"):
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        return _SpanContext(self, name, cat)

    def wrap_source(self, iterator: Iterable, label: str) -> Iterator:
        """Yield from ``iterator``, timing every pull as a source span.

        This is where the generation-vs-replay wall split is measured:
        time spent inside the source's ``next()`` (synthetic generation,
        packed-file decoding, interning) lands in ``<label>`` spans,
        siblings of the engine's per-chunk replay spans. The final
        exhaustion probe is recorded too — for streamed sources it is
        real source work.
        """
        it = iter(iterator)
        begin = self.begin
        end = self.end
        while True:
            begin(label, "source")
            try:
                item = next(it)
            except StopIteration:
                end()
                return
            end()
            yield item

    def merge(self, rows: Iterable[SpanRow], tid: int, label: Optional[str] = None) -> None:
        """Adopt another tracer's finished rows onto lane ``tid``.

        Used by the sweep runner to fold worker span trees into the
        parent timeline. Workers and parent share ``CLOCK_MONOTONIC``
        under fork-based pools, so the raw timestamps line up; the rows
        are re-tagged with the target lane only.
        """
        for name, cat, start_ns, end_ns, _tid, args in rows:
            self.rows.append([name, cat, start_ns, end_ns, tid, args])
        if label is not None:
            self.labels[tid] = label

    def to_chrome(self) -> Dict[str, Any]:
        """The span tree as a Chrome Trace Event Format payload.

        Timestamps are rebased to the earliest span and exported in
        microseconds (exact ns/1000 division, so nesting order is
        preserved bit-for-bit); every span is a complete (``"ph": "X"``)
        event with its counters under ``args``.
        """
        if self._stack:
            raise ObsError(
                f"cannot export with {len(self._stack)} span(s) still open "
                f"(innermost: {self._stack[-1][0]!r})"
            )
        base = min((row[2] for row in self.rows), default=0)
        events: List[Dict[str, Any]] = []
        for tid in sorted(self.labels):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": self.labels[tid]},
                }
            )
        for name, cat, start_ns, end_ns, tid, args in sorted(
            self.rows, key=lambda row: (row[4], row[2], -row[3])
        ):
            event: Dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (start_ns - base) / 1000.0,
                "dur": (end_ns - start_ns) / 1000.0,
                "pid": 1,
                "tid": tid,
            }
            if args:
                event["args"] = args
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_EVENTS_SCHEMA, "clock": "perf_counter_ns"},
        }

    def write(self, path: str) -> None:
        """Write the Chrome Trace Event Format JSON to ``path``."""
        with open(path, "w", encoding="utf-8", newline="\n") as sink:
            json.dump(self.to_chrome(), sink, separators=(",", ":"))
            sink.write("\n")


class _SpanContext:
    """Context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat")

    def __init__(self, tracer: SpanTracer, name: str, cat: str):
        self._tracer = tracer
        self._name = name
        self._cat = cat

    def __enter__(self) -> SpanTracer:
        self._tracer.begin(self._name, self._cat)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end()


def source_label(trace: Any) -> str:
    """Span name for a trace source: what the source spans are called."""
    name = type(trace).__name__
    if name == "SyntheticTraceStream":
        return "source:synthetic"
    if name == "PackedTraceReader":
        return "source:packed"
    if name == "RecordStream":
        return "source:records"
    if name == "Trace":
        return "source:interned"
    return f"source:{name.lower()}"


# --------------------------------------------------------------------- #
# Offline: validation and terminal rendering of exported trace files
# --------------------------------------------------------------------- #

#: End-time slack (µs) when checking nesting of exported events: ts+dur
#: is two float divisions + one add away from the exact integer close.
_NEST_TOLERANCE_US = 0.5


def validate_trace_events(payload: Any) -> List[str]:
    """Schema + nesting errors for a Chrome Trace Event payload.

    Checks that ``traceEvents`` exists, every complete event carries the
    required fields with sane types, and that per lane (``tid``) the
    spans are properly nested — stack-disciplined, never partially
    overlapping. Returns a list of human-readable errors (empty = valid).
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    lanes: Dict[Any, List[Tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            errors.append(f"event {i}: unsupported phase {ph!r} (expected 'X'/'M')")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"event {i}: missing span name")
            name = "?"
        bad = False
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"event {i} ({name}): bad {key!r}: {value!r}")
                bad = True
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"event {i} ({name}): missing integer {key!r}")
                bad = True
        if bad:
            continue
        lanes.setdefault(event["tid"], []).append(
            (float(event["ts"]), float(event["dur"]), name)
        )
    for tid in sorted(lanes):
        stack: List[Tuple[float, str]] = []  # (end, name)
        for ts, dur, name in sorted(lanes[tid], key=lambda e: (e[0], -e[1])):
            while stack and ts >= stack[-1][0] - _NEST_TOLERANCE_US:
                stack.pop()
            if stack and ts + dur > stack[-1][0] + _NEST_TOLERANCE_US:
                errors.append(
                    f"lane {tid}: span {name!r} at ts={ts:.3f} overlaps "
                    f"enclosing span {stack[-1][1]!r} without nesting"
                )
            stack.append((ts + dur, name))
    return errors


def load_trace_events(path: str) -> Dict[str, Any]:
    """Parse and validate a trace-event file; raises :class:`ObsError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObsError(f"cannot read trace-event file {path}: {exc}")
    errors = validate_trace_events(payload)
    if errors:
        raise ObsError(
            f"invalid trace-event file {path}: " + "; ".join(errors[:5])
        )
    return payload


class _Agg:
    """One aggregated tree node: all same-named spans under one path."""

    __slots__ = ("name", "count", "total_us", "args", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_us = 0.0
        self.args: Dict[str, float] = {}
        self.children: Dict[str, "_Agg"] = {}


def _aggregate_lane(events: List[Dict[str, Any]]) -> _Agg:
    """Fold one lane's complete events into a name-path aggregate tree."""
    root = _Agg("")
    # (ts, -dur) order visits parents before their children.
    stack: List[Tuple[float, _Agg]] = []  # (end_ts, node)
    for event in sorted(events, key=lambda e: (e["ts"], -e["dur"])):
        ts = float(event["ts"])
        dur = float(event["dur"])
        while stack and ts >= stack[-1][0] - _NEST_TOLERANCE_US:
            stack.pop()
        parent = stack[-1][1] if stack else root
        node = parent.children.get(event["name"])
        if node is None:
            node = parent.children[event["name"]] = _Agg(event["name"])
        node.count += 1
        node.total_us += dur
        for key, value in (event.get("args") or {}).items():
            if isinstance(value, (int, float)):
                node.args[key] = node.args.get(key, 0) + value
        stack.append((ts + dur, node))
    return root


def _fmt_seconds(us: float) -> str:
    seconds = us / 1e6
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def render_timeline(payload: Dict[str, Any], width: int = 30) -> str:
    """Terminal rendering of a Chrome Trace Event payload.

    Spans are aggregated by name *path* (all ``chunk`` spans under the
    same parent fold into one line with a count), so long streamed runs
    render in a screenful. Ends with the generation-vs-replay wall-time
    split: total time in source spans vs total time in chunk spans.
    """
    events = [e for e in payload.get("traceEvents", []) if e.get("ph") == "X"]
    labels = {
        e.get("tid"): e.get("args", {}).get("name", "")
        for e in payload.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    if not events:
        return "timeline: no spans recorded"
    lanes: Dict[int, List[Dict[str, Any]]] = {}
    for event in events:
        lanes.setdefault(event["tid"], []).append(event)
    total_us = max(e["ts"] + e["dur"] for e in events) - min(e["ts"] for e in events)
    lines = [
        f"timeline: {len(events)} spans, {len(lanes)} lane(s), "
        f"wall {total_us / 1e6:.3f}s"
    ]
    gen_us = sum(e["dur"] for e in events if e.get("cat") == "source")
    replay_us = sum(e["dur"] for e in events if e.get("name") == "chunk")

    def _emit(node: _Agg, depth: int, scale_us: float) -> None:
        for child in node.children.values():
            share = child.total_us / scale_us * 100.0 if scale_us else 0.0
            bar = "#" * max(
                1, min(width, int(round(child.total_us / scale_us * width)))
            ) if scale_us else ""
            label = "  " * depth + child.name
            count = f"x{child.count}" if child.count > 1 else "  "
            counters = ""
            if child.args:
                parts = ", ".join(
                    f"{k}={int(v) if float(v).is_integer() else v}"
                    for k, v in sorted(child.args.items())
                )
                counters = f"  [{parts}]"
            lines.append(
                f"  {label:<34} {count:>5} {_fmt_seconds(child.total_us)} "
                f"{share:5.1f}%  {bar}{counters}"
            )
            _emit(child, depth + 1, scale_us)

    for tid in sorted(lanes):
        label = labels.get(tid)
        lines.append(f"lane {tid}" + (f" ({label})" if label else ""))
        root = _aggregate_lane(lanes[tid])
        lane_total = sum(child.total_us for child in root.children.values())
        _emit(root, 0, lane_total)
    if gen_us or replay_us:
        both = gen_us + replay_us
        lines.append(
            "wall-time split: generation/read "
            f"{gen_us / 1e6:.3f}s ({gen_us / both * 100.0 if both else 0.0:.1f}%)"
            " vs replay "
            f"{replay_us / 1e6:.3f}s ({replay_us / both * 100.0 if both else 0.0:.1f}%)"
        )
    return "\n".join(lines)
