"""Validation for the ``repro-events/1`` JSONL stream.

The validator is deliberately strict about *structure* — every line must
be a JSON object whose keys exactly match the schema for its event type,
with type-checked values — because downstream tooling (``repro obs
summarize``/``diff``, CI smoke gates) treats the stream as a stable
machine interface. Cross-engine byte identity is enforced separately by
the differential tests; this module answers the cheaper question "is this
file a well-formed event stream at all".
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.obs.events import EVENTS_SCHEMA

Predicate = Callable[[Any], bool]


def _is_str(value: Any) -> bool:
    return isinstance(value, str)


def _is_bool(value: Any) -> bool:
    return isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_age(value: Any) -> bool:
    return value == "inf" if isinstance(value, str) else _is_num(value)


def _is_opt_int(value: Any) -> bool:
    return value is None or _is_int(value)


def _is_kind(value: Any) -> bool:
    return value in ("local_hit", "remote_hit", "miss")


def _is_cmp(value: Any) -> bool:
    return value in ("gt", "eq", "lt")


def _is_caches(value: Any) -> bool:
    return isinstance(value, list)


#: Required fields per event type (per placement role), keyed exactly:
#: extra or missing keys are errors.
_FIELDS: Dict[str, Dict[str, Predicate]] = {
    "run": {
        "e": _is_str,
        "schema": _is_str,
        "config": _is_str,
        "trace": _is_str,
        "snapshot_interval": _is_num,
    },
    "request": {
        "e": _is_str,
        "t": _is_num,
        "cache": _is_int,
        "url": _is_str,
        "kind": _is_kind,
        "size": _is_int,
        "responder": _is_opt_int,
        "stored": _is_bool,
        "refreshed": _is_bool,
        "hops": _is_int,
    },
    "placement/remote": {
        "e": _is_str,
        "t": _is_num,
        "role": _is_str,
        "cache": _is_int,
        "url": _is_str,
        "size": _is_int,
        "requester_age": _is_age,
        "responder_age": _is_age,
        "cmp": _is_cmp,
        "stored": _is_bool,
        "refreshed": _is_bool,
    },
    "placement/origin": {
        "e": _is_str,
        "t": _is_num,
        "role": _is_str,
        "cache": _is_int,
        "url": _is_str,
        "size": _is_int,
        "own_age": _is_age,
        "stored": _is_bool,
    },
    "placement/parent": {
        "e": _is_str,
        "t": _is_num,
        "role": _is_str,
        "cache": _is_int,
        "url": _is_str,
        "size": _is_int,
        "own_age": _is_age,
        "peer_age": _is_age,
        "cmp": _is_cmp,
        "stored": _is_bool,
    },
    "promotion": {
        "e": _is_str,
        "t": _is_num,
        "cache": _is_int,
        "url": _is_str,
        "requester_age": _is_age,
        "responder_age": _is_age,
        "cmp": _is_cmp,
        "granted": _is_bool,
    },
    "evict": {
        "e": _is_str,
        "t": _is_num,
        "cache": _is_int,
        "url": _is_str,
        "size": _is_int,
        "age": _is_age,
    },
    "snapshot": {
        "e": _is_str,
        "t": _is_num,
        "caches": _is_caches,
    },
    "end": {
        "e": _is_str,
        "requests": _is_int,
    },
}
_FIELDS["placement/child"] = _FIELDS["placement/parent"]

_SNAPSHOT_ROW_FIELDS: Dict[str, Predicate] = {
    "cache": _is_int,
    "age": _is_age,
    "rank": _is_int,
    "used": _is_int,
    "docs": _is_int,
    "lookups": _is_int,
    "local_hits": _is_int,
    "remote_served": _is_int,
    "evictions": _is_int,
}


def _check_fields(
    obj: Dict[str, Any], spec: Dict[str, Predicate], where: str
) -> List[str]:
    errors = []
    missing = [key for key in spec if key not in obj]
    extra = [key for key in obj if key not in spec]
    if missing:
        errors.append(f"{where}: missing keys {missing}")
    if extra:
        errors.append(f"{where}: unexpected keys {extra}")
    for key, predicate in spec.items():
        if key in obj and not predicate(obj[key]):
            errors.append(f"{where}: bad value for {key!r}: {obj[key]!r}")
    return errors


def validate_event(obj: Any) -> List[str]:
    """Structural errors for one decoded event object (empty when valid)."""
    if not isinstance(obj, dict):
        return ["event is not a JSON object"]
    kind = obj.get("e")
    if not isinstance(kind, str):
        return ["missing event type key 'e'"]
    spec_key = kind
    if kind == "placement":
        role = obj.get("role")
        spec_key = f"placement/{role}"
        if spec_key not in _FIELDS:
            return [f"placement: unknown role {role!r}"]
    spec = _FIELDS.get(spec_key)
    if spec is None:
        return [f"unknown event type {kind!r}"]
    errors = _check_fields(obj, spec, kind)
    if kind == "run" and obj.get("schema") != EVENTS_SCHEMA:
        errors.append(f"run: schema is {obj.get('schema')!r}, expected {EVENTS_SCHEMA!r}")
    if kind == "snapshot" and isinstance(obj.get("caches"), list):
        for index, row in enumerate(obj["caches"]):
            if not isinstance(row, dict):
                errors.append(f"snapshot: caches[{index}] is not an object")
                continue
            errors.extend(_check_fields(row, _SNAPSHOT_ROW_FIELDS, f"snapshot.caches[{index}]"))
    return errors


def validate_stream(lines: Iterable[str]) -> Tuple[List[str], Dict[str, int]]:
    """Validate a whole stream; returns ``(errors, counts_by_type)``.

    Checks framing on top of per-line structure: the first line must be the
    ``run`` header, the last the ``end`` trailer, and the trailer's request
    count must match the ``request`` lines seen.
    """
    errors: List[str] = []
    counts: Dict[str, int] = {}
    last_kind = None
    end_requests = None
    total = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            errors.append(f"line {number}: blank line")
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        for problem in validate_event(obj):
            errors.append(f"line {number}: {problem}")
        kind = obj.get("e") if isinstance(obj, dict) else None
        if isinstance(kind, str):
            counts[kind] = counts.get(kind, 0) + 1
            last_kind = kind
            if kind == "end" and _is_int(obj.get("requests")):
                end_requests = obj["requests"]
        total += 1
        if number == 1 and kind != "run":
            errors.append("line 1: stream must start with the 'run' header")
    if total == 0:
        errors.append("stream is empty")
    elif last_kind != "end":
        errors.append(f"line {total}: stream must end with the 'end' trailer")
    elif end_requests is not None and end_requests != counts.get("request", 0):
        errors.append(
            f"end trailer says {end_requests} requests, stream has "
            f"{counts.get('request', 0)} request lines"
        )
    return errors, counts


def validate_events_file(path: str) -> Tuple[List[str], Dict[str, int]]:
    """:func:`validate_stream` over a file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_stream(handle)
