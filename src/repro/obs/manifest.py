"""Run manifests: the ``repro-manifest/1`` provenance record.

A manifest pins down everything needed to reproduce or audit one
simulation run: the config hash (same canonical-JSON digest the sweep memo
store keys on), the trace fingerprint, which engine was requested and
which actually ran (fallback is observable), the seed, measured wall time,
and — when an event stream was written — the file's SHA-256, line count,
and per-type event counts.

Wall time is the one non-deterministic field, which is why the manifest is
attached to :class:`~repro.simulation.results.SimulationResult` as a
*side-channel* attribute excluded from ``to_dict``/``to_json``: results
stay byte-comparable across engines and runs while provenance rides along.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from typing import Any, Dict, Optional

#: Schema identifier for manifest payloads.
MANIFEST_SCHEMA = "repro-manifest/1"


def _canonical_digest(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1024)
def config_hash(config) -> str:
    """SHA-256 of the config's *simulation semantics* in canonical JSON.

    The ``engine`` field is excluded: it selects an execution strategy
    with byte-identical results and byte-identical event streams, so two
    runs of the same workload on different engines must share one config
    hash (the ``run`` header is part of the cross-engine stream-identity
    contract; which engine actually ran is recorded separately in the
    manifest as ``engine_requested`` / ``engine_resolved``).

    Memoised by config value — :class:`SimulationConfig` is a frozen
    dataclass, and a sweep hashes the same config once per point, so the
    cache keeps repeated observed runs off the ≤2% overhead budget.
    """
    payload = config.to_dict()
    payload.pop("engine", None)
    return _canonical_digest(payload)


def result_digest(result) -> str:
    """SHA-256 of the result's serialised form — the cross-engine identity.

    Hashes the *compact* JSON form (``indent=None``): byte-for-byte it
    differs from the pretty ``to_json()`` default only in whitespace, so
    it carries the same identity, and the compact encoder keeps this off
    the obs layer's ≤2% disabled-overhead budget.
    """
    return hashlib.sha256(result.to_json(indent=None).encode("utf-8")).hexdigest()


def file_digest(path: str) -> str:
    """SHA-256 of a file's bytes (event streams, memo artifacts)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def build_manifest(
    config,
    trace_fingerprint: str,
    engine_requested: str,
    engine_resolved: str,
    wall_time_s: float,
    result,
    snapshot_interval: float = 0.0,
    events_path: Optional[str] = None,
    event_counts: Optional[Dict[str, int]] = None,
    peak_memory_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Assemble a ``repro-manifest/1`` dict for one completed run.

    ``peak_memory_bytes`` is the :mod:`tracemalloc` high-water mark when
    the session tracked it (``None`` otherwise) — like wall time, an
    execution fact rather than a result, so it lives here out-of-band.
    """
    events: Optional[Dict[str, Any]] = None
    if events_path is not None:
        counts = dict(sorted((event_counts or {}).items()))
        events = {
            "path": events_path,
            "sha256": file_digest(events_path),
            "lines": sum(counts.values()),
            "counts": counts,
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "config": config_hash(config),
        "trace": trace_fingerprint,
        "engine_requested": engine_requested,
        "engine_resolved": engine_resolved,
        "seed": config.seed,
        "wall_time_s": wall_time_s,
        "peak_memory_bytes": peak_memory_bytes,
        "snapshot_interval": snapshot_interval,
        "events": events,
        "result_sha256": result_digest(result),
    }


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Write a manifest as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
