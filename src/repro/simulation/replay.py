"""Replay a trace through an arbitrary group (no SimulationConfig needed).

:func:`replay_trace` is the lightweight sibling of
:class:`~repro.simulation.simulator.CooperativeSimulator` for callers that
built a group by hand — custom policies, digest location, hash routing, a
prefetch engine — and just want group metrics back.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, Union

from repro.architecture.base import CooperativeGroup
from repro.core.outcomes import RequestOutcome
from repro.simulation.metrics import GroupMetrics
from repro.trace.partition import HashPartitioner, Partitioner
from repro.trace.record import DEFAULT_PATCH_SIZE, Trace, TraceRecord, patch_zero_sizes


class RequestProcessor(Protocol):
    """Anything with ``process(index, record) -> RequestOutcome``.

    Satisfied by every CooperativeGroup subclass and by
    :class:`~repro.prefetch.engine.PrefetchEngine`.
    """

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        ...


def replay_trace(
    processor: RequestProcessor,
    trace: Union[Trace, Iterable[TraceRecord]],
    num_targets: Optional[int] = None,
    partitioner: Optional[Partitioner] = None,
    patch_size: int = DEFAULT_PATCH_SIZE,
) -> GroupMetrics:
    """Drive every record of ``trace`` through ``processor``; return metrics.

    Args:
        processor: Group (or engine) handling requests.
        trace: Records in timestamp order.
        num_targets: Number of request targets; defaults to the processor's
            leaf count when it is a CooperativeGroup (its `group` for a
            wrapper engine), else required.
        partitioner: Client→target mapping; hash partitioner by default.
        patch_size: Zero-size patch (the paper's 4 KB rule).
    """
    if partitioner is None:
        if num_targets is None:
            group = getattr(processor, "group", processor)
            if isinstance(group, CooperativeGroup):
                num_targets = len(group.topology.leaves())
            else:
                raise ValueError(
                    "num_targets is required when the processor is not a "
                    "CooperativeGroup (or wrapper around one)"
                )
        partitioner = HashPartitioner(num_targets)

    group = getattr(processor, "group", processor)
    leaves = (
        group.topology.leaves()
        if isinstance(group, CooperativeGroup)
        else list(range(partitioner.num_proxies))
    )

    metrics = GroupMetrics()
    for position, record in partitioner.split(patch_zero_sizes(iter(trace), patch_size)):
        outcome = processor.process(leaves[position], record)
        metrics.observe(outcome)
    return metrics
