"""Time-series metrics: how the schemes behave as caches warm up.

The paper reports end-of-trace aggregates only; warm-up dynamics matter for
operators (how long until the EA scheme's contention signal is meaningful?)
and for honest comparisons (a scheme could win purely on steady state while
losing the whole warm-up). :class:`TimeSeriesCollector` buckets request
outcomes by virtual-time window and exposes per-window hit-rate series plus
a terminal-friendly sparkline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.outcomes import RequestOutcome
from repro.errors import SimulationError
from repro.network.latency import ServiceKind
from repro.simulation.metrics import GroupMetrics

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass
class WindowPoint:
    """Aggregates of one time window."""

    start: float
    metrics: GroupMetrics = field(default_factory=GroupMetrics)

    @property
    def hit_rate(self) -> float:
        """Group hit rate within this window."""
        return self.metrics.hit_rate


class TimeSeriesCollector:
    """Buckets outcomes into fixed-width virtual-time windows.

    Feed it every outcome via :meth:`observe` (order must be non-decreasing
    in time, which trace replay guarantees).
    """

    def __init__(self, window_seconds: float):
        if window_seconds <= 0:
            raise SimulationError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self.windows: List[WindowPoint] = []
        self._origin: Optional[float] = None

    def observe(self, outcome: RequestOutcome) -> None:
        """Fold one outcome into its time window."""
        if self._origin is None:
            self._origin = outcome.timestamp
        index = int((outcome.timestamp - self._origin) // self.window_seconds)
        if index < 0:
            raise SimulationError("outcomes must arrive in time order")
        while len(self.windows) <= index:
            start = self._origin + len(self.windows) * self.window_seconds
            self.windows.append(WindowPoint(start=start))
        self.windows[index].metrics.observe(outcome)

    def hit_rate_series(self) -> List[float]:
        """Per-window group hit rate (empty windows report 0.0)."""
        return [window.hit_rate for window in self.windows]

    def latency_series(self) -> List[float]:
        """Per-window mean measured latency."""
        return [window.metrics.mean_measured_latency for window in self.windows]

    def warmup_windows(self, fraction: float = 0.9) -> int:
        """Windows until the hit rate first reaches ``fraction`` of its final level.

        Returns the window count (0-based index + 1); ``len(windows)`` if it
        never gets there (still warming at trace end).
        """
        if not 0.0 < fraction <= 1.0:
            raise SimulationError("fraction must be in (0, 1]")
        series = self.hit_rate_series()
        if not series:
            return 0
        target = series[-1] * fraction
        for index, value in enumerate(series):
            if value >= target:
                return index + 1
        return len(series)

    def sparkline(self) -> str:
        """Unicode sparkline of the hit-rate series."""
        series = self.hit_rate_series()
        if not series:
            return ""
        top = max(series) or 1.0
        return "".join(
            _SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1, int(v / top * (len(_SPARK_LEVELS) - 1)))]
            for v in series
        )
