"""Simulation result container with JSON/CSV serialisation."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.cache.stats import CacheStats
from repro.errors import SimulationError
from repro.network.bus import MessageCounters
from repro.simulation.metrics import GroupMetrics


def _jsonable(value: float) -> Any:
    """JSON has no Infinity literal; encode it as the string 'inf'."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def _revive(value: Any) -> Any:
    """Inverse of :func:`_jsonable`."""
    if value == "inf":
        return math.inf
    return value


def _flat_asdict(stats) -> Dict[str, Any]:
    """``dataclasses.asdict`` for the flat stats blocks, without the
    recursive deep-copy machinery — the manifest digest serialises every
    result, so this sits on the obs layer's fixed per-run cost."""
    return {name: getattr(stats, name) for name in stats.__dataclass_fields__}


def _dataclass_from(cls, payload: Dict[str, Any]):
    """Rebuild a stats dataclass from a dict, ignoring derived extras.

    :meth:`SimulationResult.to_dict` mixes computed rates into the metrics
    block; only real fields feed the constructor.
    """
    names = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in names})


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        config: The run's configuration as a plain dict (JSON-safe echo).
        metrics: Group request-resolution counters and rates.
        message_counters: Protocol traffic accounting.
        cache_stats: Per-cache counter blocks, index-aligned with the group.
        expiration_ages: Per-cache expiration age at end of run.
        avg_cache_expiration_age: Group mean (Table 1's metric).
        unique_documents: Distinct URLs cached anywhere at end of run.
        total_copies: Cached entries including replicas at end of run.
        replication_factor: ``total_copies / unique_documents``.
        estimated_latency: Paper Eq. 6 value with the paper's constants.
        manifest: Optional ``repro-manifest/1`` provenance record attached
            by :mod:`repro.obs.session`. Deliberately **excluded** from
            ``to_dict``/``to_json``/``from_dict``: it carries wall time —
            the one non-deterministic quantity — and serialised results
            must stay byte-comparable across engines, runs, and the memo
            store (which persists manifests as a sidecar instead).
    """

    config: Dict[str, Any]
    metrics: GroupMetrics
    message_counters: MessageCounters
    cache_stats: List[CacheStats]
    expiration_ages: List[float]
    avg_cache_expiration_age: float
    unique_documents: int
    total_copies: int
    replication_factor: float
    estimated_latency: float
    manifest: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to JSON-serialisable primitives."""
        return {
            "config": self.config,
            "metrics": {
                **_flat_asdict(self.metrics),
                "hit_rate": self.metrics.hit_rate,
                "byte_hit_rate": self.metrics.byte_hit_rate,
                "local_hit_rate": self.metrics.local_hit_rate,
                "remote_hit_rate": self.metrics.remote_hit_rate,
                "miss_rate": self.metrics.miss_rate,
                "mean_measured_latency": self.metrics.mean_measured_latency,
            },
            "message_counters": _flat_asdict(self.message_counters),
            "cache_stats": [_flat_asdict(stats) for stats in self.cache_stats],
            "expiration_ages": [_jsonable(age) for age in self.expiration_ages],
            "avg_cache_expiration_age": _jsonable(self.avg_cache_expiration_age),
            "unique_documents": self.unique_documents,
            "total_copies": self.total_copies,
            "replication_factor": self.replication_factor,
            "estimated_latency": self.estimated_latency,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        The round trip is exact: ``from_dict(json.loads(r.to_json()))``
        serialises back to byte-identical JSON (floats survive via repr
        round-tripping; infinities via the ``"inf"`` sentinel). The memo
        store relies on this to make cached sweeps indistinguishable from
        fresh simulations.

        Raises:
            SimulationError: when the payload is missing required blocks.
        """
        try:
            return cls(
                config=dict(payload["config"]),
                metrics=_dataclass_from(GroupMetrics, payload["metrics"]),
                message_counters=_dataclass_from(
                    MessageCounters, payload["message_counters"]
                ),
                cache_stats=[
                    _dataclass_from(CacheStats, block)
                    for block in payload["cache_stats"]
                ],
                expiration_ages=[_revive(age) for age in payload["expiration_ages"]],
                avg_cache_expiration_age=_revive(payload["avg_cache_expiration_age"]),
                unique_documents=payload["unique_documents"],
                total_copies=payload["total_copies"],
                replication_factor=payload["replication_factor"],
                estimated_latency=payload["estimated_latency"],
            )
        except (KeyError, TypeError) as exc:
            raise SimulationError(f"malformed simulation result payload: {exc}") from exc

    def summary(self) -> str:
        """One-line human summary for logs and CLI output."""
        m = self.metrics
        age = self.avg_cache_expiration_age
        age_text = "inf" if math.isinf(age) else f"{age:.1f}s"
        return (
            f"scheme={self.config.get('scheme', '?')} "
            f"requests={m.requests} hit_rate={m.hit_rate:.4f} "
            f"byte_hit_rate={m.byte_hit_rate:.4f} "
            f"local={m.local_hit_rate:.4f} remote={m.remote_hit_rate:.4f} "
            f"miss={m.miss_rate:.4f} est_latency={self.estimated_latency*1000:.0f}ms "
            f"exp_age={age_text} replication={self.replication_factor:.3f}"
        )
