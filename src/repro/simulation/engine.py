"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: events are ``(time, seq)``-ordered
callbacks in a binary heap, ties broken by insertion order so identical runs
replay identically. The trace-driven simulator schedules one event per trace
record; the engine also supports cancellation and bounded runs for tests and
future extensions (e.g. modelling concurrent in-flight requests).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import InvariantViolation, SimulationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventScheduler.schedule`."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`EventScheduler.cancel` was called on this handle."""
        return self._event.cancelled


class EventScheduler:
    """Deterministic virtual-time event loop.

    Typical use::

        sched = EventScheduler()
        sched.schedule(1.0, lambda: do_something())
        sched.run()          # drains all events
        sched.now            # -> 1.0
    """

    def __init__(self, start_time: float = 0.0, sanitize: bool = False):
        self._now = start_time
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._processed = 0
        #: When set, every fired event is checked against the virtual-clock
        #: invariant (time never moves backwards) — a guard for future
        #: scheduler refactors; violations raise InvariantViolation.
        self.sanitize = sanitize

    @property
    def now(self) -> float:
        """Current virtual time (time of the last fired event)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, un-fired, un-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at virtual ``time``.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        handle._event.cancelled = True

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self.sanitize and event.time < self._now:
                raise InvariantViolation(
                    f"[event-order] <engine>.step at t={self._now:g}: event "
                    f"scheduled for earlier time {event.time:g} fired late"
                )
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (or fire at most ``max_events``); returns count fired."""
        fired = 0
        while (max_events is None or fired < max_events) and self.step():
            fired += 1
        return fired

    def run_until(self, deadline: float) -> int:
        """Fire every event scheduled at or before ``deadline``.

        Virtual time advances to ``deadline`` even if the queue drains early.
        """
        fired = 0
        while self._heap:
            upcoming = self._peek_time()
            if upcoming is None or upcoming > deadline:
                break
            self.step()
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
