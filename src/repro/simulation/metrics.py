"""Group-level metrics: the four quantities the paper evaluates.

* Cumulative (document) hit rate — "the ratio of the total hits in the
  group to total number of requests in all the caches in the group".
* Cumulative byte hit rate — same, weighted by bytes.
* Average cache expiration age — "the mean of the Cache Expiration Ages of
  all the caches in the group" (Table 1).
* Average latency — the paper's Eq. 6 estimator from hit-class rates and
  the measured per-class constants, plus the simulator's own measured mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.outcomes import RequestOutcome
from repro.errors import SimulationError
from repro.network.latency import (
    PAPER_LOCAL_HIT_LATENCY,
    PAPER_MISS_LATENCY,
    PAPER_REMOTE_HIT_LATENCY,
    ServiceKind,
)


def estimate_average_latency(
    local_hit_rate: float,
    remote_hit_rate: float,
    miss_rate: float,
    local_hit_latency: float = PAPER_LOCAL_HIT_LATENCY,
    remote_hit_latency: float = PAPER_REMOTE_HIT_LATENCY,
    miss_latency: float = PAPER_MISS_LATENCY,
) -> float:
    """Paper Eq. 6: rate-weighted mean of the three service latencies.

    ``(LHR*LHL + RHR*RHL + MR*ML) / (LHR + RHR + MR)`` — the denominator
    normalises in case the rates do not sum exactly to 1.
    """
    total = local_hit_rate + remote_hit_rate + miss_rate
    if total <= 0:
        raise SimulationError("rates must sum to a positive value")
    numerator = (
        local_hit_rate * local_hit_latency
        + remote_hit_rate * remote_hit_latency
        + miss_rate * miss_latency
    )
    return numerator / total


def average_cache_expiration_age(ages: Sequence[float]) -> float:
    """Mean cache expiration age over the group.

    Caches that never evicted report ``+inf`` (no contention signal); they
    are excluded from the mean so one cold cache does not drown the signal.
    Returns ``+inf`` when *no* cache has evicted anything — the group has
    experienced no contention at all (this is why the paper's Table 1 stops
    at 100 MB: at 1 GB the BU workload fits without evictions).
    """
    finite = [age for age in ages if not math.isinf(age)]
    if not finite:
        return math.inf
    return sum(finite) / len(finite)


@dataclass
class GroupMetrics:
    """Accumulated request-resolution counters for a whole group.

    Byte counters attribute each request's served size to the class that
    served it, so ``byte_hit_rate`` is "ratio of bytes that hit in the cache
    group to the total number of bytes requested".
    """

    requests: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    misses: int = 0
    bytes_requested: int = 0
    bytes_local_hit: int = 0
    bytes_remote_hit: int = 0
    bytes_miss: int = 0
    total_measured_latency: float = 0.0

    def observe(self, outcome: RequestOutcome) -> None:
        """Fold one request outcome into the counters."""
        self.requests += 1
        self.bytes_requested += outcome.size
        self.total_measured_latency += outcome.latency
        if outcome.kind is ServiceKind.LOCAL_HIT:
            self.local_hits += 1
            self.bytes_local_hit += outcome.size
        elif outcome.kind is ServiceKind.REMOTE_HIT:
            self.remote_hits += 1
            self.bytes_remote_hit += outcome.size
        else:
            self.misses += 1
            self.bytes_miss += outcome.size

    # ------------------------------------------------------------------ #
    # Rates
    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        """Total group hits (local + remote)."""
        return self.local_hits + self.remote_hits

    @property
    def hit_rate(self) -> float:
        """Cumulative document hit rate."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def local_hit_rate(self) -> float:
        """Fraction of requests served by the cache they arrived at."""
        return self.local_hits / self.requests if self.requests else 0.0

    @property
    def remote_hit_rate(self) -> float:
        """Fraction of requests served by a different group member."""
        return self.remote_hits / self.requests if self.requests else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of requests served by the origin server."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Cumulative byte hit rate."""
        if self.bytes_requested == 0:
            return 0.0
        return (self.bytes_local_hit + self.bytes_remote_hit) / self.bytes_requested

    @property
    def mean_measured_latency(self) -> float:
        """Mean of the per-request modelled latencies."""
        return self.total_measured_latency / self.requests if self.requests else 0.0

    def estimated_latency(
        self,
        local_hit_latency: float = PAPER_LOCAL_HIT_LATENCY,
        remote_hit_latency: float = PAPER_REMOTE_HIT_LATENCY,
        miss_latency: float = PAPER_MISS_LATENCY,
    ) -> float:
        """Average latency via the paper's Eq. 6 (independent of doc sizes)."""
        if self.requests == 0:
            return 0.0
        return estimate_average_latency(
            self.local_hit_rate,
            self.remote_hit_rate,
            self.miss_rate,
            local_hit_latency,
            remote_hit_latency,
            miss_latency,
        )

    @classmethod
    def from_outcomes(cls, outcomes: Iterable[RequestOutcome]) -> "GroupMetrics":
        """Build metrics directly from an outcome stream."""
        metrics = cls()
        for outcome in outcomes:
            metrics.observe(outcome)
        return metrics


@dataclass(frozen=True)
class PlacementDecisionSummary:
    """Group-level roll-up of the per-cache EA decision counters.

    Summarises what the placement scheme actually *did* over a run — the
    per-proxy counters live on :class:`repro.cache.stats.CacheStats`; this
    folds them into the group view reporting surfaces print. Under ad-hoc,
    ``placements_declined`` and ``promotions_withheld`` are structurally
    zero (every copy stores, every serve refreshes), so non-zero values
    are an EA signature.

    Attributes:
        placements_declined: Remotely-obtained copies not stored because
            the scheme said no.
        promotions_granted: Remote serves where the responder's entry got
            the fresh lease of life.
        promotions_withheld: Remote serves where the responder's entry was
            deliberately not refreshed.
    """

    placements_declined: int
    promotions_granted: int
    promotions_withheld: int

    @property
    def promotion_grant_rate(self) -> float:
        """Fraction of remote serves that refreshed the responder's entry."""
        total = self.promotions_granted + self.promotions_withheld
        return self.promotions_granted / total if total else 0.0


def summarize_placement_decisions(cache_stats) -> PlacementDecisionSummary:
    """Fold per-cache :class:`~repro.cache.stats.CacheStats` EA counters."""
    return PlacementDecisionSummary(
        placements_declined=sum(s.placements_declined for s in cache_stats),
        promotions_granted=sum(s.promotions_granted for s in cache_stats),
        promotions_withheld=sum(s.promotions_withheld for s in cache_stats),
    )
