"""Per-request outcome export: CSV and JSON-lines writers.

Large simulations produce millions of outcomes; persisting them lets
external tooling (pandas, gnuplot, spreadsheets) analyse distributions the
aggregate metrics summarise away. Both writers stream — nothing is
buffered beyond one record.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import IO, Iterable, Union

from repro.core.outcomes import RequestOutcome

#: Column order for the CSV export.
CSV_FIELDS = (
    "timestamp",
    "requester",
    "url",
    "size",
    "kind",
    "responder",
    "latency",
    "stored_at_requester",
    "responder_refreshed",
    "requester_age",
    "responder_age",
    "hops",
)


def _row(outcome: RequestOutcome) -> dict:
    def age(value):
        if value is None:
            return ""
        if math.isinf(value):
            return "inf"
        return value

    return {
        "timestamp": outcome.timestamp,
        "requester": outcome.requester,
        "url": outcome.url,
        "size": outcome.size,
        "kind": outcome.kind.value,
        "responder": "" if outcome.responder is None else outcome.responder,
        "latency": outcome.latency,
        "stored_at_requester": outcome.stored_at_requester,
        "responder_refreshed": outcome.responder_refreshed,
        "requester_age": age(outcome.requester_age),
        "responder_age": age(outcome.responder_age),
        "hops": outcome.hops,
    }


def _open_sink(sink: Union[str, Path, IO[str]]):
    if isinstance(sink, (str, Path)):
        return open(sink, "w", encoding="utf-8", newline=""), True
    return sink, False


def write_outcomes_csv(
    outcomes: Iterable[RequestOutcome], sink: Union[str, Path, IO[str]]
) -> int:
    """Write outcomes as CSV with a header row; returns rows written."""
    handle, should_close = _open_sink(sink)
    try:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        count = 0
        for outcome in outcomes:
            writer.writerow(_row(outcome))
            count += 1
        return count
    finally:
        if should_close:
            handle.close()


def write_outcomes_jsonl(
    outcomes: Iterable[RequestOutcome], sink: Union[str, Path, IO[str]]
) -> int:
    """Write outcomes as JSON lines; returns lines written."""
    handle, should_close = _open_sink(sink)
    try:
        count = 0
        for outcome in outcomes:
            # Offline exporter, not a simulation loop: writing is the job.
            handle.write(json.dumps(_row(outcome), sort_keys=True))  # repro: noqa[RPR011]
            handle.write("\n")  # repro: noqa[RPR011]
            count += 1
        return count
    finally:
        if should_close:
            handle.close()


def read_outcomes_csv(source: Union[str, Path, IO[str]]):
    """Read rows written by :func:`write_outcomes_csv` (dicts, typed floats).

    Intended for tests and lightweight post-processing; heavy analysis
    should load the CSV with pandas/numpy directly.
    """
    if isinstance(source, (str, Path)):
        handle = open(source, "r", encoding="utf-8", newline="")
        should_close = True
    else:
        handle, should_close = source, False
    try:
        for row in csv.DictReader(handle):
            row["timestamp"] = float(row["timestamp"])
            row["size"] = int(row["size"])
            row["latency"] = float(row["latency"])
            row["requester"] = int(row["requester"])
            row["hops"] = int(row["hops"])
            yield row
    finally:
        if should_close:
            handle.close()
