"""Trace-driven cooperative caching simulator.

:class:`CooperativeSimulator` wires every substrate together: it builds the
cache group described by a :class:`SimulationConfig`, partitions the trace's
clients across the proxies, replays each record through the group (directly
or via the discrete-event engine), and assembles a
:class:`~repro.simulation.results.SimulationResult`.

This mirrors the paper's methodology (Section 4.1): equal per-cache shares
of the aggregate disk space, distributed architecture, LRU replacement,
zero-size records patched to 4 KB, and requests replayed in timestamp order.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.architecture.base import (
    RESPONDER_STRATEGIES,
    CooperativeGroup,
    build_caches,
)
from repro.architecture.distributed import DistributedGroup
from repro.architecture.hierarchical import HierarchicalGroup
from repro.cache.expiration import WINDOW_MODES
from repro.core.outcomes import RequestOutcome
from repro.core.placement import make_scheme
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.latency import (
    ComponentLatencyModel,
    ConstantLatencyModel,
    LatencyModel,
    StochasticLatencyModel,
)
from repro.network.topology import two_level_tree
from repro.simulation.engine import EventScheduler
from repro.simulation.latencystats import LatencyHistogram
from repro.simulation.metrics import GroupMetrics, average_cache_expiration_age
from repro.simulation.timeseries import TimeSeriesCollector
from repro.simulation.results import SimulationResult
from repro.trace.partition import (
    HashPartitioner,
    Partitioner,
    RoundRobinClientPartitioner,
    RoundRobinRequestPartitioner,
)
from repro.trace.record import DEFAULT_PATCH_SIZE, Trace, patch_zero_sizes

ARCHITECTURES = ("distributed", "hierarchical")
PARTITIONERS = ("hash", "round-robin-client", "round-robin-request")
LATENCY_MODELS = ("constant", "component", "stochastic")
ENGINES = ("object", "columnar", "batch")

#: Logger for engine dispatch; fallback reasons are logged at INFO here.
_fastpath_logger = logging.getLogger("repro.fastpath")


@dataclass(frozen=True)
class SimulationConfig:
    """Declarative description of one simulation run.

    Attributes:
        scheme: Placement scheme: ``"adhoc"`` or ``"ea"``.
        num_caches: Caches receiving client requests (leaves, for the
            hierarchical architecture).
        aggregate_capacity: Total group disk space in bytes, split equally.
        policy: Replacement policy name (see ``repro.cache.make_policy``).
        architecture: ``"distributed"`` (paper's evaluation) or
            ``"hierarchical"``.
        num_parents: Parent caches added above the leaves (hierarchical
            only); they join the equal capacity split.
        partitioner: How clients map to proxies.
        responder_strategy: Which positive ICP replier serves a remote hit.
        tie_break: EA tie-break rule (``"requester"`` or ``"responder"``).
        max_replica_fraction: EA size-aware replica cap (extension; None
            reproduces the paper's size-blind rule).
        window_mode / window_size / window_seconds: Expiration-age window
            (see :class:`repro.cache.ExpirationAgeTracker`).
        latency: Latency model name: constant / component / stochastic.
        latency_sigma: Noise parameter for the stochastic model.
        icp_loss_rate: Probability an ICP reply is lost in transit
            (failure injection; 0 = the paper's lossless setting).
        patch_size: Replacement size for zero-size records (paper: 4 KB).
        seed: Master seed for all stochastic pieces.
        keep_outcomes: Retain the full per-request outcome log on the
            simulator (memory-proportional to the trace).
        use_engine: Replay through the discrete-event engine instead of a
            plain loop (identical results; exercises the DES path).
        warmup_requests: Exclude the first N requests from *metrics* (cache
            state still updates) — standard steady-state measurement; 0
            reproduces the paper's whole-trace accounting.
        collect_histogram: Maintain a streaming latency histogram
            (:class:`~repro.simulation.latencystats.LatencyHistogram`)
            available as ``simulator.histogram``.
        timeseries_window: When positive, bucket outcomes into windows of
            this many seconds (``simulator.timeseries``).
        engine: Execution engine: ``"object"`` (the reference core),
            ``"columnar"`` (:mod:`repro.fastpath` — interned ids, array
            state, byte-identical results), or ``"batch"``
            (:mod:`repro.fastpath.batch` — vectorised whole-trace
            precompute over the same columnar state, byte-identical
            results, numpy-accelerated when available). Configurations the
            fast engines do not support fall back to the object engine
            with a logged reason (see
            :func:`repro.fastpath.columnar_unsupported_reason`).
        sanitize: Instrument the run with the runtime invariant sanitizer
            (:class:`~repro.devtools.sanitizer.SimulationSanitizer`): byte
            accounting, LRU recency order, victim expiration ages, the EA
            one-fresh-lease rule, and event ordering are checked after
            every operation. Violations are collected on
            ``simulator.sanitizer.report``; results are unchanged.
    """

    scheme: str = "ea"
    num_caches: int = 4
    aggregate_capacity: int = 10 * 1024 * 1024
    policy: str = "lru"
    architecture: str = "distributed"
    num_parents: int = 1
    partitioner: str = "hash"
    responder_strategy: str = "first"
    tie_break: str = "requester"
    max_replica_fraction: Optional[float] = None
    window_mode: str = "count"
    window_size: int = 1000
    window_seconds: float = 3600.0
    latency: str = "constant"
    latency_sigma: float = 0.25
    icp_loss_rate: float = 0.0
    patch_size: int = DEFAULT_PATCH_SIZE
    seed: int = 0
    keep_outcomes: bool = False
    use_engine: bool = False
    warmup_requests: int = 0
    collect_histogram: bool = False
    timeseries_window: float = 0.0
    sanitize: bool = False
    engine: str = "object"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise SimulationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.architecture not in ARCHITECTURES:
            raise SimulationError(
                f"architecture must be one of {ARCHITECTURES}, got {self.architecture!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise SimulationError(
                f"partitioner must be one of {PARTITIONERS}, got {self.partitioner!r}"
            )
        if self.responder_strategy not in RESPONDER_STRATEGIES:
            raise SimulationError(
                f"responder_strategy must be one of {RESPONDER_STRATEGIES}"
            )
        if self.latency not in LATENCY_MODELS:
            raise SimulationError(
                f"latency must be one of {LATENCY_MODELS}, got {self.latency!r}"
            )
        if self.window_mode not in WINDOW_MODES:
            raise SimulationError(f"window_mode must be one of {WINDOW_MODES}")
        if self.num_caches <= 0:
            raise SimulationError("num_caches must be positive")
        if self.aggregate_capacity <= 0:
            raise SimulationError("aggregate_capacity must be positive")
        if self.architecture == "hierarchical" and self.num_parents <= 0:
            raise SimulationError("hierarchical architecture needs num_parents >= 1")
        if not 0.0 <= self.icp_loss_rate <= 1.0:
            raise SimulationError("icp_loss_rate must be within [0, 1]")
        if self.warmup_requests < 0:
            raise SimulationError("warmup_requests must be non-negative")
        if self.timeseries_window < 0:
            raise SimulationError("timeseries_window must be non-negative")

    def with_scheme(self, scheme: str) -> "SimulationConfig":
        """Copy of this config running a different placement scheme."""
        return replace(self, scheme=scheme)

    def with_capacity(self, aggregate_capacity: int) -> "SimulationConfig":
        """Copy of this config with a different aggregate capacity."""
        return replace(self, aggregate_capacity=aggregate_capacity)

    def to_dict(self) -> Dict:
        """Plain-dict echo for result serialisation."""
        return asdict(self)


def _make_partitioner(name: str, num_targets: int) -> Partitioner:
    if name == "hash":
        return HashPartitioner(num_targets)
    if name == "round-robin-client":
        return RoundRobinClientPartitioner(num_targets)
    return RoundRobinRequestPartitioner(num_targets)


def _make_latency_model(config: SimulationConfig) -> LatencyModel:
    if config.latency == "constant":
        return ConstantLatencyModel()
    if config.latency == "component":
        return ComponentLatencyModel()
    return StochasticLatencyModel(sigma=config.latency_sigma, seed=config.seed)


class CooperativeSimulator:
    """Builds a cache group from a config and replays traces through it.

    Args:
        obs: Optional :class:`repro.obs.events.RunRecorder`. Passed out of
            band (not on :class:`SimulationConfig`) so observing a run can
            never perturb memo keys, fallback decisions, or results. When
            set, the simulator emits the ``repro-events/1`` stream —
            request outcomes, placement/promotion verdicts, evictions,
            snapshot ticks — at the same protocol points the columnar
            engine mirrors.
    """

    def __init__(self, config: SimulationConfig, obs=None):
        self.config = config
        self.observer = obs
        self.group = self._build_group()
        if obs is not None:
            self.group.observer = obs
            for cache_index, cache in enumerate(self.group.caches):
                cache.eviction_observer = obs.eviction_hook(cache_index)
        self.metrics = GroupMetrics()
        self.outcomes: List[RequestOutcome] = []
        #: Streaming latency distribution (when collect_histogram is set).
        self.histogram = LatencyHistogram() if config.collect_histogram else None
        #: Windowed metrics (when timeseries_window > 0).
        self.timeseries = (
            TimeSeriesCollector(config.timeseries_window)
            if config.timeseries_window > 0
            else None
        )
        #: Runtime invariant sanitizer (when config.sanitize is set).
        self.sanitizer = None
        if config.sanitize:
            from repro.devtools.sanitizer import SimulationSanitizer

            self.sanitizer = SimulationSanitizer(self.group)
        self._processed = 0
        self._total_caches = len(self.group.caches)
        # Client requests land on leaves only; for the distributed
        # architecture every cache is a leaf.
        self._leaves = self.group.topology.leaves()
        self._partitioner = _make_partitioner(config.partitioner, len(self._leaves))

    def _build_group(self) -> CooperativeGroup:
        config = self.config
        scheme_kwargs = {}
        if config.scheme == "ea":
            scheme_kwargs["tie_break"] = config.tie_break
            if config.max_replica_fraction is not None:
                scheme_kwargs["max_replica_fraction"] = config.max_replica_fraction
        scheme = make_scheme(config.scheme, **scheme_kwargs)
        if config.architecture == "distributed":
            caches = build_caches(
                config.num_caches,
                config.aggregate_capacity,
                policy_name=config.policy,
                window_mode=config.window_mode,
                window_size=config.window_size,
                window_seconds=config.window_seconds,
            )
            return DistributedGroup(
                caches,
                scheme,
                latency_model=_make_latency_model(config),
                bus=MessageBus(),
                responder_strategy=config.responder_strategy,
                seed=config.seed,
                icp_loss_rate=config.icp_loss_rate,
            )
        topology = two_level_tree(config.num_caches, config.num_parents)
        caches = build_caches(
            topology.num_caches,
            config.aggregate_capacity,
            policy_name=config.policy,
            window_mode=config.window_mode,
            window_size=config.window_size,
            window_seconds=config.window_seconds,
        )
        return HierarchicalGroup(
            caches,
            scheme,
            topology,
            latency_model=_make_latency_model(config),
            bus=MessageBus(),
            responder_strategy=config.responder_strategy,
            seed=config.seed,
            icp_loss_rate=config.icp_loss_rate,
        )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def run(self, trace: Trace) -> SimulationResult:
        """Replay ``trace`` and return the assembled result.

        Plain-loop mode streams records straight from the patching iterator,
        so memory stays flat regardless of trace length (the engine mode
        must still materialise: it builds its event queue up front).
        """
        records = patch_zero_sizes(iter(trace), self.config.patch_size)
        if self.config.use_engine:
            self._run_engine(list(records))
        else:
            self._run_loop(records)
        return self.result()

    def _process(self, leaf_position: int, record) -> None:
        obs = self.observer
        if obs is not None:
            obs.maybe_snapshot(record.timestamp, self._snapshot_rows)
        index = self._leaves[leaf_position]
        outcome = self.group.process(index, record)
        if self.sanitizer is not None:
            self.sanitizer.observe(outcome)
        self._processed += 1
        if self._processed > self.config.warmup_requests:
            self.metrics.observe(outcome)
            if self.histogram is not None:
                self.histogram.observe(outcome.latency)
            if self.timeseries is not None:
                self.timeseries.observe(outcome)
        if obs is not None:
            obs.request(
                outcome.timestamp,
                outcome.requester,
                outcome.url,
                outcome.kind.value,
                outcome.size,
                outcome.responder,
                outcome.stored_at_requester,
                outcome.responder_refreshed,
                outcome.hops,
            )
        if self.config.keep_outcomes:
            self.outcomes.append(outcome)

    def _snapshot_rows(self, due: float):
        """Per-cache gauge rows for one obs snapshot tick at time ``due``."""
        rows = []
        for cache in self.group.caches:
            stats = cache.stats
            rows.append(
                (
                    cache.expiration_age(due),
                    cache.used_bytes,
                    len(cache),
                    stats.lookups,
                    stats.local_hits,
                    stats.remote_hits_served,
                    stats.evictions,
                )
            )
        return rows

    def _run_loop(self, records) -> None:
        for leaf_position, record in self._partitioner.split(records):
            self._process(leaf_position, record)

    def _run_engine(self, records) -> None:
        start = records[0].timestamp if records else 0.0
        scheduler = EventScheduler(
            start_time=min(0.0, start), sanitize=self.config.sanitize
        )
        for leaf_position, record in self._partitioner.split(records):
            scheduler.schedule(
                record.timestamp,
                # bind loop variables eagerly
                lambda pos=leaf_position, rec=record: self._process(pos, rec),
            )
        scheduler.run()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> SimulationResult:
        """Snapshot the current state as a :class:`SimulationResult`."""
        ages = self.group.expiration_ages()
        return SimulationResult(
            config=self.config.to_dict(),
            metrics=self.metrics,
            message_counters=self.group.bus.counters,
            cache_stats=[cache.stats for cache in self.group.caches],
            expiration_ages=ages,
            avg_cache_expiration_age=average_cache_expiration_age(ages),
            unique_documents=self.group.unique_documents(),
            total_copies=self.group.total_copies(),
            replication_factor=self.group.replication_factor(),
            estimated_latency=self.metrics.estimated_latency(),
        )


def resolved_engine(config: SimulationConfig) -> str:
    """The engine that will actually run ``config`` (fallback applied).

    ``"columnar"`` only when requested *and* supported; the run manifest
    records this next to the requested engine so fallback is observable.
    """
    if config.engine in ("columnar", "batch"):
        from repro.fastpath import columnar_unsupported_reason

        if columnar_unsupported_reason(config) is None:
            return config.engine
    return "object"


def run_simulation(
    config: SimulationConfig,
    trace: Trace,
    obs=None,
    chunk_size: Optional[int] = None,
    regimes: Optional[dict] = None,
    spans=None,
    timeseries=None,
) -> SimulationResult:
    """One-shot convenience: replay ``trace`` under ``config``.

    Dispatches on ``config.engine``: the columnar fast path
    (:mod:`repro.fastpath`) when selected and supported — results are
    byte-identical to the object core — otherwise the object engine. An
    unsupported columnar request falls back transparently, logging the
    reason on the ``repro.fastpath`` logger.

    ``trace`` may also be a *streamed source* (any object exposing
    ``interned_chunks(chunk_size)``; see :mod:`repro.trace.stream`) —
    packed columnar readers, synthetic streams — in which case the replay
    holds O(chunk) request memory. Streamed sources require a chunked
    engine; a config that would fall back to the object engine raises
    :class:`~repro.errors.SimulationError` instead of silently
    materialising an unbounded stream.

    Args:
        obs: Optional :class:`repro.obs.events.RunRecorder`; both engines
            feed it the same event stream (see ``docs/OBSERVABILITY.md``).
        chunk_size: Interned-chunk granularity for the chunked engines;
            results are chunking-invariant, so this shapes memory only.
        regimes: Optional dict; with ``engine="batch"`` it receives the
            per-regime request counts (``cold`` / ``hit_run`` /
            ``scalar``, or ``fallback_reason``) after the run — see
            :func:`repro.fastpath.batch.simulate_batch`. Ignored by the
            other engines.
        spans: Optional :class:`repro.obs.spans.SpanTracer`, threaded
            through the chunked engines (source pulls, chunk replay,
            batch regime segments); the object engine records one
            ``engine:object`` span. Out of band like ``obs``: results
            and event bytes are identical with or without it.
        timeseries: Optional
            :class:`repro.obs.timeseries.TimeseriesRecorder` fed one
            per-chunk sample by the chunked engines (the object engine
            has no chunk boundary and ignores it).
    """
    streamed = not isinstance(trace, Trace) and hasattr(trace, "interned_chunks")
    if config.engine in ("columnar", "batch"):
        from repro.fastpath import (
            columnar_unsupported_reason,
            simulate_batch,
            simulate_columnar,
        )

        reason = columnar_unsupported_reason(config)
        if reason is None:
            if config.engine == "batch":
                return simulate_batch(
                    config, trace, obs=obs, chunk_size=chunk_size,
                    regimes=regimes, spans=spans, timeseries=timeseries,
                )
            return simulate_columnar(
                config, trace, obs=obs, chunk_size=chunk_size,
                spans=spans, timeseries=timeseries,
            )
        if streamed:
            raise SimulationError(
                f"streamed trace sources require a chunked engine, but the "
                f"{config.engine!r} engine is unavailable for this config "
                f"({reason}); the object-engine fallback would materialise "
                f"the whole stream"
            )
        _fastpath_logger.info(
            "%s engine unavailable for this config; "
            "falling back to the object engine: %s",
            config.engine,
            reason,
        )
    elif streamed:
        raise SimulationError(
            "streamed trace sources require a chunked engine "
            "(engine='columnar' or 'batch'); the object engine replays "
            "materialised Trace objects only"
        )
    simulator = CooperativeSimulator(config, obs=obs)
    if spans is not None:
        spans.begin("engine:object", "engine")
        try:
            return simulator.run(trace)
        finally:
            spans.end()
    return simulator.run(trace)
