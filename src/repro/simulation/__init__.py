"""Simulation layer: event engine, trace-driven simulator, metrics, results."""

from repro.simulation.engine import EventHandle, EventScheduler
from repro.simulation.export import (
    CSV_FIELDS,
    read_outcomes_csv,
    write_outcomes_csv,
    write_outcomes_jsonl,
)
from repro.simulation.latencystats import LatencyHistogram
from repro.simulation.replay import replay_trace
from repro.simulation.timeseries import TimeSeriesCollector, WindowPoint
from repro.simulation.metrics import (
    GroupMetrics,
    PlacementDecisionSummary,
    average_cache_expiration_age,
    estimate_average_latency,
    summarize_placement_decisions,
)
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import (
    ARCHITECTURES,
    LATENCY_MODELS,
    PARTITIONERS,
    CooperativeSimulator,
    SimulationConfig,
    run_simulation,
)

__all__ = [
    "ARCHITECTURES",
    "CSV_FIELDS",
    "CooperativeSimulator",
    "EventHandle",
    "EventScheduler",
    "GroupMetrics",
    "LATENCY_MODELS",
    "LatencyHistogram",
    "PARTITIONERS",
    "PlacementDecisionSummary",
    "SimulationConfig",
    "SimulationResult",
    "TimeSeriesCollector",
    "WindowPoint",
    "average_cache_expiration_age",
    "estimate_average_latency",
    "read_outcomes_csv",
    "replay_trace",
    "run_simulation",
    "summarize_placement_decisions",
    "write_outcomes_csv",
    "write_outcomes_jsonl",
]
