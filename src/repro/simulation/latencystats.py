"""Streaming latency distribution: log-bucketed histogram with percentiles.

Mean latency (what the paper estimates with Eq. 6) hides the tail that
users actually feel: a 10 % miss rate with 2.8 s misses produces a brutal
p99 behind a pleasant mean. :class:`LatencyHistogram` accumulates
per-request latencies into geometric buckets (constant relative error) in
O(1) per observation and answers percentile queries without storing the
samples.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import SimulationError


class LatencyHistogram:
    """Log-spaced latency histogram.

    Args:
        min_latency: Lower edge of the first bucket (latencies below land
            in it); must be positive.
        max_latency: Upper edge of the last bucket (latencies above land in
            an overflow bucket).
        buckets_per_decade: Resolution; 20 gives ~12 % relative bucket
            width, plenty for p50/p95/p99 reporting.
    """

    def __init__(
        self,
        min_latency: float = 1e-3,
        max_latency: float = 100.0,
        buckets_per_decade: int = 20,
    ):
        if min_latency <= 0 or max_latency <= min_latency:
            raise SimulationError("require 0 < min_latency < max_latency")
        if buckets_per_decade <= 0:
            raise SimulationError("buckets_per_decade must be positive")
        self.min_latency = min_latency
        self.max_latency = max_latency
        self._log_min = math.log10(min_latency)
        self._per_decade = buckets_per_decade
        decades = math.log10(max_latency) - self._log_min
        self._num_buckets = int(math.ceil(decades * buckets_per_decade)) + 1
        self._counts: List[int] = [0] * (self._num_buckets + 1)  # + overflow
        self._total = 0
        self._sum = 0.0
        self._max_seen = 0.0

    def observe(self, latency: float) -> None:
        """Fold one latency (seconds) into the histogram."""
        if latency < 0:
            raise SimulationError("latency cannot be negative")
        self._total += 1
        self._sum += latency
        self._max_seen = max(self._max_seen, latency)
        self._counts[self._bucket_of(latency)] += 1

    def _bucket_of(self, latency: float) -> int:
        if latency <= self.min_latency:
            return 0
        if latency >= self.max_latency:
            return self._num_buckets  # overflow
        index = int((math.log10(latency) - self._log_min) * self._per_decade)
        return min(index, self._num_buckets - 1)

    def _bucket_upper_edge(self, index: int) -> float:
        if index >= self._num_buckets:
            return self._max_seen
        return 10.0 ** (self._log_min + (index + 1) / self._per_decade)

    @property
    def count(self) -> int:
        """Observations so far."""
        return self._total

    @property
    def mean(self) -> float:
        """Exact mean (tracked outside the buckets)."""
        return self._sum / self._total if self._total else 0.0

    def percentile(self, p: float) -> float:
        """Upper edge of the bucket containing the ``p``-th percentile.

        Args:
            p: Percentile in (0, 100].
        """
        if not 0.0 < p <= 100.0:
            raise SimulationError("percentile must be in (0, 100]")
        if self._total == 0:
            return 0.0
        target = math.ceil(p / 100.0 * self._total)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                return self._bucket_upper_edge(index)
        return self._max_seen

    def summary(self, percentiles: Sequence[float] = (50.0, 90.0, 99.0)) -> str:
        """One-line distribution summary in milliseconds."""
        parts = [f"n={self._total}", f"mean={self.mean * 1000:.0f}ms"]
        parts.extend(
            f"p{int(p)}={self.percentile(p) * 1000:.0f}ms" for p in percentiles
        )
        return " ".join(parts)
