"""Command-line interface.

The subcommands cover the library's workflows::

    repro generate-trace --scale default --out trace.bu
    repro simulate --scheme ea --caches 4 --capacity 10MB --trace trace.bu
    repro simulate --sanitize          # same, with runtime invariant checks
    repro simulate --engine columnar   # columnar fast path (byte-identical)
    repro simulate --events run.jsonl --snapshot-interval 600
    repro experiment fig1 --scale tiny
    repro experiment fig1 --jobs 4 --memo .repro-memo
    repro sweep --scale tiny --jobs 4  # raw {scheme} x {capacity} grid
    repro sweep --jobs 4 --progress --events events/
    repro obs summarize run.jsonl      # roll up a repro-events/1 stream
    repro obs diff a.jsonl b.jsonl     # first divergence between streams
    repro profile --scale tiny         # cProfile the request hot path
    repro lint src tests               # repro-specific per-file lint rules
    repro analyze                      # whole-program engine-parity /
                                       # determinism / config-flow analysis
    repro analyze trace --scale tiny   # characterise a workload trace

``repro experiment all`` regenerates every paper artifact in sequence and
prints the rendered tables (this is what EXPERIMENTS.md quotes). ``--jobs``
fans sweep points over a process pool and ``--memo DIR`` reuses previously
simulated points across drivers and invocations (see docs/PERFORMANCE.md).
``repro lint`` runs the AST-based rule set documented in
``docs/DEVTOOLS.md`` and exits non-zero when findings remain, which is how
CI gates every PR. ``repro analyze`` is its whole-program sibling
(``docs/ANALYSIS.md``): it diffs what each engine actually reads against
the declared fallback matrix, audits the simulation-reachable call graph
for nondeterminism, and checks config/memo-key plumbing; both emit the
same ``repro-findings/1`` JSON with ``--json``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS
from repro.experiments.workload import WORKLOAD_SCALES, workload_config, workload_trace
from repro.simulation.simulator import (
    ARCHITECTURES,
    ENGINES,
    PARTITIONERS,
    SimulationConfig,
    run_simulation,
)
from repro.trace.readers import read_trace
from repro.trace.synthetic import generate_trace
from repro.trace.writers import write_bu_trace

_SIZE_SUFFIXES = {"kb": 1024, "mb": 1024 ** 2, "gb": 1024 ** 3, "b": 1}


def parse_size(text: str) -> int:
    """Parse '100KB' / '10MB' / '1GB' / plain byte counts."""
    lowered = text.strip().lower()
    for suffix, multiplier in sorted(_SIZE_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if lowered.endswith(suffix):
            number = lowered[: -len(suffix)].strip()
            return int(float(number) * multiplier)
    return int(lowered)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EA-scheme cooperative web caching simulator (ICDCS 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace", help="write a synthetic BU-like trace")
    gen.add_argument("--scale", choices=WORKLOAD_SCALES, default="default")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help="output path (BU condensed format)")

    pack = sub.add_parser(
        "pack-trace",
        help="pack a trace into the RPCT packed columnar format",
        description=(
            "Write a .rpct packed columnar trace — the interned chunk "
            "sequence, mmap-readable with O(chunk) memory. Packing streams: "
            "a synthetic workload is generated chunk by chunk, never "
            "materialised, so --requests can exceed RAM. Replaying the "
            "packed file (--trace FILE.rpct on simulate/sweep/profile with "
            "a chunked --engine) is byte-identical to replaying the "
            "original trace."
        ),
    )
    pack.add_argument("--trace", help="input trace file; synthetic stream if omitted")
    pack.add_argument("--trace-format", default="bu", choices=("bu", "squid", "clf"))
    pack.add_argument("--scale", choices=WORKLOAD_SCALES, default="default",
                      help="synthetic workload scale when --trace is omitted")
    pack.add_argument("--seed", type=int, default=42)
    pack.add_argument("--requests", type=int, metavar="N",
                      help="override the synthetic request count (generation "
                      "is streamed, so N is not bounded by memory)")
    pack.add_argument("--out", required=True, help="output path (.rpct)")
    pack.add_argument("--chunk-size", type=int, metavar="N",
                      help="records per stored chunk (default 262144); shapes "
                      "reader memory only, never results")

    sim = sub.add_parser("simulate", help="run one simulation and print the result")
    sim.add_argument("--scheme", choices=("adhoc", "ea"), default="ea")
    sim.add_argument("--caches", type=int, default=4)
    sim.add_argument("--capacity", default="10MB", help="aggregate size, e.g. 100KB / 10MB")
    sim.add_argument("--policy", default="lru")
    sim.add_argument("--architecture", choices=ARCHITECTURES, default="distributed")
    sim.add_argument("--partitioner", choices=PARTITIONERS, default="hash")
    sim.add_argument("--trace", help="trace file (BU format); synthetic if omitted")
    sim.add_argument("--trace-format", default="bu",
                     choices=("bu", "squid", "clf", "packed"),
                     help="input format; 'packed' (auto-detected from a "
                     ".rpct suffix) streams the file with O(chunk) memory "
                     "and needs a chunked --engine")
    sim.add_argument("--chunk-size", type=int, metavar="N",
                     help="interned-chunk granularity for the chunked "
                     "engines; results are chunking-invariant, so this "
                     "shapes memory only")
    sim.add_argument("--scale", choices=WORKLOAD_SCALES, default="default",
                     help="synthetic workload scale when --trace is omitted")
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument("--engine", choices=ENGINES, default="object",
                     help="execution engine; 'columnar' is a byte-identical "
                     "fast path (falls back with a logged reason if the "
                     "config needs an object-engine feature)")
    sim.add_argument("--json", action="store_true", help="emit the full result as JSON")
    sim.add_argument(
        "--sanitize",
        action="store_true",
        help="check runtime invariants (byte accounting, recency order, EA "
        "one-fresh-lease, event order) after every operation; exit 3 on any "
        "violation",
    )
    sim.add_argument("--events", metavar="FILE",
                     help="write a repro-events/1 JSONL stream of the run; a "
                     "run manifest lands next to it as FILE.manifest.json")
    sim.add_argument("--snapshot-interval", type=float, default=0.0,
                     metavar="SECONDS",
                     help="simulation-seconds between per-cache snapshot "
                     "events in the stream (0 = no snapshots)")
    sim.add_argument("--trace-out", metavar="FILE",
                     help="write a Chrome Trace Event Format span timeline "
                     "of the run (repro-trace-events/1) — load it in "
                     "Perfetto or render with 'repro obs timeline'")
    sim.add_argument("--timeseries", metavar="FILE",
                     help="write a repro-timeseries/1 stream of per-chunk "
                     "samples (req/s, hit ratios, EA placements, regime "
                     "occupancy); render with 'repro obs report'")
    sim.add_argument("--track-memory", action="store_true",
                     help="record the run's tracemalloc high-water mark "
                     "(peak_memory_bytes in the manifest, mem_hwm in "
                     "--timeseries samples)")

    exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    exp.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    exp.add_argument("--scale", choices=WORKLOAD_SCALES, default="default")
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument("--json", action="store_true", help="emit the report as JSON")
    exp.add_argument("--save-json", metavar="DIR",
                     help="also persist the report(s) into an ExperimentStore directory")
    exp.add_argument("--jobs", type=int, metavar="N",
                     help="fan sweep points over N worker processes "
                     "(default: serial; 0 = one per CPU)")
    exp.add_argument("--memo", metavar="DIR",
                     help="content-addressed result cache; sweep points already "
                     "simulated for this config+trace are reused")
    exp.add_argument("--engine", choices=ENGINES,
                     help="execution engine for sweep-backed drivers "
                     "(default: object); results are byte-identical")
    exp.add_argument("--events", metavar="DIR",
                     help="write repro-events/1 streams for every freshly "
                     "simulated sweep point under DIR/<experiment>/")
    exp.add_argument("--snapshot-interval", type=float, default=0.0,
                     metavar="SECONDS",
                     help="simulation-seconds between snapshot events in "
                     "those streams (0 = no snapshots)")
    exp.add_argument("--progress", action="store_true",
                     help="print one line per completed sweep point")

    swp = sub.add_parser(
        "sweep", help="run a raw {scheme} x {capacity} sweep, optionally in parallel"
    )
    swp.add_argument("--scale", choices=WORKLOAD_SCALES, default="default")
    swp.add_argument("--seed", type=int, default=42)
    swp.add_argument("--trace", help="trace file; synthetic if omitted")
    swp.add_argument("--trace-format", default="bu",
                     choices=("bu", "squid", "clf", "packed"),
                     help="input format; 'packed' (auto-detected from a "
                     ".rpct suffix) streams the file with O(chunk) memory "
                     "and needs a chunked --engine")
    swp.add_argument("--caches", type=int, default=4)
    swp.add_argument("--policy", default="lru")
    swp.add_argument("--architecture", choices=ARCHITECTURES, default="distributed")
    swp.add_argument("--schemes", default="adhoc,ea",
                     help="comma-separated placement schemes (default: adhoc,ea)")
    swp.add_argument("--capacity", action="append", metavar="SIZE", dest="capacities",
                     help="aggregate capacity, e.g. 10MB; repeatable "
                     "(default: the paper grid for --scale)")
    swp.add_argument("--jobs", type=int, metavar="N",
                     help="worker processes (default: one per CPU; 1 = serial)")
    swp.add_argument("--memo", metavar="DIR",
                     help="content-addressed result cache directory")
    swp.add_argument("--engine", choices=ENGINES, default="object",
                     help="execution engine for every sweep point; results "
                     "are byte-identical either way")
    swp.add_argument("--json", action="store_true", help="emit all points as JSON")
    swp.add_argument("--events", metavar="DIR",
                     help="write repro-events/1 streams for every freshly "
                     "simulated point into DIR")
    swp.add_argument("--snapshot-interval", type=float, default=0.0,
                     metavar="SECONDS",
                     help="simulation-seconds between snapshot events in "
                     "those streams (0 = no snapshots)")
    swp.add_argument("--progress", action="store_true",
                     help="print one line per completed point plus a "
                     "per-worker telemetry summary")
    swp.add_argument("--trace-out", metavar="FILE",
                     help="span-trace every freshly simulated point and "
                     "write the merged Chrome Trace Event Format timeline "
                     "(one lane per point; Perfetto-loadable)")
    swp.add_argument("--track-memory", action="store_true",
                     help="record each worker's tracemalloc high-water "
                     "mark per point (reported in the telemetry summary)")

    obs = sub.add_parser(
        "obs", help="inspect observability files (events, span traces, "
        "timeseries): tail / summarize / diff / validate / timeline / report"
    )
    obs.add_argument("action", choices=("tail", "summarize", "diff", "validate",
                                        "timeline", "report"))
    obs.add_argument("paths", nargs="+", metavar="FILE",
                     help="input file(s); 'diff' takes exactly two; "
                     "'timeline' reads --trace-out JSON, 'report' reads "
                     "--timeseries streams, 'validate' auto-detects "
                     "events vs span-trace files")
    obs.add_argument("-n", "--count", type=int, default=10, metavar="N",
                     help="[tail] number of trailing events to print")
    obs.add_argument("--json", action="store_true",
                     help="[summarize] emit the roll-up as JSON")

    prof = sub.add_parser(
        "profile", help="cProfile one simulation and print the hottest functions"
    )
    prof.add_argument("--scheme", choices=("adhoc", "ea"), default="ea")
    prof.add_argument("--caches", type=int, default=4)
    prof.add_argument("--capacity", default="10MB")
    prof.add_argument("--policy", default="lru")
    prof.add_argument("--architecture", choices=ARCHITECTURES, default="distributed")
    prof.add_argument("--partitioner", choices=PARTITIONERS, default="hash")
    prof.add_argument("--trace", help="trace file; synthetic if omitted")
    prof.add_argument("--trace-format", default="bu",
                      choices=("bu", "squid", "clf", "packed"))
    prof.add_argument("--scale", choices=WORKLOAD_SCALES, default="default")
    prof.add_argument("--seed", type=int, default=42)
    prof.add_argument("--engine", choices=ENGINES, default="object",
                     help="execution engine to profile")
    prof.add_argument("--sort", choices=("cumulative", "tottime"), default="cumulative",
                      help="stat ordering for the report")
    prof.add_argument("--top", type=int, default=25, metavar="N",
                      help="number of functions to print")

    ana = sub.add_parser(
        "analyze",
        help="whole-program static analysis (or trace characterisation)",
        description=(
            "Run the whole-program analyzers over the source tree: 'parity' "
            "(engine drift vs the fallback matrix, RPR101-103), 'determinism' "
            "(simulation-reachable nondeterminism, RPR111-115), 'configflow' "
            "(dead/one-sided config fields and memo-key coverage, RPR121-123), "
            "'effects' (effect-contract drift, RPR137), 'concurrency' "
            "(fork/IO/blocking safety, RPR131-136) — or 'trace' to "
            "characterise a workload trace instead."
        ),
    )
    ana.add_argument(
        "target",
        nargs="*",
        default=None,
        metavar="TARGET",
        help="analyzers to run, space-separated: all, parity, determinism, "
        "configflow, effects, concurrency, domains, or trace (default: all "
        "static analyzers); 'trace' must be the only target",
    )
    ana.add_argument("--root", default="src",
                     help="directory containing the repro package (default: src)")
    ana.add_argument("--json", action="store_true",
                     help="emit findings in the shared repro-findings/1 schema")
    ana.add_argument("--baseline", metavar="FILE",
                     default="analysis-baseline.json",
                     help="checked-in accepted-findings file "
                     "(default: analysis-baseline.json; missing file = empty)")
    ana.add_argument("--write-baseline", action="store_true",
                     help="rewrite the baseline file from the current findings "
                     "and exit 0; edit each entry's 'why' afterwards")
    ana.add_argument("--fail-on", choices=("note", "warn", "error"),
                     default="note", metavar="SEVERITY",
                     help="minimum finding severity that fails the run "
                     "(note/warn/error; default: note = any finding)")
    ana.add_argument("--effects-out", metavar="FILE",
                     help="also write the repro-effects/1 per-function "
                     "effect inventory to FILE")
    ana.add_argument("--domains-out", metavar="FILE",
                     help="also write the repro-domains/1 per-function "
                     "index-domain inventory to FILE")
    ana.add_argument("--trace", help="[trace] trace file; synthetic if omitted")
    ana.add_argument("--trace-format", default="bu", choices=("bu", "squid", "clf"),
                     help="[trace] input format")
    ana.add_argument("--scale", choices=WORKLOAD_SCALES, default="default",
                     help="[trace] synthetic workload scale")
    ana.add_argument("--seed", type=int, default=42, help="[trace] synthetic seed")

    cmp_parser = sub.add_parser(
        "compare", help="run ad-hoc and EA side by side at one capacity"
    )
    cmp_parser.add_argument("--caches", type=int, default=4)
    cmp_parser.add_argument("--capacity", default="1MB")
    cmp_parser.add_argument("--policy", default="lru")
    cmp_parser.add_argument("--scale", choices=WORKLOAD_SCALES, default="default")
    cmp_parser.add_argument("--seed", type=int, default=42)
    cmp_parser.add_argument("--trace", help="trace file; synthetic if omitted")
    cmp_parser.add_argument("--trace-format", default="bu", choices=("bu", "squid", "clf"))

    lint = sub.add_parser(
        "lint", help="run the repro-specific static analysis pass"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings in the shared repro-findings/1 schema",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings file (repro-analysis-baseline/1 schema); "
        "matching findings are absorbed, stale entries fail the run",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0; "
        "edit each entry's 'why' afterwards",
    )
    lint.add_argument(
        "--fail-on",
        choices=("note", "warn", "error"),
        default="note",
        metavar="SEVERITY",
        help="minimum finding severity that fails the run "
        "(note/warn/error; default: note = any finding)",
    )

    chk = sub.add_parser(
        "check",
        help="lint + every analyzer off one parse (the CI gate)",
        description=(
            "Build the ProjectModel once, lint its parsed modules, run all "
            "whole-program analyzers against the same model, and apply one "
            "noqa/baseline/severity filter to the merged findings."
        ),
    )
    chk.add_argument("--root", default="src",
                     help="directory containing the repro package (default: src)")
    chk.add_argument("paths", nargs="*", default=["tests"],
                     help="extra files/directories to lint from disk "
                     "(default: tests)")
    chk.add_argument("--json", action="store_true",
                     help="emit findings in the shared repro-findings/1 schema")
    chk.add_argument("--baseline", metavar="FILE",
                     default="analysis-baseline.json",
                     help="accepted-findings file applied to the merged "
                     "lint+analysis findings (default: analysis-baseline.json)")
    chk.add_argument("--fail-on", choices=("note", "warn", "error"),
                     default="note", metavar="SEVERITY",
                     help="minimum finding severity that fails the run "
                     "(note/warn/error; default: note = any finding)")
    return parser


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    trace = generate_trace(workload_config(args.scale, args.seed))
    count = write_bu_trace(iter(trace), args.out)
    print(f"wrote {count} records ({trace.unique_urls} unique documents) to {args.out}")
    return 0


def _cmd_pack_trace(args: argparse.Namespace) -> int:
    from repro.trace.columnar_io import write_packed

    if args.trace:
        source = read_trace(args.trace, fmt=args.trace_format)
    else:
        from dataclasses import replace

        from repro.trace.stream import SyntheticTraceStream

        cfg = workload_config(args.scale, args.seed)
        if args.requests is not None:
            cfg = replace(cfg, num_requests=args.requests)
        source = SyntheticTraceStream(cfg)
    records, docs, clients = write_packed(args.out, source, chunk_size=args.chunk_size)
    size = os.path.getsize(args.out)
    print(
        f"packed {records} records ({docs} documents, {clients} clients) "
        f"into {args.out} ({size} bytes)"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation.simulator import CooperativeSimulator

    trace = _load_or_generate(args)
    config = SimulationConfig(
        scheme=args.scheme,
        num_caches=args.caches,
        aggregate_capacity=parse_size(args.capacity),
        policy=args.policy,
        architecture=args.architecture,
        partitioner=args.partitioner,
        seed=args.seed,
        sanitize=args.sanitize,
        engine=args.engine,
    )
    observed = None
    spans = None
    if args.trace_out:
        from repro.obs.spans import SpanTracer

        spans = SpanTracer()
    if (args.events or args.snapshot_interval > 0.0 or args.trace_out
            or args.timeseries or args.track_memory):
        from repro.obs.session import ObservedRun

        observed = ObservedRun(
            config,
            trace,
            events_path=args.events,
            snapshot_interval=args.snapshot_interval,
            track_memory=args.track_memory,
            spans=spans,
            timeseries_path=args.timeseries,
        )
    recorder = observed.recorder if observed is not None else None
    timeseries = observed.timeseries if observed is not None else None
    sanitizer = None
    if args.sanitize:
        # Sanitizing needs the simulator instance for the report (and forces
        # the object engine anyway — the dispatcher would fall back).
        if not hasattr(trace, "records"):
            raise ReproError(
                "--sanitize runs the object engine, which replays "
                "materialised traces only (not packed/streamed sources)"
            )
        simulator = CooperativeSimulator(config, obs=recorder)
        result = simulator.run(trace)
        sanitizer = simulator.sanitizer
    else:
        result = run_simulation(
            config, trace, obs=recorder, chunk_size=args.chunk_size,
            spans=spans, timeseries=timeseries,
        )
    if observed is not None:
        result = observed.finish(result)
    if args.json:
        print(result.to_json())
    else:
        print(result.summary())
    if observed is not None and args.events:
        from repro.obs.manifest import write_manifest

        manifest_path = args.events + ".manifest.json"
        write_manifest(result.manifest, manifest_path)
        total = sum(result.manifest["events"]["counts"].values())
        print(f"events: {total} event(s) -> {args.events}")
        print(f"manifest: {manifest_path}")
    if args.trace_out:
        spans.write(args.trace_out)
        print(f"trace: {args.trace_out} (render with 'repro obs timeline')")
    if args.timeseries:
        print(f"timeseries: {args.timeseries} (render with 'repro obs report')")
    if args.track_memory and result.manifest is not None:
        peak = result.manifest.get("peak_memory_bytes")
        if peak is not None:
            print(f"peak memory: {peak:,} bytes (tracemalloc)")
    if sanitizer is not None:
        print(sanitizer.summary())
        if not sanitizer.ok:
            return 3
    return 0


def _print_progress(progress) -> None:
    """Live per-point progress line for --progress runs."""
    print(progress.render(), flush=True)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.store import ExperimentStore
    from repro.parallel import SweepMemoStore, default_jobs

    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    store = ExperimentStore(args.save_json) if args.save_json else None
    memo = SweepMemoStore(args.memo) if args.memo else None
    jobs = None
    if args.jobs is not None:
        jobs = args.jobs if args.jobs > 0 else default_jobs()
    for name in names:
        driver = EXPERIMENTS[name]
        kwargs = {"scale": args.scale, "seed": args.seed}
        # Only the sweep-backed drivers take jobs/memo (and the obs knobs);
        # ablation and extension drivers run serially regardless.
        accepted = inspect.signature(driver).parameters
        if "jobs" in accepted and jobs is not None:
            kwargs["jobs"] = jobs
        if "memo" in accepted and memo is not None:
            kwargs["memo"] = memo
        if "engine" in accepted and args.engine is not None:
            kwargs["engine"] = args.engine
        if "events_dir" in accepted and args.events:
            # Per-driver subdirectory: 'experiment all' shares one --events
            # root without the drivers' point files colliding.
            kwargs["events_dir"] = os.path.join(args.events, name)
        if "snapshot_interval" in accepted and args.snapshot_interval > 0.0:
            kwargs["snapshot_interval"] = args.snapshot_interval
        if "progress" in accepted and args.progress:
            kwargs["progress"] = _print_progress
        report = driver(**kwargs)
        if store is not None:
            store.save(report)
        if args.json:
            print(report.to_json())
        else:
            print(report.render())
            print()
    if memo is not None:
        print(f"memo: {memo.hits} hit(s), {memo.misses} miss(es) in {memo.root}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.experiments.sweep import run_capacity_sweep
    from repro.experiments.workload import capacities_for
    from repro.parallel import SweepMemoStore, default_jobs

    trace = _load_or_generate(args)
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    if args.capacities:
        capacities = [(text, parse_size(text)) for text in args.capacities]
    else:
        capacities = capacities_for(args.scale)
    base_config = SimulationConfig(
        num_caches=args.caches,
        policy=args.policy,
        architecture=args.architecture,
        seed=args.seed,
    )
    jobs = args.jobs if args.jobs is not None else default_jobs()
    memo = SweepMemoStore(args.memo) if args.memo else None
    if args.progress:
        # Totals via source_num_records: a streamed source (packed file,
        # synthetic stream) has no records list to len() — the count comes
        # from its declared total (the packed footer) instead.
        from repro.trace.stream import source_num_records

        total = source_num_records(trace)
        requests = f"{total} requests" if total is not None else "unknown length"
        print(
            f"sweep: {len(capacities) * len(schemes)} point(s) x "
            f"{requests} per point",
            flush=True,
        )
    spans = None
    if args.trace_out:
        from repro.obs.spans import SpanTracer

        spans = SpanTracer()
    sweep = run_capacity_sweep(
        trace, capacities, schemes=schemes, base_config=base_config,
        jobs=jobs, memo=memo, engine=args.engine,
        events_dir=args.events, snapshot_interval=args.snapshot_interval,
        progress=_print_progress if args.progress else None,
        track_memory=args.track_memory, spans=spans,
    )
    if args.json:
        payload = [
            {
                "scheme": p.scheme,
                "capacity_label": p.capacity_label,
                "capacity_bytes": p.capacity_bytes,
                "result": p.result.to_dict(),
            }
            for p in sweep.points
        ]
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [
                p.scheme,
                p.capacity_label,
                round(p.result.metrics.hit_rate, 4),
                round(p.result.metrics.byte_hit_rate, 4),
                round(p.result.estimated_latency * 1000.0, 1),
            ]
            for p in sweep.points
        ]
        print(
            render_table(
                ["scheme", "aggregate", "hit", "byte_hit", "latency_ms"],
                rows,
                title=(
                    f"Capacity sweep: {args.caches} caches, "
                    f"{args.architecture}, jobs={jobs}"
                ),
            )
        )
    if memo is not None:
        print(f"memo: {memo.hits} hit(s), {memo.misses} miss(es) in {memo.root}")
    if (args.progress or args.track_memory) and sweep.telemetry is not None:
        print(sweep.telemetry.summary())
    if args.events:
        print(f"events: {args.events}")
    if args.trace_out:
        spans.write(args.trace_out)
        print(f"trace: {args.trace_out} (render with 'repro obs timeline')")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats
    import time

    trace = _load_or_generate(args)
    config = SimulationConfig(
        scheme=args.scheme,
        num_caches=args.caches,
        aggregate_capacity=parse_size(args.capacity),
        policy=args.policy,
        architecture=args.architecture,
        partitioner=args.partitioner,
        seed=args.seed,
        engine=args.engine,
    )
    regimes: dict = {}
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_simulation(
        config, trace, regimes=regimes if args.engine == "batch" else None
    )
    profiler.disable()
    elapsed = time.perf_counter() - start
    requests = result.metrics.requests
    throughput = requests / elapsed if elapsed > 0 else float("inf")
    print(
        f"{requests} requests in {elapsed:.3f}s "
        f"({throughput:,.0f} req/s, profiler overhead included)"
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.engine == "batch":
        _print_batch_regimes(regimes, stats, elapsed)
    print(stream.getvalue().rstrip())
    return 0


def _print_batch_regimes(regimes: dict, stats, elapsed: float) -> None:
    """Report how the batch engine's three regimes split the run.

    Request counts come from the engine (it tallies, never clocks — see
    ``docs/ANALYSIS.md`` on determinism); wall-time shares come from the
    profiler's attribution to the engine's named frames: ``scalar_run``
    cumulative time is the scalar protocol path, the rest of
    ``warm_loop`` is the hit-run bulk scanner, and everything else
    (vectorised cold replay, precompute, post-pass) is the remainder.
    """
    if "fallback_reason" in regimes:
        print(f"batch fast loop not engaged: {regimes['fallback_reason']}")
        return
    counts = [
        ("cold", regimes.get("cold", 0)),
        ("hit-run bulk", regimes.get("hit_run", 0)),
        ("scalar", regimes.get("scalar", 0)),
    ]
    total = sum(c for _, c in counts) or 1
    print(
        "batch regime breakdown (requests): "
        + ", ".join(f"{k} {c:,} ({100.0 * c / total:.1f}%)" for k, c in counts)
    )
    warm_c = scalar_c = 0.0
    for (fname, _line, func), entry in stats.stats.items():
        if fname == "batch.py" and func == "warm_loop":
            warm_c = entry[3]
        elif fname == "batch.py" and func == "scalar_run":
            scalar_c = entry[3]
    bulk = max(warm_c - scalar_c, 0.0)
    rest = max(elapsed - warm_c, 0.0)
    wall = elapsed or 1.0
    print(
        "batch wall-time share: "
        f"hit-run bulk {bulk:.3f}s ({100.0 * bulk / wall:.1f}%), "
        f"scalar path {scalar_c:.3f}s ({100.0 * scalar_c / wall:.1f}%), "
        f"cold+precompute+post-pass {rest:.3f}s ({100.0 * rest / wall:.1f}%)"
    )


def _load_or_generate(args: argparse.Namespace):
    if args.trace:
        if args.trace_format == "packed" or args.trace.endswith(".rpct"):
            from repro.trace.columnar_io import PackedTraceReader

            return PackedTraceReader(args.trace)
        return read_trace(args.trace, fmt=args.trace_format)
    return workload_trace(args.scale, args.seed)


def _cmd_analyze(args: argparse.Namespace) -> int:
    targets = list(args.target or [])
    known = {"all", "parity", "determinism", "configflow",
             "effects", "concurrency", "domains", "trace"}
    unknown = [t for t in targets if t not in known]
    if unknown:
        print(
            f"error: unknown analyze target(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    if "trace" in targets:
        if targets != ["trace"]:
            print(
                "error: 'trace' cannot be combined with static analyzers",
                file=sys.stderr,
            )
            return 2
        return _cmd_analyze_trace(args)
    from pathlib import Path

    from repro.devtools.analysis import (
        domain_analysis,
        effect_analysis,
        filter_findings,
        run_analyzers,
        select_analyzers,
        write_baseline,
    )
    from repro.devtools.analysis.model import ProjectModel
    from repro.devtools.catalog import fails
    from repro.devtools.report import findings_payload

    selected_names = None if (not targets or "all" in targets) else targets
    selected = select_analyzers(selected_names)
    baseline_path = Path(args.baseline)
    model = ProjectModel.load(Path(args.root))
    raw = run_analyzers(model, selected)
    if args.effects_out:
        effects_path = Path(args.effects_out)
        effects_path.write_text(
            json.dumps(effect_analysis(model).report(), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"repro analyze: wrote effect inventory to {effects_path}")
    if args.domains_out:
        domains_path = Path(args.domains_out)
        domains_path.write_text(
            json.dumps(domain_analysis(model).report(), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"repro analyze: wrote domain inventory to {domains_path}")
    if args.write_baseline:
        report = filter_findings(model, raw, selected, baseline_path=None)
        entries = write_baseline(
            baseline_path, report.findings, why="accepted; edit this entry"
        )
        print(f"repro analyze: wrote {len(entries)} entrie(s) to {baseline_path}")
        return 0
    report = filter_findings(model, raw, selected, baseline_path=baseline_path)
    failed = fails(report.findings, args.fail_on) or bool(report.stale_baseline)
    if args.json:
        payload = findings_payload(
            "analyze",
            report.findings,
            extra={
                "analyzers": list(report.analyzers),
                "fail_on": args.fail_on,
                "suppressed": report.suppressed,
                "baselined": len(report.baselined),
                "stale_baseline": [
                    {"rule": e.rule, "path": e.path, "message": e.message}
                    for e in report.stale_baseline
                ],
            },
        )
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0
    for finding in report.findings:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"stale baseline entry: {entry.rule} {entry.path} — fixed or "
            f"reworded; remove it from {baseline_path}"
        )
    summary = (
        f"repro analyze [{', '.join(report.analyzers)}]: "
        f"{len(report.findings)} finding(s)"
    )
    absorbed = []
    if report.suppressed:
        absorbed.append(f"{report.suppressed} noqa-suppressed")
    if report.baselined:
        absorbed.append(f"{len(report.baselined)} baselined")
    if absorbed:
        summary += f" ({', '.join(absorbed)})"
    if report.clean:
        print(summary.replace("0 finding(s)", "clean"))
    else:
        print(summary)
    return 1 if failed else 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.trace.stats import compute_stats, fit_zipf_alpha

    trace = _load_or_generate(args)
    stats = compute_stats(trace)
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", stats.num_requests],
                ["unique documents", stats.num_unique_urls],
                ["clients", stats.num_clients],
                ["total MB requested", round(stats.total_bytes / (1 << 20), 1)],
                ["unique-content MB", round(stats.unique_bytes / (1 << 20), 1)],
                ["mean size (B)", round(stats.mean_size)],
                ["one-timer fraction", round(stats.one_timer_fraction, 4)],
                ["max hit rate (infinite cache)", round(stats.max_hit_rate, 4)],
                ["max byte hit rate", round(stats.max_byte_hit_rate, 4)],
                ["duration (h)", round(stats.duration / 3600.0, 2)],
                ["fitted Zipf alpha", round(fit_zipf_alpha(trace), 3)],
            ],
            title="Trace characterisation",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table

    trace = _load_or_generate(args)
    capacity = parse_size(args.capacity)
    rows = []
    for scheme in ("adhoc", "ea"):
        config = SimulationConfig(
            scheme=scheme,
            num_caches=args.caches,
            aggregate_capacity=capacity,
            policy=args.policy,
            seed=args.seed,
        )
        result = run_simulation(config, trace)
        rows.append(
            [
                scheme,
                round(result.metrics.hit_rate, 4),
                round(result.metrics.byte_hit_rate, 4),
                round(result.metrics.local_hit_rate, 4),
                round(result.metrics.remote_hit_rate, 4),
                round(result.estimated_latency * 1000.0, 1),
                round(result.replication_factor, 3),
            ]
        )
    print(
        render_table(
            ["scheme", "hit", "byte_hit", "local", "remote", "latency_ms", "replication"],
            rows,
            title=(
                f"Ad-hoc vs EA: {args.caches} caches, {args.capacity} aggregate, "
                f"{args.policy.upper()} replacement"
            ),
        )
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.registry import ObsError

    try:
        return _run_obs(args)
    except (ObsError, OSError) as exc:
        # Malformed inputs (missing, empty, truncated, corrupted files)
        # are a user-facing condition, not a crash: one line, exit 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _sniff_obs_file(path: str) -> str:
    """Classify an observability file by its leading bytes.

    ``"trace"`` for Chrome Trace Event Format JSON (a ``--trace-out``
    payload), ``"timeseries"`` for a ``repro-timeseries/1`` stream,
    ``"events"`` otherwise (the ``repro-events/1`` default).
    """
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(4096)
    if '"traceEvents"' in head:
        return "trace"
    if '"repro-timeseries/1"' in head:
        return "timeseries"
    return "events"


def _run_obs(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.obs.schema import validate_events_file
    from repro.obs.tools import diff_events, summarize_events, tail_events

    if args.action == "timeline":
        from repro.obs.spans import load_trace_events, render_timeline

        for path in args.paths:
            print(render_timeline(load_trace_events(path)))
        return 0

    if args.action == "report":
        from repro.obs.timeseries import read_timeseries, render_report

        for path in args.paths:
            print(render_report(read_timeseries(path)))
        return 0

    if args.action == "diff":
        if len(args.paths) != 2:
            print("error: obs diff takes exactly two event files", file=sys.stderr)
            return 2
        divergence = diff_events(args.paths[0], args.paths[1])
        if divergence is None:
            print("streams identical")
            return 0
        number, left, right = divergence
        print(f"streams diverge at line {number}:")
        print(f"  {args.paths[0]}: {left if left is not None else '<ended>'}")
        print(f"  {args.paths[1]}: {right if right is not None else '<ended>'}")
        return 1

    if args.action == "tail":
        for path in args.paths:
            if len(args.paths) > 1:
                print(f"==> {path} <==")
            for line in tail_events(path, args.count):
                print(line)
        return 0

    if args.action == "validate":
        from repro.obs.registry import ObsError
        from repro.obs.spans import load_trace_events
        from repro.obs.timeseries import read_timeseries

        failed = False
        for path in args.paths:
            kind = _sniff_obs_file(path)
            if kind == "trace":
                try:
                    payload = load_trace_events(path)
                except ObsError as exc:
                    failed = True
                    print(f"{path}: INVALID ({exc})")
                else:
                    spans = sum(
                        1 for e in payload["traceEvents"] if e.get("ph") == "X"
                    )
                    print(f"{path}: valid span trace ({spans} span(s), nested)")
                continue
            if kind == "timeseries":
                try:
                    data = read_timeseries(path)
                except ObsError as exc:
                    failed = True
                    print(f"{path}: INVALID ({exc})")
                else:
                    print(
                        f"{path}: valid timeseries "
                        f"({len(data['samples'])} sample(s))"
                    )
                continue
            errors, counts = validate_events_file(path)
            total = sum(counts.values())
            if errors:
                failed = True
                for error in errors[:20]:
                    print(f"{path}: {error}")
                if len(errors) > 20:
                    print(f"{path}: ... {len(errors) - 20} more error(s)")
                print(f"{path}: INVALID ({len(errors)} error(s), {total} event(s))")
            else:
                print(f"{path}: valid ({total} event(s))")
        return 1 if failed else 0

    for path in args.paths:
        summary = summarize_events(path)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            continue
        span = summary["time_span"]
        rows = [["events", sum(summary["events"].values())]]
        rows += [[f"  {kind}", count] for kind, count in sorted(summary["events"].items())]
        rows += [
            [f"requests: {kind}", count]
            for kind, count in summary["requests_by_kind"].items()
        ]
        rows.append(["requests stored at requester", summary["requests_stored"]])
        for role, bucket in summary["placements_by_role"].items():
            rows.append(
                [f"placements ({role})", f"{bucket['stored']}/{bucket['attempted']} stored"]
            )
        rows.append(["promotions granted", summary["promotions"]["granted"]])
        rows.append(["promotions withheld", summary["promotions"]["withheld"]])
        rows.append(["age ties (cmp=eq)", summary["age_ties"]])
        rows.append(["evicted bytes", summary["evicted_bytes"]])
        rows.append(
            ["time span", "-" if span is None else f"{span[0]:.0f}..{span[1]:.0f}"]
        )
        for name, dist in summary["distributions"].items():
            rows.append(
                [
                    f"{name} p50/p95/p99",
                    f"{dist['p50']:.0f} / {dist['p95']:.0f} / {dist['p99']:.0f}",
                ]
            )
        print(render_table(["metric", "value"], rows, title=f"Event stream: {path}"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.devtools.analysis.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.devtools.catalog import fails
    from repro.devtools.lint import all_rules, lint_paths

    if args.list_rules:
        for rule in all_rules():
            scope = "all files" if rule.packages is None else (
                "repro." + ", repro.".join(p or "<root>" for p in rule.packages)
            )
            print(f"{rule.code}  {rule.summary}  [{scope}]")
        return 0
    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    try:
        findings = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        entries = write_baseline(
            Path(args.baseline), findings, why="accepted; edit this entry"
        )
        print(f"repro lint: wrote {len(entries)} entrie(s) to {args.baseline}")
        return 0
    baselined: List = []
    stale: List = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        entries = load_baseline(baseline_path) if baseline_path.exists() else []
        findings, baselined, stale = apply_baseline(findings, entries)
    failed = fails(findings, args.fail_on) or bool(stale)
    if args.json:
        from repro.devtools.report import findings_payload

        extra = {
            "fail_on": args.fail_on,
            "baselined": len(baselined),
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "message": e.message}
                for e in stale
            ],
        }
        print(json.dumps(findings_payload("lint", findings, extra=extra),
                         indent=2))
        return 1 if failed else 0
    for finding in findings:
        print(finding.render())
    for entry in stale:
        print(
            f"stale baseline entry: {entry.rule} {entry.path} — fixed or "
            f"reworded; remove it from {args.baseline}"
        )
    summary = f"repro lint: {len(findings)} finding(s)"
    if baselined:
        summary += f" ({len(baselined)} baselined)"
    if not findings and not stale:
        print(summary.replace("0 finding(s)", "clean"))
    else:
        print(summary)
    return 1 if failed else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.devtools.catalog import fails
    from repro.devtools.check import run_check
    from repro.devtools.report import findings_payload

    baseline_path = Path(args.baseline)
    report = run_check(
        Path(args.root),
        extra_paths=args.paths,
        baseline_path=baseline_path if baseline_path.exists() else None,
    )
    failed = fails(report.findings, args.fail_on) or bool(report.stale_baseline)
    if args.json:
        payload = findings_payload(
            "check",
            report.findings,
            extra={
                "analyzers": list(report.analyzers),
                "fail_on": args.fail_on,
                "suppressed": report.suppressed,
                "baselined": len(report.baselined),
                "linted_modules": report.linted_modules,
                "linted_files": report.linted_files,
                "stale_baseline": [
                    {"rule": e.rule, "path": e.path, "message": e.message}
                    for e in report.stale_baseline
                ],
            },
        )
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0
    for finding in report.findings:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"stale baseline entry: {entry.rule} {entry.path} — fixed or "
            f"reworded; remove it from {baseline_path}"
        )
    summary = (
        f"repro check [{', '.join(report.analyzers)}]: "
        f"{len(report.findings)} finding(s) across "
        f"{report.linted_modules + report.linted_files} file(s)"
    )
    absorbed = []
    if report.suppressed:
        absorbed.append(f"{report.suppressed} noqa-suppressed")
    if report.baselined:
        absorbed.append(f"{len(report.baselined)} baselined")
    if absorbed:
        summary += f" ({', '.join(absorbed)})"
    if report.clean:
        print(summary.replace("0 finding(s)", "clean"))
    else:
        print(summary)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate-trace": _cmd_generate_trace,
        "pack-trace": _cmd_pack_trace,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "profile": _cmd_profile,
        "analyze": _cmd_analyze,
        "compare": _cmd_compare,
        "lint": _cmd_lint,
        "check": _cmd_check,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
