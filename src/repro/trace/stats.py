"""Workload characterisation for traces.

Computes the aggregate statistics the paper reports about the BU trace
(request count, unique documents) plus the standard web-workload
characterisation used to validate that a synthetic trace is a reasonable
stand-in: popularity-rank profile, size distribution summary, inherent
one-timer fraction, and the infinite-cache ("compulsory-miss") hit-rate
ceiling.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.trace.record import Trace, TraceRecord


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace.

    Attributes:
        num_requests: Total requests.
        num_unique_urls: Distinct documents.
        num_clients: Distinct clients.
        total_bytes: Sum of response sizes across all requests.
        unique_bytes: Sum of sizes over distinct documents (last seen size).
        mean_size: Mean response size per request.
        one_timer_fraction: Fraction of documents requested exactly once.
        max_hit_rate: Hit rate of an infinite shared cache (1 - compulsory
            misses / requests); upper bound for any cooperative scheme.
        max_byte_hit_rate: Byte-weighted analogue of ``max_hit_rate``.
        duration: Trace time span in seconds.
    """

    num_requests: int
    num_unique_urls: int
    num_clients: int
    total_bytes: int
    unique_bytes: int
    mean_size: float
    one_timer_fraction: float
    max_hit_rate: float
    max_byte_hit_rate: float
    duration: float


def compute_stats(trace: Trace) -> TraceStats:
    """Characterise ``trace`` in one pass (plus a Counter pass)."""
    counts: Counter = Counter()
    last_size: Dict[str, int] = {}
    total_bytes = 0
    hit_bytes = 0
    seen: Dict[str, bool] = {}
    clients = set()
    for record in trace:
        counts[record.url] += 1
        last_size[record.url] = record.size
        total_bytes += record.size
        clients.add(record.client_id)
        if record.url in seen:
            hit_bytes += record.size
        else:
            seen[record.url] = True
    num_requests = len(trace)
    num_unique = len(counts)
    one_timers = sum(1 for c in counts.values() if c == 1)
    return TraceStats(
        num_requests=num_requests,
        num_unique_urls=num_unique,
        num_clients=len(clients),
        total_bytes=total_bytes,
        unique_bytes=sum(last_size.values()),
        mean_size=(total_bytes / num_requests) if num_requests else 0.0,
        one_timer_fraction=(one_timers / num_unique) if num_unique else 0.0,
        max_hit_rate=((num_requests - num_unique) / num_requests) if num_requests else 0.0,
        max_byte_hit_rate=(hit_bytes / total_bytes) if total_bytes else 0.0,
        duration=trace.duration,
    )


def popularity_profile(trace: Trace, top: int = 0) -> List[Tuple[str, int]]:
    """URLs with request counts, most popular first.

    Args:
        trace: The trace to profile.
        top: Truncate to the ``top`` most popular documents (0 = all).
    """
    counts = Counter(r.url for r in trace)
    ranked = counts.most_common(top if top > 0 else None)
    return ranked


def fit_zipf_alpha(trace: Trace, min_rank: int = 1, max_rank: int = 0) -> float:
    """Least-squares slope of log(count) vs log(rank): the Zipf exponent.

    Standard workload-characterisation fit. Returns 0.0 for traces with
    fewer than two distinct popularity ranks.

    Args:
        min_rank: First rank included in the fit (1-based); the very head of
            the distribution is often excluded in the literature.
        max_rank: Last rank included (0 = all).
    """
    ranked = popularity_profile(trace)
    if max_rank > 0:
        ranked = ranked[:max_rank]
    ranked = ranked[min_rank - 1:]
    if len(ranked) < 2:
        return 0.0
    xs = [math.log(rank) for rank in range(min_rank, min_rank + len(ranked))]
    ys = [math.log(count) for _, count in ranked]
    n = len(xs)
    mean_x = math.fsum(xs) / n
    mean_y = math.fsum(ys) / n
    sxx = math.fsum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        return 0.0
    sxy = math.fsum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return -sxy / sxx


def working_set_curve(
    trace: Trace, num_points: int = 20
) -> List[Tuple[int, int]]:
    """Growth of the distinct-document footprint over the trace.

    Returns ``(requests_seen, unique_documents_seen)`` samples at
    ``num_points`` evenly spaced positions — the classic working-set growth
    curve used to argue how much aggregate cache a workload needs.
    """
    if len(trace) == 0:
        return []
    num_points = max(1, min(num_points, len(trace)))
    step = max(1, len(trace) // num_points)
    seen = set()
    curve: List[Tuple[int, int]] = []
    for i, record in enumerate(trace, start=1):
        seen.add(record.url)
        if i % step == 0 or i == len(trace):
            curve.append((i, len(seen)))
    return curve


def size_percentiles(
    trace: Trace, percentiles: Sequence[float] = (50.0, 90.0, 99.0)
) -> Dict[float, int]:
    """Requested-size percentiles (nearest-rank definition)."""
    sizes = sorted(r.size for r in trace)
    if not sizes:
        return {p: 0 for p in percentiles}
    result = {}
    for p in percentiles:
        rank = max(1, math.ceil(p / 100.0 * len(sizes)))
        result[p] = sizes[min(rank, len(sizes)) - 1]
    return result
