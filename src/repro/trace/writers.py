"""Trace-file writers (round-trip counterparts of the readers).

Used to persist synthetic traces so experiments can be replayed outside the
library (and to test reader/writer round-trips).
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Union

from repro.trace.record import TraceRecord


def _open_sink(sink: Union[str, Path, IO[str]]):
    """Return (handle, should_close) for a path or an already-open file."""
    if isinstance(sink, (str, Path)):
        return open(sink, "w", encoding="utf-8"), True
    return sink, False


def write_bu_trace(records: Iterable[TraceRecord], sink: Union[str, Path, IO[str]]) -> int:
    """Write records in the BU condensed-log layout; returns lines written.

    Layout (7 fields)::

        <machine> <timestamp> <user_id> <session_id> <url> <size> <delay>

    ``client_id`` values of the form ``machine/user`` are split back into
    their components; other ids are written with machine ``sim``.
    """
    handle, should_close = _open_sink(sink)
    count = 0
    try:
        for record in records:
            if "/" in record.client_id:
                machine, user = record.client_id.split("/", 1)
            else:
                machine, user = "sim", record.client_id
            session = record.session_id or "-"
            handle.write(
                f"{machine} {record.timestamp:.6f} {user} {session} "
                f"{record.url} {record.size} 0.0\n"
            )
            count += 1
    finally:
        if should_close:
            handle.close()
    return count


def write_squid_trace(records: Iterable[TraceRecord], sink: Union[str, Path, IO[str]]) -> int:
    """Write records as Squid native access.log lines; returns lines written."""
    handle, should_close = _open_sink(sink)
    count = 0
    try:
        for record in records:
            handle.write(
                f"{record.timestamp:.3f} 0 {record.client_id} "
                f"TCP_MISS/{record.status} {record.size} {record.method} "
                f"{record.url} - DIRECT/origin text/html\n"
            )
            count += 1
    finally:
        if should_close:
            handle.close()
    return count
