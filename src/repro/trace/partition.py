"""Client-to-proxy partitioners.

A cooperative cache group serves a client population split across N proxies
(each client is configured to use exactly one proxy). These partitioners map
each :class:`~repro.trace.record.TraceRecord` to the index of the proxy at
which the request arrives. The paper splits the BU user population evenly
across the simulated proxies; :class:`HashPartitioner` reproduces that
behaviour deterministically.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import SimulationError
from repro.trace.record import TraceRecord


class Partitioner:
    """Maps requests to proxy indices in ``[0, num_proxies)``."""

    def __init__(self, num_proxies: int):
        if num_proxies <= 0:
            raise SimulationError(f"num_proxies must be positive, got {num_proxies}")
        self.num_proxies = num_proxies

    def assign(self, record: TraceRecord) -> int:
        """Return the proxy index that receives this request."""
        raise NotImplementedError

    def split(
        self, records: Iterable[TraceRecord]
    ) -> Iterator[Tuple[int, TraceRecord]]:
        """Yield ``(proxy_index, record)`` pairs in trace order."""
        for record in records:
            yield self.assign(record), record


class HashPartitioner(Partitioner):
    """Stable hash of the client id — every client sticks to one proxy.

    Uses MD5 rather than built-in ``hash()`` so assignments are stable
    across processes and Python versions (``PYTHONHASHSEED`` does not leak
    into experiment results). The digest is computed once per client and
    memoised: client populations are tiny relative to request counts, so the
    hot path is a dict lookup, not a hash.
    """

    def __init__(self, num_proxies: int):
        super().__init__(num_proxies)
        self._assignments: Dict[str, int] = {}

    def assign(self, record: TraceRecord) -> int:
        client = record.client_id
        index = self._assignments.get(client)
        if index is None:
            digest = hashlib.md5(client.encode("utf-8")).digest()
            index = int.from_bytes(digest[:8], "big") % self.num_proxies
            self._assignments[client] = index
        return index


class RoundRobinClientPartitioner(Partitioner):
    """Assigns clients to proxies round-robin in order of first appearance.

    Produces the most even client split possible while keeping each client
    pinned to a single proxy, which matches the paper's even division of the
    591 BU users across the group.
    """

    def __init__(self, num_proxies: int):
        super().__init__(num_proxies)
        self._assignments: Dict[str, int] = {}

    def assign(self, record: TraceRecord) -> int:
        client = record.client_id
        if client not in self._assignments:
            self._assignments[client] = len(self._assignments) % self.num_proxies
        return self._assignments[client]


class RoundRobinRequestPartitioner(Partitioner):
    """Spreads *requests* (not clients) round-robin.

    Breaks client affinity; useful as a stress partitioner that maximises
    cross-proxy replication pressure.
    """

    def __init__(self, num_proxies: int):
        super().__init__(num_proxies)
        self._counter = 0

    def assign(self, record: TraceRecord) -> int:
        index = self._counter % self.num_proxies
        self._counter += 1
        return index


def partition_counts(
    partitioner: Partitioner, records: Iterable[TraceRecord]
) -> List[int]:
    """Count of requests landing at each proxy under ``partitioner``."""
    counts = [0] * partitioner.num_proxies
    for index, _ in partitioner.split(records):
        counts[index] += 1
    return counts
