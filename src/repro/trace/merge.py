"""Trace composition: merge, shift, concatenate, relabel.

Cooperative caching studies often combine traces — several days of logs,
several sites' populations, or a synthetic burst injected into a real
baseline. These helpers keep the invariants the simulator relies on
(time-ordered records, stable client identities) while composing traces.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence

from repro.errors import TraceError
from repro.trace.record import Trace, TraceRecord


def shift_timestamps(trace: Trace, offset: float) -> Trace:
    """Every timestamp moved by ``offset`` seconds (order preserved)."""
    return Trace([r.with_timestamp(r.timestamp + offset) for r in trace])


def relabel_clients(trace: Trace, prefix: str) -> Trace:
    """Namespace every client id with ``prefix`` (for multi-site merges).

    Two sites' ``user7`` must not collapse into one client when their
    traces merge; ``relabel_clients(t, "siteA")`` keeps them distinct.
    """
    if not prefix:
        raise TraceError("prefix must be non-empty")
    records = []
    for record in trace:
        records.append(
            TraceRecord(
                timestamp=record.timestamp,
                client_id=f"{prefix}/{record.client_id}",
                url=record.url,
                size=record.size,
                session_id=record.session_id,
                method=record.method,
                status=record.status,
            )
        )
    return Trace(records)


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Interleave traces by timestamp (stable k-way merge).

    Client identities are taken as-is — relabel first if the populations
    overlap spuriously.
    """
    if not traces:
        raise TraceError("merge_traces needs at least one trace")
    merged: List[TraceRecord] = list(
        heapq.merge(*[iter(t) for t in traces], key=lambda r: r.timestamp)
    )
    return Trace(merged)


def concatenate_traces(traces: Sequence[Trace], gap_seconds: float = 1.0) -> Trace:
    """Play traces back-to-back, shifting each to start after the previous.

    Args:
        traces: Traces in playback order.
        gap_seconds: Idle gap inserted between consecutive traces.
    """
    if not traces:
        raise TraceError("concatenate_traces needs at least one trace")
    if gap_seconds < 0:
        raise TraceError("gap_seconds must be non-negative")
    records: List[TraceRecord] = []
    clock = None
    for trace in traces:
        if len(trace) == 0:
            continue
        if clock is None:
            offset = 0.0
        else:
            offset = clock + gap_seconds - trace[0].timestamp
        for record in trace:
            stamp = record.timestamp + offset
            # Float rounding in the offset arithmetic can land the shifted
            # stamp a ULP before the previous trace's end; clamp so the
            # concatenation stays monotone.
            if records and stamp < records[-1].timestamp:
                stamp = records[-1].timestamp
            records.append(record.with_timestamp(stamp))
        clock = records[-1].timestamp
    return Trace(records)
