"""Trace filters and slicers.

Composable preprocessing between a raw trace and the simulator, mirroring
what trace-driven caching studies (including the paper's) do before replay:
keep only cacheable requests, drop oversized bodies, slice a time range,
deterministically sample clients, or cap the request count.

All filters take and return iterables of records; :func:`apply_filters`
chains them and materialises a :class:`~repro.trace.record.Trace`.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import TraceError
from repro.trace.record import Trace, TraceRecord

RecordFilter = Callable[[Iterable[TraceRecord]], Iterator[TraceRecord]]


def cacheable_only(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Keep only requests a proxy may cache (GET, good status, no query)."""
    for record in records:
        if record.is_cacheable:
            yield record


def max_size(limit: int) -> RecordFilter:
    """Drop requests whose body exceeds ``limit`` bytes.

    Proxies of the era refused to cache very large bodies; simulating that
    admission rule at the trace level keeps comparisons clean.
    """
    if limit <= 0:
        raise TraceError("size limit must be positive")

    def _filter(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        for record in records:
            if record.size <= limit:
                yield record

    return _filter


def time_range(start: Optional[float] = None, end: Optional[float] = None) -> RecordFilter:
    """Keep requests with ``start <= timestamp < end`` (either side open)."""
    if start is not None and end is not None and end <= start:
        raise TraceError("time range end must exceed start")

    def _filter(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        for record in records:
            if start is not None and record.timestamp < start:
                continue
            if end is not None and record.timestamp >= end:
                break  # records are time-ordered
            yield record

    return _filter


def sample_clients(fraction: float, salt: str = "sample") -> RecordFilter:
    """Deterministically keep a stable ``fraction`` of clients (all their
    requests), preserving per-client streams — the correct way to shrink a
    proxy workload without destroying locality."""
    if not 0.0 < fraction <= 1.0:
        raise TraceError("fraction must be in (0, 1]")
    threshold = int(fraction * (1 << 32))

    def _keep(client_id: str) -> bool:
        digest = hashlib.md5(f"{salt}:{client_id}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") < threshold

    def _filter(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        for record in records:
            if _keep(record.client_id):
                yield record

    return _filter


def head(count: int) -> RecordFilter:
    """Keep only the first ``count`` requests."""
    if count < 0:
        raise TraceError("count must be non-negative")

    def _filter(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        for index, record in enumerate(records):
            if index >= count:
                break
            yield record

    return _filter


def apply_filters(trace: Iterable[TraceRecord], *filters: RecordFilter) -> Trace:
    """Chain ``filters`` left-to-right over ``trace``; materialise a Trace."""
    stream: Iterable[TraceRecord] = iter(trace)
    for record_filter in filters:
        stream = record_filter(stream)
    return Trace(list(stream))
