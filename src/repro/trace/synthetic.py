"""Synthetic workload generator standing in for the BU proxy traces.

The paper evaluates against the Boston University proxy traces (Nov 1994 -
Feb 1995; 575,775 requests, 46,830 unique documents, 591 users). Those traces
are not redistributable, so this module generates a *seeded, deterministic*
workload with the statistical properties that drive the paper's results:

* **Zipf-like document popularity** — the skew that makes the same popular
  documents get requested at several proxies, creating both remote-hit
  opportunities and the uncontrolled replication the EA scheme targets.
* **Heavy-tailed document sizes** — lognormal body sizes with a mean around
  the BU trace's 4 KB average; each document keeps a consistent size across
  requests.
* **Per-client sessions and temporal locality** — clients re-request
  recently seen documents (LRU-stack model), producing the local-hit
  component, and carry session identifiers like the BU condensed logs.
* **Zero-size records** — an optional fraction of records is emitted with
  size 0 to exercise the paper's 4 KB patch rule.

Determinism: all randomness flows from one ``random.Random(seed)`` instance;
identical configs yield identical traces.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.trace.record import Trace, TraceRecord


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of the synthetic BU-like workload.

    Attributes:
        num_requests: Total requests to generate.
        num_documents: Size of the document universe.
        num_clients: Number of distinct clients (BU trace: 591 users).
        zipf_alpha: Exponent of the Zipf popularity law (web traces cluster
            around 0.6-0.9; default 0.75).
        mean_size: Target mean document size in bytes (BU average: 4 KB).
        size_sigma: Lognormal shape parameter for sizes (higher = heavier tail).
        max_size: Hard cap on a single document size.
        temporal_locality: Probability a request re-references a document
            from the issuing client's recent-history stack instead of the
            global popularity law.
        locality_stack_depth: Depth of the per-client recency stack.
        mean_interarrival: Mean seconds between consecutive requests
            (global, exponential).
        session_gap: Idle seconds after which a client's next request opens
            a new session.
        zero_size_fraction: Fraction of emitted records whose size field is
            forced to 0 (to exercise the 4 KB patch rule); 0 disables.
        start_time: Timestamp of the first request.
        seed: PRNG seed; same seed + config = identical trace.
    """

    num_requests: int = 50_000
    num_documents: int = 5_000
    num_clients: int = 64
    zipf_alpha: float = 0.75
    mean_size: int = 4096
    size_sigma: float = 1.3
    max_size: int = 8 * 1024 * 1024
    temporal_locality: float = 0.3
    locality_stack_depth: int = 32
    mean_interarrival: float = 0.5
    session_gap: float = 1800.0
    zero_size_fraction: float = 0.0
    start_time: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise TraceError("num_requests must be positive")
        if self.num_documents <= 0:
            raise TraceError("num_documents must be positive")
        if self.num_clients <= 0:
            raise TraceError("num_clients must be positive")
        if self.zipf_alpha < 0:
            raise TraceError("zipf_alpha must be non-negative")
        if not 0.0 <= self.temporal_locality <= 1.0:
            raise TraceError("temporal_locality must be within [0, 1]")
        if not 0.0 <= self.zero_size_fraction <= 1.0:
            raise TraceError("zero_size_fraction must be within [0, 1]")
        if self.mean_interarrival <= 0:
            raise TraceError("mean_interarrival must be positive")
        if self.mean_size <= 0 or self.max_size < self.mean_size:
            raise TraceError("require 0 < mean_size <= max_size")

    def scaled(self, fraction: float) -> "SyntheticTraceConfig":
        """Return a config with request/document/client counts scaled down.

        Useful for fast tests: ``bu_like_config().scaled(0.01)``.
        """
        if not 0.0 < fraction <= 1.0:
            raise TraceError("fraction must be within (0, 1]")
        return replace(
            self,
            num_requests=max(1, int(self.num_requests * fraction)),
            num_documents=max(1, int(self.num_documents * fraction)),
            num_clients=max(1, int(self.num_clients * fraction)),
        )


def bu_like_config(seed: int = 42) -> SyntheticTraceConfig:
    """Config matching the BU trace's published aggregate shape.

    575,775 requests over 46,830 unique documents from 591 users
    (Section 4.1 of the paper). Generating the full-size trace takes a few
    seconds; experiments normally use ``bu_like_config().scaled(...)``.
    """
    return SyntheticTraceConfig(
        num_requests=575_775,
        num_documents=46_830,
        num_clients=591,
        zero_size_fraction=0.02,
        seed=seed,
    )


class ZipfSampler:
    """Draws ranks 1..n from a Zipf(alpha) law via inverse-CDF lookup.

    Probability of rank ``k`` is ``k**-alpha / H(n, alpha)``. The cumulative
    table costs O(n) memory and each draw is O(log n).
    """

    def __init__(self, n: int, alpha: float, rng: random.Random):
        if n <= 0:
            raise TraceError("ZipfSampler requires n >= 1")
        self._rng = rng
        weights = [k ** -alpha for k in range(1, n + 1)]
        total = math.fsum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float round-off

    def sample(self) -> int:
        """Return a rank in [0, n)."""
        return bisect.bisect_left(self._cdf, self._rng.random())


class _ClientState:
    """Per-client recency stack and session bookkeeping."""

    __slots__ = ("recent", "last_time", "session_index")

    def __init__(self) -> None:
        self.recent: List[int] = []
        self.last_time = -math.inf
        self.session_index = 0

    def touch(self, doc: int, depth: int) -> None:
        if doc in self.recent:
            self.recent.remove(doc)
        self.recent.append(doc)
        if len(self.recent) > depth:
            self.recent.pop(0)


class BULikeTraceGenerator:
    """Generates a deterministic BU-like synthetic trace.

    Usage::

        trace = BULikeTraceGenerator(SyntheticTraceConfig(seed=7)).generate()
    """

    def __init__(self, config: Optional[SyntheticTraceConfig] = None):
        self.config = config or SyntheticTraceConfig()

    def _document_sizes(self, rng: random.Random) -> List[int]:
        """Draw one consistent size per document (lognormal, capped).

        The lognormal ``mu`` is chosen so the distribution's mean equals
        ``config.mean_size``: mean = exp(mu + sigma^2/2).
        """
        cfg = self.config
        mu = math.log(cfg.mean_size) - cfg.size_sigma ** 2 / 2.0
        sizes = []
        for _ in range(cfg.num_documents):
            size = int(rng.lognormvariate(mu, cfg.size_sigma))
            sizes.append(min(max(size, 64), cfg.max_size))
        return sizes

    def generate(self) -> Trace:
        """Produce the full trace as a :class:`~repro.trace.record.Trace`."""
        return Trace(list(self.iter_records()))

    def iter_records(self):
        """Yield the trace's records one at a time, in trace order.

        This is the same emission loop :meth:`generate` materialises — one
        shared code path, so the RNG consumption order (and therefore every
        record) is identical by construction. Streamed replay via
        :class:`repro.trace.stream.SyntheticTraceStream` builds on this to
        drive arbitrarily long workloads with O(chunk) request memory (the
        per-document and per-client tables still scale with the universe,
        not the request count).
        """
        cfg = self.config
        rng = random.Random(cfg.seed)
        sampler = ZipfSampler(cfg.num_documents, cfg.zipf_alpha, rng)

        # Shuffle the rank->document mapping so popular documents are not
        # clustered at low ids (which would correlate with partitioners
        # that hash on the id).
        doc_ids = list(range(cfg.num_documents))
        rng.shuffle(doc_ids)
        sizes = self._document_sizes(rng)

        # Client activity is itself skewed: a few heavy users dominate
        # real proxy traces. Lognormal weights reproduce that.
        weights = [rng.lognormvariate(0.0, 1.0) for _ in range(cfg.num_clients)]
        clients = [f"host{i % 37}/user{i}" for i in range(cfg.num_clients)]
        client_cdf: List[float] = []
        acc = 0.0
        total_w = math.fsum(weights)
        for w in weights:
            acc += w / total_w
            client_cdf.append(acc)
        client_cdf[-1] = 1.0

        states: Dict[int, _ClientState] = {i: _ClientState() for i in range(cfg.num_clients)}
        now = cfg.start_time

        for _ in range(cfg.num_requests):
            now += rng.expovariate(1.0 / cfg.mean_interarrival)
            ci = bisect.bisect_left(client_cdf, rng.random())
            state = states[ci]

            if state.recent and rng.random() < cfg.temporal_locality:
                # Re-reference: geometric preference for the most recent
                # documents in the client's stack.
                idx = len(state.recent) - 1
                while idx > 0 and rng.random() < 0.5:
                    idx -= 1
                doc = state.recent[idx]
            else:
                doc = doc_ids[sampler.sample()]
            state.touch(doc, cfg.locality_stack_depth)

            if now - state.last_time > cfg.session_gap:
                state.session_index += 1
            state.last_time = now

            size = sizes[doc]
            if cfg.zero_size_fraction and rng.random() < cfg.zero_size_fraction:
                size = 0
            yield TraceRecord(
                timestamp=now,
                client_id=clients[ci],
                url=f"http://origin{doc % 97}.example.com/doc/{doc}",
                size=size,
                session_id=f"s{ci}.{state.session_index}",
            )


def generate_trace(config: Optional[SyntheticTraceConfig] = None) -> Trace:
    """Convenience wrapper: ``generate_trace(cfg)`` == ``BULikeTraceGenerator(cfg).generate()``."""
    return BULikeTraceGenerator(config).generate()
