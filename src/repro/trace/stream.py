"""Streamed trace sources: replay without materialising the trace.

Both replay engines accept, in place of a :class:`~repro.trace.record.Trace`,
any *streamed source* — an object exposing:

* ``interned_chunks(chunk_size)`` — an iterator of
  :class:`repro.fastpath.interning.InternedChunk` covering the request
  stream in order, with globally consistent dense ids and per-chunk
  intern-table deltas (the streaming equivalent of
  :meth:`Trace.interned_chunks`).
* ``num_records`` — the total request count when known ahead of time
  (``None`` otherwise); progress reporting and run manifests read it.

Replaying a streamed source is **byte-identical** to materialising the
same records into a ``Trace`` first — intern ids depend only on record
order, and both engines' chunked replay is chunking-invariant. The win is
memory: a streamed replay holds one chunk of request columns plus
per-document state, so request count stops being a memory bound —
100M-request synthetic sweeps run in O(chunk) + O(universe).

This module provides the two generator-backed sources; packed columnar
trace files (:mod:`repro.trace.columnar_io`) implement the same protocol
over an on-disk format.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Callable, Iterable, Iterator, List, Optional

from repro.errors import TraceError
from repro.trace.record import TraceRecord
from repro.trace.synthetic import BULikeTraceGenerator, SyntheticTraceConfig


def source_fingerprint(source, strict: bool = False) -> str:
    """Fingerprint of a trace source, materialised or streamed.

    ``Trace`` computes its fingerprint on demand (a method); streamed
    sources that know theirs ahead of time expose it as a plain string
    attribute (a packed reader's footer digest, a synthetic stream's
    config hash). Sources with neither get the ``"stream:opaque"``
    sentinel — fine for a manifest, but *not* a content address, so
    callers that key caches on the fingerprint pass ``strict=True`` and
    get a :class:`TraceError` instead.
    """
    fingerprint = getattr(source, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    if isinstance(fingerprint, str):
        return fingerprint
    if strict:
        raise TraceError(
            f"trace source {type(source).__name__} exposes no fingerprint; "
            "content-addressed caching needs one (give the stream a "
            "'fingerprint' attribute or materialise it into a Trace)"
        )
    return "stream:opaque"


def source_num_records(source) -> Optional[int]:
    """Total request count of a trace source, or None when unknowable.

    A materialised ``Trace`` is counted directly; streamed sources
    declare ``num_records`` (a packed reader reads it from the file
    footer before decoding any chunk). Progress reporting must use this
    instead of ``len(trace.records)`` — a streamed source has no
    ``records`` list to measure.
    """
    records = getattr(source, "records", None)
    if records is not None:
        return len(records)
    return getattr(source, "num_records", None)


class RecordStream:
    """Adapt any record iterable into the streamed-source protocol.

    Args:
        records: A zero-argument callable returning a fresh iterator of
            :class:`TraceRecord` in trace order. A callable (not a bare
            iterator) because a source may be replayed more than once —
            e.g. a sweep re-driving the same stream at many capacities.
        num_records: Declared total request count, when the producer knows
            it ahead of time; ``None`` for open-ended streams.
    """

    def __init__(
        self,
        records: Callable[[], Iterable[TraceRecord]],
        num_records: Optional[int] = None,
    ):
        self._records = records
        self.num_records = num_records

    def interned_chunks(
        self, chunk_size: int, spans=None
    ) -> Iterator["InternedChunk"]:
        """Intern the stream incrementally into ``chunk_size``-record chunks.

        Dense ids continue across chunks (one :class:`ChunkingInterner`
        per iteration), so consecutive chunks replay exactly like the
        materialised trace would.

        ``spans`` (an optional :class:`repro.obs.spans.SpanTracer`) times
        each chunk's intern pass as an ``intern`` span — a child of the
        engine's source span, separating interning from raw generation
        inside the generation-vs-replay wall split. Telemetry only; the
        emitted chunks are identical with or without it.
        """
        if chunk_size <= 0:
            raise TraceError(f"chunk_size must be positive, got {chunk_size}")
        # Imported here: repro.fastpath sits above the trace layer.
        from repro.fastpath.interning import ChunkingInterner

        interner = ChunkingInterner()
        traced = spans is not None
        batch: List[TraceRecord] = []
        for record in self._records():
            batch.append(record)
            if len(batch) >= chunk_size:
                if traced:
                    spans.begin("intern", "source")
                    chunk = interner.intern_chunk(batch)
                    spans.end(records=len(batch))
                    yield chunk
                else:
                    yield interner.intern_chunk(batch)
                batch = []
        if batch:
            if traced:
                spans.begin("intern", "source")
                chunk = interner.intern_chunk(batch)
                spans.end(records=len(batch))
                yield chunk
            else:
                yield interner.intern_chunk(batch)


class SyntheticTraceStream(RecordStream):
    """Chunked synthetic generation: the BU-like workload as a stream.

    Wraps :meth:`BULikeTraceGenerator.iter_records` — the *same* emission
    loop ``generate_trace`` materialises, so the RNG consumption order and
    every emitted record are identical by construction::

        stream = SyntheticTraceStream(SyntheticTraceConfig(num_requests=10**8))
        result = run_simulation(config, stream)   # O(chunk) request memory

    ``num_records`` is the configured request count, so sweep progress
    totals are exact without generating anything up front.
    """

    def __init__(self, config: Optional[SyntheticTraceConfig] = None):
        generator = BULikeTraceGenerator(config)
        super().__init__(
            generator.iter_records, num_records=generator.config.num_requests
        )
        self.config = generator.config
        # The config fully determines every emitted record (one seeded
        # RNG), so its canonical JSON is a sound content address for the
        # stream — namespaced apart from record-level Trace fingerprints.
        canonical = json.dumps(
            asdict(self.config), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        self.fingerprint = f"synthetic:{digest}"


__all__ = [
    "RecordStream",
    "SyntheticTraceStream",
    "source_fingerprint",
    "source_num_records",
]
