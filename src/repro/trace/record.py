"""Canonical request-trace record used throughout the simulator.

All trace readers normalise their input into :class:`TraceRecord` instances;
the synthetic generator produces them directly. A record captures one HTTP
request observed at (or destined for) a proxy: who asked, when, for which
URL, and how large the response body was.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional

from repro.errors import TraceError

#: Size (in bytes) substituted for zero-size log records, following the
#: paper's patch rule: "we made the size of each such record equal to average
#: document size of 4K bytes" (Section 4.1).
DEFAULT_PATCH_SIZE = 4096


@dataclass(frozen=True)
class TraceRecord:
    """One client HTTP request.

    Attributes:
        timestamp: Request arrival time in seconds (monotone within a trace;
            usually a Unix timestamp for real traces, simulated seconds for
            synthetic ones).
        client_id: Stable identifier of the requesting client (user or host).
        url: Requested URL; document identity for caching purposes.
        size: Response body size in bytes. ``0`` denotes an unknown size and
            is normally patched via :func:`patch_zero_sizes`.
        session_id: Optional browsing-session identifier (BU traces record
            one; synthetic traces generate one).
        method: HTTP method; only GETs are cacheable in this model.
        status: HTTP status code when the trace records one (Squid logs do).
    """

    timestamp: float
    client_id: str
    url: str
    size: int
    session_id: str = ""
    method: str = "GET"
    status: int = 200

    def __post_init__(self) -> None:
        if self.size < 0:
            raise TraceError(f"negative document size {self.size} for {self.url!r}")
        if not self.url:
            raise TraceError("trace record requires a non-empty URL")

    @property
    def is_cacheable(self) -> bool:
        """Whether this request can be served from / stored in a cache.

        Mirrors the common simulator convention: only successful GETs with
        http/ftp schemes and no query string are cacheable.
        """
        if self.method != "GET":
            return False
        if self.status not in (200, 203, 206, 300, 301, 304):
            return False
        if "?" in self.url or "cgi-bin" in self.url:
            return False
        return True

    def with_size(self, size: int) -> "TraceRecord":
        """Return a copy of this record with a different size."""
        return replace(self, size=size)

    def with_timestamp(self, timestamp: float) -> "TraceRecord":
        """Return a copy of this record with a different timestamp."""
        return replace(self, timestamp=timestamp)


def patch_zero_sizes(
    records: Iterable[TraceRecord], patch_size: int = DEFAULT_PATCH_SIZE
) -> Iterator[TraceRecord]:
    """Replace zero sizes with ``patch_size`` bytes.

    The BU traces contain records whose size field is zero; the paper
    substitutes the average document size of 4 KB for those (Section 4.1).
    """
    if patch_size <= 0:
        raise TraceError(f"patch_size must be positive, got {patch_size}")
    for record in records:
        yield record.with_size(patch_size) if record.size == 0 else record


def sort_by_timestamp(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Return records ordered by timestamp (stable for equal stamps)."""
    return sorted(records, key=lambda r: r.timestamp)


def validate_monotone(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Materialise ``records``, raising if timestamps ever decrease.

    Simulators assume traces are replayed in arrival order; this guard makes
    a violated assumption loud instead of silently corrupting virtual time.
    """
    out: List[TraceRecord] = []
    last: Optional[float] = None
    for i, record in enumerate(records):
        if last is not None and record.timestamp < last:
            raise TraceError(
                f"timestamps not monotone at index {i}: "
                f"{record.timestamp} < {last}"
            )
        last = record.timestamp
        out.append(record)
    return out


@dataclass
class Trace:
    """A materialised, validated request trace.

    Thin wrapper over a list of :class:`TraceRecord` adding the aggregate
    properties the paper reports for the BU trace (total requests, unique
    documents, unique clients) and convenience slicing.
    """

    records: List[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.records = validate_monotone(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.records[index])
        return self.records[index]

    @property
    def unique_urls(self) -> int:
        """Number of distinct documents requested."""
        return len({r.url for r in self.records})

    @property
    def unique_clients(self) -> int:
        """Number of distinct clients issuing requests."""
        return len({r.client_id for r in self.records})

    @property
    def total_bytes(self) -> int:
        """Sum of response sizes over all requests."""
        return sum(r.size for r in self.records)

    @property
    def duration(self) -> float:
        """Trace time span in seconds (0 for empty or single-record traces)."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    def head(self, n: int) -> "Trace":
        """First ``n`` records as a new Trace."""
        return Trace(self.records[:n])

    def interned(self):
        """Columnar view with URLs/clients interned to dense integer ids.

        Returns an :class:`repro.fastpath.interning.InternedTrace`.
        Computed once and cached on the instance (records are append-never
        after construction, same contract as :meth:`fingerprint`), so the
        columnar engine pays the interning cost once per trace even across
        many simulations — including pool workers that pin one trace.
        """
        cached = self.__dict__.get("_interned")
        if cached is None:
            # Imported here: repro.fastpath sits above the trace layer.
            from repro.fastpath.interning import InternedTrace

            cached = InternedTrace.from_records(self.records)
            self.__dict__["_interned"] = cached
        return cached

    def interned_chunks(self, chunk_size: int, spans=None):
        """Iterate the trace as :class:`InternedChunk` slices.

        ``spans`` (an optional :class:`repro.obs.spans.SpanTracer`) times
        the one-off interning pass as an ``intern`` span; the chunk
        slicing itself is pure column views and is not traced.

        Dense ids are global (identical to :meth:`interned`), and the
        intern-table deltas per chunk let a replay core grow its columnar
        state incrementally — replaying the chunks in order is
        byte-identical to replaying the whole trace, for any chunk size.
        Backed by the cached interned view, so chunking is pure column
        slicing. Streaming sources (packed columnar files, chunked
        synthetic generation) expose this same method without ever
        materialising the full trace; see :mod:`repro.trace.stream`.
        """
        if spans is not None:
            with spans.span("intern", "source"):
                interned = self.interned()
            return interned.chunks(chunk_size)
        return self.interned().chunks(chunk_size)

    @property
    def num_records(self) -> int:
        """Total request count (the streamed-source protocol's spelling)."""
        return len(self.records)

    def fingerprint(self) -> str:
        """Stable content hash of every record (hex SHA-256).

        Two traces fingerprint equal iff they replay identically: every
        field that can influence a simulation is hashed, in order. Computed
        once and cached on the instance — records are append-never after
        construction, so the digest cannot go stale. The sweep memo store
        uses this as the trace half of its content address.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for r in self.records:
            digest.update(
                f"{r.timestamp!r}|{r.client_id}|{r.url}|{r.size}|"
                f"{r.session_id}|{r.method}|{r.status}\n".encode("utf-8")
            )
        fingerprint = digest.hexdigest()
        self.__dict__["_fingerprint"] = fingerprint
        return fingerprint
