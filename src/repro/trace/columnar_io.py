"""Packed binary columnar trace format (``.rpct``): writer + reader.

A packed trace stores exactly what chunked replay consumes — the
:class:`repro.fastpath.interning.InternedChunk` sequence — so reading it
back requires no string interning, no parsing, and no whole-trace
materialisation. Replaying a packed file is byte-identical to replaying
the trace it was packed from (intern ids are preserved verbatim, and both
engines are chunking-invariant).

Layout (all integers little-endian)::

    header   "RPCT" | u16 version=1 | u16 flags=0 | u64 reserved
    chunk*   "CHNK" | u64 n | u64 new_docs | u64 new_clients
             | u64 base_docs | u64 base_clients | u64 base_records
             | int64[n] doc_ids | int64[n] sizes
             | float64[n] timestamps | int64[n] clients
             | u64 url_blob_len    | (u32 len | utf-8 bytes)*  new urls
             | u64 client_blob_len | (u32 len | utf-8 bytes)*  new clients
    footer   "FOOT" | u64 total_records | u64 total_docs
             | u64 total_clients | 32-byte sha256 | "RPCT"

The fixed-width numeric columns make the reader *mmap-backed*: chunks are
decoded straight out of the page cache with ``numpy.frombuffer`` (an
``array('q')``/``array('d')`` fallback covers numpy-less runs) and handed
to the engines as plain lists, so resident memory stays O(chunk) no
matter the file size. The footer carries stream totals — progress bars
and manifests know ``num_records`` without scanning — plus a *columnar
fingerprint*: the sha256 of every chunk payload, verifying integrity and
content-addressing the replay-relevant columns (the record-level
:meth:`Trace.fingerprint` also hashes fields this format does not store,
e.g. session ids, so the two are distinct namespaces).

Timestamps round-trip bit-exactly (IEEE-754 doubles), which byte
identity requires.
"""

from __future__ import annotations

import mmap
import struct
from array import array
from typing import BinaryIO, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.fastpath.numeric import load_numpy

MAGIC = b"RPCT"
VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_CHUNK_HEAD = struct.Struct("<4sQQQQQQ")
_CHUNK_MARK = b"CHNK"
_FOOTER = struct.Struct("<4sQQQ32s4s")
_FOOT_MARK = b"FOOT"
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Default records per stored chunk (matches the engines' streaming
#: default so a packed file replays one stored chunk per engine chunk).
DEFAULT_PACK_CHUNK = 1 << 18


def _pack_strings(strings) -> bytes:
    parts = []
    for s in strings:
        raw = s.encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _unpack_strings(blob: bytes, count: int) -> List[str]:
    out: List[str] = []
    off = 0
    for _ in range(count):
        (ln,) = _U32.unpack_from(blob, off)
        off += 4
        out.append(blob[off : off + ln].decode("utf-8"))
        off += ln
    if off != len(blob):
        raise TraceError("packed trace: string blob length mismatch")
    return out


def write_packed(path: str, source, chunk_size: Optional[int] = None) -> Tuple[int, int, int]:
    """Pack ``source`` into ``path``; returns (records, docs, clients).

    ``source`` is a :class:`~repro.trace.record.Trace` or any streamed
    source (``interned_chunks``). The file's stored chunk boundaries are
    whatever ``chunk_size`` yields (default :data:`DEFAULT_PACK_CHUNK`);
    replay is chunking-invariant, so the choice only shapes reader
    memory, not results.
    """
    import hashlib

    size = chunk_size if chunk_size is not None else DEFAULT_PACK_CHUNK
    digest = hashlib.sha256()
    total_records = total_docs = total_clients = 0
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0, 0))
        for chunk in source.interned_chunks(size):
            n = chunk.num_records
            url_blob = _pack_strings(chunk.new_urls)
            client_blob = _pack_strings(chunk.new_client_names)
            payload = b"".join(
                (
                    array("q", chunk.doc_ids).tobytes(),
                    array("q", chunk.sizes).tobytes(),
                    array("d", chunk.timestamps).tobytes(),
                    array("q", chunk.clients).tobytes(),
                    _U64.pack(len(url_blob)),
                    url_blob,
                    _U64.pack(len(client_blob)),
                    client_blob,
                )
            )
            fh.write(
                _CHUNK_HEAD.pack(
                    _CHUNK_MARK,
                    n,
                    len(chunk.new_urls),
                    len(chunk.new_client_names),
                    chunk.base_docs,
                    chunk.base_clients,
                    chunk.base_records,
                )
            )
            fh.write(payload)
            digest.update(payload)
            total_records += n
            total_docs += len(chunk.new_urls)
            total_clients += len(chunk.new_client_names)
        fh.write(
            _FOOTER.pack(
                _FOOT_MARK,
                total_records,
                total_docs,
                total_clients,
                digest.digest(),
                MAGIC,
            )
        )
    return total_records, total_docs, total_clients


class PackedTraceReader:
    """Streamed source over a packed columnar trace file.

    Opens the file mmap-backed (falling back to plain reads where mmap is
    unavailable, e.g. empty files) and validates header and footer
    eagerly, so totals are known before any chunk is decoded::

        reader = PackedTraceReader("trace.rpct")
        result = run_simulation(config, reader)     # O(chunk) memory
        reader.close()

    ``interned_chunks`` yields the *stored* chunk boundaries — replay is
    chunking-invariant, so re-slicing would change memory shape, never
    results; the requested size is therefore ignored. The reader may be
    iterated multiple times (each call restarts from the first chunk).
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: BinaryIO = open(path, "rb")
        try:
            self._buf = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # zero-length or mmap-less platform
            self._buf = self._fh.read()
        size = len(self._buf)
        if size < _HEADER.size + _FOOTER.size:
            raise TraceError(f"packed trace {path!r}: file truncated")
        magic, version, _flags, _reserved = _HEADER.unpack_from(self._buf, 0)
        if magic != MAGIC:
            raise TraceError(f"packed trace {path!r}: bad magic {magic!r}")
        if version != VERSION:
            raise TraceError(
                f"packed trace {path!r}: unsupported version {version} "
                f"(reader supports {VERSION})"
            )
        mark, records, docs, clients, fingerprint, tail = _FOOTER.unpack_from(
            self._buf, size - _FOOTER.size
        )
        if mark != _FOOT_MARK or tail != MAGIC:
            raise TraceError(f"packed trace {path!r}: footer missing (truncated?)")
        self.num_records = records
        self.num_docs = docs
        self.num_clients = clients
        self.fingerprint = fingerprint.hex()

    def close(self) -> None:
        if isinstance(self._buf, mmap.mmap):
            self._buf.close()
        self._fh.close()

    def __reduce__(self):
        # mmap handles do not pickle; a reader is fully described by its
        # path, so pool workers re-open the file (the page cache makes
        # this cheap) instead of shipping buffers across the boundary.
        return (PackedTraceReader, (self.path,))

    def __enter__(self) -> "PackedTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Decoded columns carry the same domains the packer wrote: chunk-local
    # request offsets over global interned ids, with byte offsets into the
    # backing mmap kept strictly in the byte-size domain.
    # repro: domains[doc_ids=chunk-offset->interned-id, sizes=chunk-offset->byte-size]
    # repro: domains[timestamps=chunk-offset->age-tick, clients=chunk-offset->any]
    # repro: domains[off=byte-size, width=byte-size, records_seen=global-seq]
    # repro: domains[base_docs=interned-id, base_records=global-seq]
    def interned_chunks(
        self, chunk_size: int, spans=None
    ) -> Iterator["InternedChunk"]:
        """Decode stored chunks in order (``chunk_size`` ignored; see above).

        ``spans`` (an optional :class:`repro.obs.spans.SpanTracer`) times
        each chunk's decode as a ``decode`` span with record/byte
        counters — a child of the engine's source span. Telemetry only.
        """
        from repro.fastpath.interning import InternedChunk

        np = load_numpy()
        buf = self._buf
        end = len(buf) - _FOOTER.size
        off = _HEADER.size
        records_seen = 0
        traced = spans is not None
        while off < end:
            if traced:
                chunk_start = off
                spans.begin("decode", "source")
            if off + _CHUNK_HEAD.size > end:
                raise TraceError(f"packed trace {self.path!r}: chunk truncated")
            mark, n, new_docs, new_clients, base_docs, base_clients, base_records = (
                _CHUNK_HEAD.unpack_from(buf, off)
            )
            if mark != _CHUNK_MARK:
                raise TraceError(
                    f"packed trace {self.path!r}: bad chunk marker at {off}"
                )
            if base_records != records_seen:
                raise TraceError(
                    f"packed trace {self.path!r}: chunk base_records "
                    f"{base_records} != records seen {records_seen}"
                )
            off += _CHUNK_HEAD.size
            width = n * 8
            if np is not None:
                doc_ids = np.frombuffer(buf, np.int64, n, off).tolist()
                sizes = np.frombuffer(buf, np.int64, n, off + width).tolist()
                timestamps = np.frombuffer(buf, np.float64, n, off + 2 * width).tolist()
                clients = np.frombuffer(buf, np.int64, n, off + 3 * width).tolist()
            else:
                cols = []
                for i, code in enumerate("qqdq"):
                    col = array(code)
                    col.frombytes(bytes(buf[off + i * width : off + (i + 1) * width]))
                    cols.append(col.tolist())
                doc_ids, sizes, timestamps, clients = cols
            off += 4 * width
            (blob_len,) = _U64.unpack_from(buf, off)
            off += 8
            new_urls = _unpack_strings(bytes(buf[off : off + blob_len]), new_docs)
            off += blob_len
            (blob_len,) = _U64.unpack_from(buf, off)
            off += 8
            new_client_names = _unpack_strings(
                bytes(buf[off : off + blob_len]), new_clients
            )
            off += blob_len
            records_seen += n
            chunk = InternedChunk(
                doc_ids=doc_ids,
                sizes=sizes,
                timestamps=timestamps,
                clients=clients,
                new_urls=new_urls,
                new_client_names=new_client_names,
                base_docs=base_docs,
                base_clients=base_clients,
                base_records=base_records,
            )
            if traced:
                spans.end(records=n, bytes=off - chunk_start)
            yield chunk
        if records_seen != self.num_records:
            raise TraceError(
                f"packed trace {self.path!r}: footer records {self.num_records} "
                f"!= chunks read {records_seen}"
            )


__all__ = ["DEFAULT_PACK_CHUNK", "PackedTraceReader", "write_packed"]
