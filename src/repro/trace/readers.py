"""Trace-file readers.

Three on-disk formats are supported:

* :class:`BUTraceReader` — the Boston University "condensed log" format used
  by the paper's evaluation (one file per browsing session, whitespace
  separated fields).
* :class:`SquidLogReader` — Squid ``access.log`` native format.
* :class:`CommonLogReader` — NCSA Common Log Format as produced by most HTTP
  servers of the era.

All readers are iterators over :class:`~repro.trace.record.TraceRecord` and
share the same error-handling contract: by default a malformed line raises
:class:`~repro.errors.TraceFormatError`; with ``strict=False`` malformed
lines are counted in :attr:`skipped` and skipped.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.errors import TraceFormatError
from repro.trace.record import Trace, TraceRecord, sort_by_timestamp

PathOrLines = Union[str, Path, Iterable[str]]


def _iter_lines(source: PathOrLines) -> Iterator[str]:
    """Yield lines from a path, an open file, or any iterable of strings."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as handle:
            yield from handle
    else:
        yield from source


class _BaseReader:
    """Shared scaffolding for line-oriented trace readers."""

    def __init__(self, source: PathOrLines, strict: bool = True):
        self._source = source
        self._strict = strict
        #: Number of malformed lines skipped (only grows when strict=False).
        self.skipped = 0

    def _parse_line(self, line: str, lineno: int) -> Optional[TraceRecord]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[TraceRecord]:
        for lineno, raw in enumerate(_iter_lines(self._source), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = self._parse_line(line, lineno)
            except TraceFormatError:
                if self._strict:
                    raise
                self.skipped += 1
                continue
            if record is not None:
                yield record

    def read(self, sort: bool = True) -> Trace:
        """Materialise the whole source into a :class:`Trace`.

        Args:
            sort: Order records by timestamp before building the Trace
                (BU traces are stored per-session and interleave timestamps
                across files, so sorting is normally required).
        """
        records: List[TraceRecord] = list(self)
        if sort:
            records = sort_by_timestamp(records)
        return Trace(records)


class BUTraceReader(_BaseReader):
    """Reader for Boston University condensed proxy logs.

    Each line of a BU condensed log holds one request::

        <machine> <timestamp> <user_id> <session_id> <url> <size> <delay>

    where ``timestamp`` is a Unix time in seconds (fractional allowed),
    ``size`` is the document size in bytes and ``delay`` is the object
    retrieval time in seconds. Some distributions omit the session field;
    both 6- and 7-field layouts are accepted.
    """

    _MIN_FIELDS = 6

    def _parse_line(self, line: str, lineno: int) -> Optional[TraceRecord]:
        fields = line.split()
        if len(fields) < self._MIN_FIELDS:
            raise TraceFormatError(
                f"expected >= {self._MIN_FIELDS} fields, got {len(fields)}",
                line,
                lineno,
            )
        machine = fields[0]
        try:
            timestamp = float(fields[1])
        except ValueError:
            raise TraceFormatError("unparseable timestamp", line, lineno) from None
        if len(fields) >= 7:
            user_id, session_id, url, size_str = fields[2], fields[3], fields[4], fields[5]
        else:
            user_id, session_id, url, size_str = fields[2], "", fields[3], fields[4]
        try:
            size = int(float(size_str))
        except ValueError:
            raise TraceFormatError("unparseable size", line, lineno) from None
        if size < 0:
            raise TraceFormatError(f"negative size {size}", line, lineno)
        client_id = f"{machine}/{user_id}"
        return TraceRecord(
            timestamp=timestamp,
            client_id=client_id,
            url=url,
            size=size,
            session_id=session_id,
        )


class SquidLogReader(_BaseReader):
    """Reader for Squid native ``access.log`` lines.

    Format::

        <timestamp> <elapsed_ms> <client> <code>/<status> <bytes> <method>
        <url> <rfc931> <peerstatus>/<peerhost> <type>
    """

    def _parse_line(self, line: str, lineno: int) -> Optional[TraceRecord]:
        fields = line.split()
        if len(fields) < 7:
            raise TraceFormatError(
                f"expected >= 7 fields, got {len(fields)}", line, lineno
            )
        try:
            timestamp = float(fields[0])
            size = int(fields[4])
        except ValueError:
            raise TraceFormatError("unparseable timestamp or size", line, lineno) from None
        code_status = fields[3]
        if "/" not in code_status:
            raise TraceFormatError("malformed result-code field", line, lineno)
        try:
            status = int(code_status.split("/", 1)[1])
        except ValueError:
            raise TraceFormatError("unparseable status code", line, lineno) from None
        return TraceRecord(
            timestamp=timestamp,
            client_id=fields[2],
            url=fields[6],
            size=max(size, 0),
            method=fields[5],
            status=status,
        )


class CommonLogReader(_BaseReader):
    """Reader for NCSA Common Log Format lines.

    Format::

        host ident authuser [dd/Mon/yyyy:HH:MM:SS zone] "METHOD url HTTP/x" status bytes
    """

    _PATTERN = re.compile(
        r'^(?P<host>\S+) (?P<ident>\S+) (?P<user>\S+) '
        r'\[(?P<time>[^\]]+)\] "(?P<method>\S+) (?P<url>\S+)[^"]*" '
        r'(?P<status>\d{3}) (?P<size>\S+)'
    )

    _MONTHS = {
        "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
        "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
    }

    def _parse_line(self, line: str, lineno: int) -> Optional[TraceRecord]:
        match = self._PATTERN.match(line)
        if match is None:
            raise TraceFormatError("line does not match Common Log Format", line, lineno)
        timestamp = self._parse_clf_time(match.group("time"), line, lineno)
        size_str = match.group("size")
        size = 0 if size_str == "-" else int(size_str)
        return TraceRecord(
            timestamp=timestamp,
            client_id=match.group("host"),
            url=match.group("url"),
            size=size,
            method=match.group("method"),
            status=int(match.group("status")),
        )

    def _parse_clf_time(self, text: str, line: str, lineno: int) -> float:
        """Convert a CLF time (``10/Oct/2000:13:55:36 -0700``) to Unix-ish seconds.

        Implemented without :mod:`datetime` timezone gymnastics: builds a
        deterministic epoch offset from the date fields, which is sufficient
        for relative replay ordering (the simulator only uses deltas).
        """
        try:
            datepart = text.split()[0]
            day_s, mon_s, rest = datepart.split("/", 2)
            year_s, hh, mm, ss = rest.split(":")
            day, year = int(day_s), int(year_s)
            month = self._MONTHS[mon_s]
            hours, minutes, seconds = int(hh), int(mm), int(ss)
        except (ValueError, KeyError, IndexError):
            raise TraceFormatError("unparseable CLF timestamp", line, lineno) from None
        # Days since year 0 using a standard civil-from-days style formula.
        y = year - (1 if month <= 2 else 0)
        era_days = (
            365 * y + y // 4 - y // 100 + y // 400
            + (153 * (month + (9 if month <= 2 else -3)) + 2) // 5
            + day - 1
        )
        return float(era_days * 86400 + hours * 3600 + minutes * 60 + seconds)


def read_trace(
    source: PathOrLines, fmt: str = "bu", strict: bool = True, sort: bool = True
) -> Trace:
    """Read a trace in the named format.

    Args:
        source: Path or iterable of lines.
        fmt: One of ``"bu"``, ``"squid"``, ``"clf"``.
        strict: Raise on malformed lines (otherwise skip them).
        sort: Sort records by timestamp.
    """
    readers = {"bu": BUTraceReader, "squid": SquidLogReader, "clf": CommonLogReader}
    if fmt not in readers:
        raise TraceFormatError(f"unknown trace format {fmt!r}; expected one of {sorted(readers)}")
    return readers[fmt](source, strict=strict).read(sort=sort)
