"""Trace anonymisation: share workloads without sharing browsing history.

The Boston University traces the paper uses were published with user
identities and URLs anonymised; this module provides the same facility for
traces produced or parsed by this library. Hashing is keyed (a salt) and
deterministic, so an anonymised trace replays identically — cache behaviour
depends only on identity *equality*, never on the strings themselves.

What is preserved: request order and timing, document identity structure
(same URL → same token), per-client streams, sizes, sessions. What is
destroyed: the actual hostnames, paths, and user names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

from repro.errors import TraceError
from repro.trace.record import Trace, TraceRecord


def _token(value: str, salt: str, prefix: str, digits: int = 16) -> str:
    digest = hashlib.sha256(f"{salt}:{prefix}:{value}".encode("utf-8")).hexdigest()
    return f"{prefix}{digest[:digits]}"


@dataclass(frozen=True)
class AnonymizationReport:
    """What an anonymisation pass touched."""

    records: int
    unique_urls: int
    unique_clients: int
    unique_sessions: int


class TraceAnonymizer:
    """Keyed, deterministic trace anonymiser.

    Args:
        salt: Secret key; the same salt maps the same input to the same
            tokens (needed to anonymise multi-part traces consistently),
            a different salt produces an unlinkable anonymisation.
        keep_origin_grouping: When True, the URL token preserves which
            origin server a document came from (documents from one host
            stay grouped under one host token) — cache studies sometimes
            need per-origin structure; off, every URL is a flat token.
    """

    def __init__(self, salt: str, keep_origin_grouping: bool = True):
        if not salt:
            raise TraceError("anonymisation salt must be non-empty")
        self.salt = salt
        self.keep_origin_grouping = keep_origin_grouping
        self._records = 0
        self._seen_urls: Dict[str, str] = {}
        self._seen_clients: Dict[str, str] = {}
        self._seen_sessions: Dict[str, str] = {}

    def _anon_url(self, url: str) -> str:
        cached = self._seen_urls.get(url)
        if cached is not None:
            return cached
        if self.keep_origin_grouping and "://" in url:
            scheme, rest = url.split("://", 1)
            host, _, path = rest.partition("/")
            host_token = _token(host, self.salt, "h", digits=12)
            path_token = _token(path, self.salt, "p", digits=16)
            token = f"{scheme}://{host_token}/{path_token}"
        else:
            token = "anon://" + _token(url, self.salt, "u", digits=24)
        self._seen_urls[url] = token
        return token

    def _anon_client(self, client_id: str) -> str:
        cached = self._seen_clients.get(client_id)
        if cached is None:
            cached = _token(client_id, self.salt, "c", digits=12)
            self._seen_clients[client_id] = cached
        return cached

    def _anon_session(self, session_id: str) -> str:
        if not session_id:
            return session_id
        cached = self._seen_sessions.get(session_id)
        if cached is None:
            cached = _token(session_id, self.salt, "s", digits=10)
            self._seen_sessions[session_id] = cached
        return cached

    def anonymize_record(self, record: TraceRecord) -> TraceRecord:
        """Anonymised copy of one record (timing/size/method untouched)."""
        self._records += 1
        return TraceRecord(
            timestamp=record.timestamp,
            client_id=self._anon_client(record.client_id),
            url=self._anon_url(record.url),
            size=record.size,
            session_id=self._anon_session(record.session_id),
            method=record.method,
            status=record.status,
        )

    def anonymize_stream(self, records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        """Lazily anonymise a record stream."""
        for record in records:
            yield self.anonymize_record(record)

    def anonymize(self, trace: Trace) -> Trace:
        """Anonymise a whole trace."""
        return Trace(list(self.anonymize_stream(iter(trace))))

    def report(self) -> AnonymizationReport:
        """Counts of records processed and distinct values tokenised."""
        return AnonymizationReport(
            records=self._records,
            unique_urls=len(self._seen_urls),
            unique_clients=len(self._seen_clients),
            unique_sessions=len(self._seen_sessions),
        )


def anonymize_trace(trace: Trace, salt: str, keep_origin_grouping: bool = True) -> Trace:
    """One-shot helper: anonymise ``trace`` under ``salt``."""
    return TraceAnonymizer(salt, keep_origin_grouping).anonymize(trace)
