"""Trace substrate: records, readers/writers, synthesis, partitioning, stats."""

from repro.trace.partition import (
    HashPartitioner,
    Partitioner,
    RoundRobinClientPartitioner,
    RoundRobinRequestPartitioner,
    partition_counts,
)
from repro.trace.anonymize import (
    AnonymizationReport,
    TraceAnonymizer,
    anonymize_trace,
)
from repro.trace.filters import (
    apply_filters,
    cacheable_only,
    head,
    max_size,
    sample_clients,
    time_range,
)
from repro.trace.merge import (
    concatenate_traces,
    merge_traces,
    relabel_clients,
    shift_timestamps,
)
from repro.trace.readers import (
    BUTraceReader,
    CommonLogReader,
    SquidLogReader,
    read_trace,
)
from repro.trace.record import (
    DEFAULT_PATCH_SIZE,
    Trace,
    TraceRecord,
    patch_zero_sizes,
    sort_by_timestamp,
    validate_monotone,
)
from repro.trace.stats import (
    TraceStats,
    compute_stats,
    fit_zipf_alpha,
    popularity_profile,
    size_percentiles,
    working_set_curve,
)
from repro.trace.synthetic import (
    BULikeTraceGenerator,
    SyntheticTraceConfig,
    ZipfSampler,
    bu_like_config,
    generate_trace,
)
from repro.trace.writers import write_bu_trace, write_squid_trace

__all__ = [
    "AnonymizationReport",
    "BULikeTraceGenerator",
    "BUTraceReader",
    "CommonLogReader",
    "DEFAULT_PATCH_SIZE",
    "HashPartitioner",
    "Partitioner",
    "RoundRobinClientPartitioner",
    "RoundRobinRequestPartitioner",
    "SquidLogReader",
    "SyntheticTraceConfig",
    "Trace",
    "TraceAnonymizer",
    "TraceRecord",
    "TraceStats",
    "ZipfSampler",
    "anonymize_trace",
    "apply_filters",
    "bu_like_config",
    "cacheable_only",
    "compute_stats",
    "concatenate_traces",
    "fit_zipf_alpha",
    "generate_trace",
    "head",
    "max_size",
    "merge_traces",
    "partition_counts",
    "patch_zero_sizes",
    "popularity_profile",
    "read_trace",
    "relabel_clients",
    "sample_clients",
    "shift_timestamps",
    "size_percentiles",
    "sort_by_timestamp",
    "time_range",
    "validate_monotone",
    "working_set_curve",
    "write_bu_trace",
    "write_squid_trace",
]
