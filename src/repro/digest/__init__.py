"""Digest-based location substrate (Summary Cache, Fan et al. '98)."""

from repro.digest.bloom import BloomFilter, optimal_parameters
from repro.digest.directory import DigestDirectory, DigestStats
from repro.digest.group import DigestDistributedGroup

__all__ = [
    "BloomFilter",
    "DigestDirectory",
    "DigestDistributedGroup",
    "DigestStats",
    "optimal_parameters",
]
