"""Digest-located distributed group: Summary Cache instead of ICP.

Identical to :class:`~repro.architecture.distributed.DistributedGroup`
except that local misses consult the :class:`DigestDirectory` (no per-miss
ICP traffic). A false-positive candidate costs a wasted inter-proxy HTTP
round-trip (the peer answers 404); a stale negative silently downgrades a
would-be remote hit to an origin fetch. Placement decisions (ad-hoc or EA)
are unchanged — location and placement compose independently, which is the
point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.architecture.distributed import DistributedGroup
from repro.cache.store import ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import PlacementScheme
from repro.digest.directory import DigestDirectory
from repro.errors import SimulationError
from repro.network.bus import MessageBus
from repro.network.latency import LatencyModel, ServiceKind
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord


class DigestDistributedGroup(DistributedGroup):
    """Flat cooperative group using Bloom-filter digests for location.

    Args:
        rebuild_interval: Simulated seconds between digest publishes.
        false_positive_rate: Target Bloom FP rate for each digest.
        (remaining args as for DistributedGroup)
    """

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        scheme: PlacementScheme,
        latency_model: Optional[LatencyModel] = None,
        bus: Optional[MessageBus] = None,
        responder_strategy: str = "first",
        seed: int = 0,
        rebuild_interval: float = 60.0,
        false_positive_rate: float = 0.01,
    ):
        super().__init__(
            caches=caches,
            scheme=scheme,
            latency_model=latency_model,
            bus=bus,
            responder_strategy=responder_strategy,
            seed=seed,
        )
        self.directory = DigestDirectory(
            caches,
            rebuild_interval=rebuild_interval,
            false_positive_rate=false_positive_rate,
        )
        #: Wasted HTTP round-trips caused by digest false positives.
        self.failed_fetch_attempts = 0

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Resolve a request using digest candidates instead of ICP probes."""
        if record.size <= 0:
            raise SimulationError(
                f"record for {record.url!r} has non-positive size; patch the trace first"
            )
        now = record.timestamp
        cache = self.caches[index]

        entry = cache.lookup(record.url, now)
        if entry is not None:
            return RequestOutcome(
                timestamp=now,
                requester=index,
                url=record.url,
                size=entry.size,
                kind=ServiceKind.LOCAL_HIT,
                latency=self._latency(ServiceKind.LOCAL_HIT, entry.size),
            )

        candidates = self.directory.candidates(record.url, exclude=index, now=now)
        # Try candidates cheapest-first (same ordering rule as ICP replies).
        for candidate in sorted(candidates):
            if record.url in self.caches[candidate]:
                document, audit = self._remote_fetch(index, candidate, record.url, now)
                return RequestOutcome(
                    timestamp=now,
                    requester=index,
                    url=record.url,
                    size=document.size,
                    kind=ServiceKind.REMOTE_HIT,
                    responder=candidate,
                    latency=self._latency(ServiceKind.REMOTE_HIT, document.size),
                    stored_at_requester=audit.stored_at_requester,
                    responder_refreshed=audit.responder_refreshed,
                    requester_age=audit.requester_age,
                    responder_age=audit.responder_age,
                )
            self._failed_fetch(index, candidate, record.url, now)

        stored = self._origin_fetch(index, record.url, record.size, now)
        return RequestOutcome(
            timestamp=now,
            requester=index,
            url=record.url,
            size=record.size,
            kind=ServiceKind.MISS,
            latency=self._latency(ServiceKind.MISS, record.size),
            stored_at_requester=stored,
        )

    def _failed_fetch(self, requester: int, candidate: int, url: str, now: float) -> None:
        """Account the wasted round-trip of a false-positive candidate."""
        self.failed_fetch_attempts += 1
        request = sim_http.HttpRequest(url=url, sender=self.caches[requester].name)
        request.with_expiration_age(self.caches[requester].expiration_age(now))
        self.bus.send_http_request(request)
        self.bus.send_http_response(
            sim_http.HttpResponse(
                url=url, status=404, body_size=0, sender=self.caches[candidate].name
            )
        )
