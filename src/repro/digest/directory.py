"""Digest directory: Summary-Cache-style content location.

Each cache periodically publishes a Bloom-filter digest of its contents;
peers answer "who might have this URL?" from their *local copies* of those
digests instead of sending per-miss ICP queries. Two error modes replace
ICP's crisp answers:

* **False positives** — the digest says a peer has the document but it does
  not (Bloom collision, or the peer evicted it since publishing). The
  requester wastes an inter-proxy HTTP round-trip.
* **Stale negatives** — a peer acquired the document after publishing its
  digest, so a real remote hit is missed.

:class:`DigestDirectory` tracks both so experiments can quantify the
ICP-vs-digest trade (messages saved vs accuracy lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.store import ProxyCache
from repro.digest.bloom import BloomFilter
from repro.errors import CacheConfigurationError


@dataclass
class DigestStats:
    """Accuracy and traffic counters for digest-based location."""

    publishes: int = 0
    publish_bytes: int = 0
    lookups: int = 0
    false_positives: int = 0
    stale_negatives: int = 0

    @property
    def false_positive_rate(self) -> float:
        """False positives per lookup (0 when no lookups)."""
        return self.false_positives / self.lookups if self.lookups else 0.0


class DigestDirectory:
    """Holds the last-published digest of every cache in a group.

    Args:
        caches: The group members (digests are indexed by position).
        rebuild_interval: Simulated seconds between digest publishes per
            cache (Summary Cache exchanges summaries periodically, not per
            update).
        false_positive_rate: Target FP rate used to size each filter.
    """

    def __init__(
        self,
        caches: Sequence[ProxyCache],
        rebuild_interval: float = 60.0,
        false_positive_rate: float = 0.01,
    ):
        if rebuild_interval <= 0:
            raise CacheConfigurationError("rebuild_interval must be positive")
        if not 0.0 < false_positive_rate < 1.0:
            raise CacheConfigurationError("false_positive_rate must be in (0, 1)")
        self._caches = list(caches)
        self.rebuild_interval = rebuild_interval
        self.false_positive_rate = false_positive_rate
        self.stats = DigestStats()
        self._digests: List[Optional[BloomFilter]] = [None] * len(self._caches)
        self._published_at: List[float] = [-float("inf")] * len(self._caches)

    def _build_digest(self, index: int) -> BloomFilter:
        cache = self._caches[index]
        expected = max(64, len(cache) * 2)
        bloom = BloomFilter.for_capacity(expected, self.false_positive_rate)
        bloom.update(cache.urls())
        return bloom

    def publish(self, index: int, now: float) -> BloomFilter:
        """Force cache ``index`` to publish a fresh digest at time ``now``."""
        digest = self._build_digest(index)
        self._digests[index] = digest
        self._published_at[index] = now
        self.stats.publishes += 1
        self.stats.publish_bytes += digest.size_bytes
        return digest

    def refresh_due(self, now: float) -> None:
        """Publish fresh digests for every cache whose interval elapsed."""
        for index in range(len(self._caches)):
            if now - self._published_at[index] >= self.rebuild_interval:
                self.publish(index, now)

    def digest_age(self, index: int, now: float) -> float:
        """Seconds since cache ``index`` last published."""
        return now - self._published_at[index]

    def candidates(self, url: str, exclude: int, now: float) -> List[int]:
        """Peers whose (possibly stale) digest claims to hold ``url``.

        Also updates accuracy stats by comparing the digests' answers to
        ground truth, which the simulator knows but a real deployment would
        not.
        """
        self.refresh_due(now)
        self.stats.lookups += 1
        found: List[int] = []
        for index, digest in enumerate(self._digests):
            if index == exclude or digest is None:
                continue
            claimed = url in digest
            actual = url in self._caches[index]
            if claimed:
                found.append(index)
                if not actual:
                    self.stats.false_positives += 1
            elif actual:
                self.stats.stale_negatives += 1
        return found
