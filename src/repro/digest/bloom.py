"""Bloom filters for cache digests.

Summary Cache (Fan et al., SIGCOMM '98 — cited by the paper as an ICP
alternative) replaces per-miss ICP queries with periodically exchanged
compact summaries of each cache's contents. The summary data structure is a
Bloom filter: k hash functions over an m-bit array, giving membership tests
with no false negatives (for a fresh filter) and a tunable false-positive
rate.

This implementation is deterministic across processes: the k indices are
derived from a SHA-1 double-hashing scheme (Kirsch-Mitzenmacher), not
Python's randomised ``hash()``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, List

from repro.errors import CacheConfigurationError


def optimal_parameters(expected_items: int, false_positive_rate: float) -> "tuple[int, int]":
    """Classic sizing: (bits, hashes) minimising space for a target FP rate.

    m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
    """
    if expected_items <= 0:
        raise CacheConfigurationError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise CacheConfigurationError("false_positive_rate must be in (0, 1)")
    bits = math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return max(8, bits), hashes


class BloomFilter:
    """A fixed-size Bloom filter over strings.

    Args:
        num_bits: Size of the bit array (m).
        num_hashes: Number of hash functions (k).
    """

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits <= 0:
            raise CacheConfigurationError("num_bits must be positive")
        if num_hashes <= 0:
            raise CacheConfigurationError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    @classmethod
    def for_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes)

    def _indices(self, item: str) -> Iterator[int]:
        digest = hashlib.sha1(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full period
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        """Insert ``item`` (idempotent for membership purposes)."""
        for index in self._indices(item):
            self._bits[index >> 3] |= 1 << (index & 7)
        self._count += 1

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[index >> 3] & (1 << (index & 7)) for index in self._indices(item)
        )

    def clear(self) -> None:
        """Remove everything (fresh filter)."""
        self._bits = bytearray(len(self._bits))
        self._count = 0

    def update(self, items: Iterable[str]) -> None:
        """Insert many items."""
        for item in items:
            self.add(item)

    @property
    def approximate_items(self) -> int:
        """Number of ``add`` calls since the last clear (upper bound on n)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — a saturation indicator."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    @property
    def estimated_false_positive_rate(self) -> float:
        """(fill_ratio)^k — the standard FP estimate for the current load."""
        return self.fill_ratio ** self.num_hashes

    @property
    def size_bytes(self) -> int:
        """Wire size of the bit array (what a digest exchange transfers)."""
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """Serialise the bit array (for digest exchange accounting/tests)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, num_hashes: int) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output."""
        bloom = cls(len(data) * 8, num_hashes)
        bloom._bits = bytearray(data)
        return bloom
