"""Figure 2 — cumulative byte hit rates, ad-hoc vs EA (4-cache group).

"Byte hit rate patterns are similar to those of document hit rates"
(Section 4.2): EA above ad-hoc, gap widest at small aggregate sizes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import SweepResult, run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "fig2"


def build_report(sweep: SweepResult) -> ExperimentReport:
    """Project a completed sweep into the Figure 2 series."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Figure 2: Byte hit rates (cumulative), ad-hoc vs EA",
        headers=["aggregate", "adhoc_byte_hit_rate", "ea_byte_hit_rate", "ea_minus_adhoc"],
    )
    for label in sweep.capacity_labels:
        adhoc = sweep.get("adhoc", label).result.metrics.byte_hit_rate
        ea = sweep.get("ea", label).result.metrics.byte_hit_rate
        report.add_row(label, adhoc, ea, ea - adhoc)
    return report


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
) -> ExperimentReport:
    """Regenerate Figure 2 (4-cache distributed group, LRU, both schemes)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    sweep = run_capacity_sweep(
        trace, capacities, base_config=base_config, jobs=jobs, memo=memo,
        engine=engine, events_dir=events_dir, snapshot_interval=snapshot_interval,
        progress=progress,
    )
    return build_report(sweep)
