"""Experiment report container shared by every figure/table driver."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table


@dataclass
class ExperimentReport:
    """A regenerated paper artifact (figure series or table).

    Attributes:
        experiment_id: Short id matching DESIGN.md's experiment index
            (``fig1``, ``table2``, ...).
        title: Human-readable description including the paper artifact.
        headers: Column names.
        rows: Row cells, column-aligned with ``headers``.
        notes: Free-form notes (substitutions, saturation warnings, ...).
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-form note rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Monospace rendering: title, grid, notes."""
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        try:
            index = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"{self.experiment_id} has no column {name!r}; "
                f"columns: {self.headers}"
            ) from None
        return [row[index] for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation."""
        def scrub(cell: Any) -> Any:
            if isinstance(cell, float) and math.isinf(cell):
                return "inf"
            return cell

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": [[scrub(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)
