"""Experiment result store: persist, reload, and diff reports.

Regeneration runs leave JSON artifacts under a results directory; later
runs can be diffed cell-by-cell against them to catch regressions in the
reproduction (a placement bug shows up as a hit-rate cell drifting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport


class ExperimentStore:
    """Directory-backed store of :class:`ExperimentReport` JSON artifacts."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment_id: str) -> Path:
        if not experiment_id or "/" in experiment_id:
            raise ExperimentError(f"invalid experiment id {experiment_id!r}")
        return self.root / f"{experiment_id}.json"

    def save(self, report: ExperimentReport) -> Path:
        """Persist ``report`` as JSON; returns the file path."""
        path = self._path(report.experiment_id)
        path.write_text(report.to_json(), encoding="utf-8")
        return path

    def load(self, experiment_id: str) -> ExperimentReport:
        """Load a previously saved report.

        Raises:
            ExperimentError: when the artifact does not exist or is corrupt.
        """
        path = self._path(experiment_id)
        if not path.exists():
            raise ExperimentError(f"no stored report for {experiment_id!r} in {self.root}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            report = ExperimentReport(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                headers=list(payload["headers"]),
            )
            for row in payload["rows"]:
                report.add_row(*[_revive(cell) for cell in row])
            for note in payload.get("notes", []):
                report.add_note(note)
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"corrupt report artifact {path}: {exc}") from exc
        return report

    def list_ids(self) -> List[str]:
        """Experiment ids with stored artifacts, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def exists(self, experiment_id: str) -> bool:
        """Whether an artifact is stored for ``experiment_id``."""
        return self._path(experiment_id).exists()


def _revive(cell: Any) -> Any:
    if cell == "inf":
        return float("inf")
    return cell


@dataclass(frozen=True)
class CellDiff:
    """One differing cell between two reports."""

    row: int
    column: str
    baseline: Any
    current: Any
    delta: Optional[float]


def diff_reports(
    baseline: ExperimentReport,
    current: ExperimentReport,
    tolerance: float = 0.0,
) -> List[CellDiff]:
    """Cell-by-cell diff of two same-shaped reports.

    Numeric cells differing by more than ``tolerance`` (absolute) are
    reported with their delta; non-numeric cells are compared exactly.

    Raises:
        ExperimentError: when shapes (headers or row counts) differ — that
            is a structural change, not a numeric drift.
    """
    if baseline.headers != current.headers:
        raise ExperimentError(
            f"header mismatch: {baseline.headers} vs {current.headers}"
        )
    if len(baseline.rows) != len(current.rows):
        raise ExperimentError(
            f"row-count mismatch: {len(baseline.rows)} vs {len(current.rows)}"
        )
    diffs: List[CellDiff] = []
    for row_index, (old_row, new_row) in enumerate(zip(baseline.rows, current.rows)):
        for column, old, new in zip(baseline.headers, old_row, new_row):
            if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
                    and not isinstance(old, bool) and not isinstance(new, bool):
                delta = float(new) - float(old)
                if abs(delta) > tolerance:
                    diffs.append(
                        CellDiff(row=row_index, column=column, baseline=old,
                                 current=new, delta=delta)
                    )
            elif old != new:
                diffs.append(
                    CellDiff(row=row_index, column=column, baseline=old,
                             current=new, delta=None)
                )
    return diffs
