"""Experiment result stores: reports, raw results, and diff tooling.

Two persistence layers live here:

* :class:`ExperimentStore` — named :class:`ExperimentReport` JSON artifacts
  (one per figure/table), diffable cell-by-cell to catch regressions in the
  reproduction (a placement bug shows up as a hit-rate cell drifting).
* :class:`SimulationResultStore` — *content-addressed*
  :class:`~repro.simulation.results.SimulationResult` artifacts keyed by an
  opaque hex digest (``repro.parallel.memo`` derives it from the simulation
  config plus a trace fingerprint). This is the sweep memo cache's backing
  store: every figure/table driver is a projection of a ``{scheme} x
  {capacity}`` sweep, so one simulated point can be reused across fig1 /
  fig2 / fig3 / table1 / table2 / group-size invocations instead of being
  re-simulated.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ExperimentError, SimulationError
from repro.experiments.report import ExperimentReport
from repro.simulation.results import SimulationResult


class ExperimentStore:
    """Directory-backed store of :class:`ExperimentReport` JSON artifacts."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment_id: str) -> Path:
        if not experiment_id or "/" in experiment_id:
            raise ExperimentError(f"invalid experiment id {experiment_id!r}")
        return self.root / f"{experiment_id}.json"

    def save(self, report: ExperimentReport) -> Path:
        """Persist ``report`` as JSON; returns the file path."""
        path = self._path(report.experiment_id)
        path.write_text(report.to_json(), encoding="utf-8")
        return path

    def load(self, experiment_id: str) -> ExperimentReport:
        """Load a previously saved report.

        Raises:
            ExperimentError: when the artifact does not exist or is corrupt.
        """
        path = self._path(experiment_id)
        if not path.exists():
            raise ExperimentError(f"no stored report for {experiment_id!r} in {self.root}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            report = ExperimentReport(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                headers=list(payload["headers"]),
            )
            for row in payload["rows"]:
                report.add_row(*[_revive(cell) for cell in row])
            for note in payload.get("notes", []):
                report.add_note(note)
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"corrupt report artifact {path}: {exc}") from exc
        return report

    def list_ids(self) -> List[str]:
        """Experiment ids with stored artifacts, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def exists(self, experiment_id: str) -> bool:
        """Whether an artifact is stored for ``experiment_id``."""
        return self._path(experiment_id).exists()


def _revive(cell: Any) -> Any:
    if cell == "inf":
        return float("inf")
    return cell


#: Valid content-address keys: hex digests (any even length >= 8).
_KEY_PATTERN = re.compile(r"^[0-9a-f]{8,}$")


class SimulationResultStore:
    """Directory-backed, content-addressed store of simulation results.

    Keys are opaque lowercase hex digests computed by the caller from
    everything that determines a result (simulation config + trace). Because
    the key covers all inputs, artifacts never go stale — invalidation is
    simply "a different input hashes to a different key". Writes are
    atomic (temp file + rename) so a crashed run cannot leave a truncated
    artifact that later loads would trip over.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not _KEY_PATTERN.match(key):
            raise ExperimentError(f"invalid result store key {key!r}")
        return self.root / f"{key}.json"

    def exists(self, key: str) -> bool:
        """Whether a result is stored under ``key``."""
        return self._path(key).exists()

    def save(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key``; returns the artifact path."""
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(result.to_json(), encoding="utf-8")
        tmp.replace(path)
        return path

    def load(self, key: str) -> Optional[SimulationResult]:
        """The result stored under ``key``, or None when absent.

        Raises:
            ExperimentError: when the artifact exists but is corrupt —
                silent fallback to re-simulation would hide a broken store.
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return SimulationResult.from_dict(payload)
        except (ValueError, SimulationError) as exc:
            raise ExperimentError(f"corrupt result artifact {path}: {exc}") from exc

    def keys(self) -> List[str]:
        """Stored keys, sorted; sidecar files (non-key stems) are ignored."""
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if _KEY_PATTERN.match(path.stem)
        )


@dataclass(frozen=True)
class CellDiff:
    """One differing cell between two reports."""

    row: int
    column: str
    baseline: Any
    current: Any
    delta: Optional[float]


def diff_reports(
    baseline: ExperimentReport,
    current: ExperimentReport,
    tolerance: float = 0.0,
) -> List[CellDiff]:
    """Cell-by-cell diff of two same-shaped reports.

    Numeric cells differing by more than ``tolerance`` (absolute) are
    reported with their delta; non-numeric cells are compared exactly.

    Raises:
        ExperimentError: when shapes (headers or row counts) differ — that
            is a structural change, not a numeric drift.
    """
    if baseline.headers != current.headers:
        raise ExperimentError(
            f"header mismatch: {baseline.headers} vs {current.headers}"
        )
    if len(baseline.rows) != len(current.rows):
        raise ExperimentError(
            f"row-count mismatch: {len(baseline.rows)} vs {len(current.rows)}"
        )
    diffs: List[CellDiff] = []
    for row_index, (old_row, new_row) in enumerate(zip(baseline.rows, current.rows)):
        for column, old, new in zip(baseline.headers, old_row, new_row):
            if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
                    and not isinstance(old, bool) and not isinstance(new, bool):
                delta = float(new) - float(old)
                if abs(delta) > tolerance:
                    diffs.append(
                        CellDiff(row=row_index, column=column, baseline=old,
                                 current=new, delta=delta)
                    )
            elif old != new:
                diffs.append(
                    CellDiff(row=row_index, column=column, baseline=old,
                             current=new, delta=None)
                )
    return diffs
