"""Shared experiment workloads and the paper's cache-size grid.

The paper sweeps aggregate cache sizes of 100 KB, 1 MB, 10 MB, 100 MB and
1 GB over the BU trace (575,775 requests, 46,830 documents). Three workload
scales trade fidelity for runtime:

* ``tiny`` — seconds; used by the test suite.
* ``default`` — a ~1/8-scale BU-like trace; what the benchmark harness runs.
  Its unique-content footprint (~25 MB) sits between the 10 MB and 100 MB
  points, so the two largest capacities saturate (no evictions) — exactly
  the regime the paper itself reports at 1 GB where both schemes converge.
* ``full`` — the BU trace's published dimensions; minutes per sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.trace.record import Trace
from repro.trace.synthetic import SyntheticTraceConfig, bu_like_config, generate_trace

#: The paper's aggregate-capacity grid, in presentation order.
PAPER_CAPACITIES: List[Tuple[str, int]] = [
    ("100KB", 100 * 1024),
    ("1MB", 1024 * 1024),
    ("10MB", 10 * 1024 * 1024),
    ("100MB", 100 * 1024 * 1024),
    ("1GB", 1024 * 1024 * 1024),
]

#: Table 1 stops at 100 MB (at 1 GB the workload fits without evictions,
#: leaving the expiration age undefined).
TABLE1_CAPACITIES: List[Tuple[str, int]] = PAPER_CAPACITIES[:4]

#: Group sizes the paper simulates.
PAPER_GROUP_SIZES: Tuple[int, ...] = (2, 4, 8)

WORKLOAD_SCALES = ("tiny", "default", "full")


def workload_config(scale: str = "default", seed: int = 42) -> SyntheticTraceConfig:
    """Synthetic-trace config for the named scale."""
    if scale == "tiny":
        return SyntheticTraceConfig(
            num_requests=8_000,
            num_documents=900,
            num_clients=24,
            zero_size_fraction=0.02,
            seed=seed,
        )
    if scale == "default":
        return SyntheticTraceConfig(
            num_requests=72_000,
            num_documents=5_850,
            num_clients=74,
            zero_size_fraction=0.02,
            seed=seed,
        )
    if scale == "full":
        return bu_like_config(seed=seed)
    raise ExperimentError(
        f"unknown workload scale {scale!r}; expected one of {WORKLOAD_SCALES}"
    )


_TRACE_CACHE: Dict[Tuple[str, int], Trace] = {}


def workload_trace(scale: str = "default", seed: int = 42) -> Trace:
    """The experiment trace for a scale (memoised — traces are immutable)."""
    key = (scale, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(workload_config(scale, seed))
    return _TRACE_CACHE[key]


def capacities_for(scale: str = "default") -> List[Tuple[str, int]]:
    """Capacity grid appropriate to a workload scale.

    The tiny workload's footprint is ~4 MB, so sweeping beyond 10 MB would
    produce five identical saturated rows; it stops there.
    """
    if scale == "tiny":
        return PAPER_CAPACITIES[:3]
    return list(PAPER_CAPACITIES)
