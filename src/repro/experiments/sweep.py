"""Capacity-sweep harness shared by every experiment driver.

One sweep = {scheme} x {aggregate capacity} simulations over a single trace,
returned as an indexable :class:`SweepResult`. All figure/table drivers are
thin projections of a sweep, so a single sweep per (trace, group size) can
be reused across fig1/fig2/fig3/table1/table2 — the benchmark harness relies
on that to avoid re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import SimulationConfig, run_simulation
from repro.trace.record import Trace

#: Scheme order used in paper tables: conventional first, then EA.
DEFAULT_SCHEMES: Tuple[str, ...] = ("adhoc", "ea")


@dataclass(frozen=True)
class SweepPoint:
    """One simulation inside a sweep."""

    scheme: str
    capacity_label: str
    capacity_bytes: int
    result: SimulationResult


class SweepResult:
    """All points of a sweep, indexable by (scheme, capacity label)."""

    #: Execution telemetry (:class:`repro.parallel.telemetry.SweepTelemetry`)
    #: attached by :class:`repro.parallel.ParallelSweepRunner`; None for
    #: sweeps produced by the plain serial loop. Out-of-band on purpose —
    #: it carries wall times and pids, which must never reach the
    #: byte-compared result payload.
    telemetry = None

    def __init__(self, points: Sequence[SweepPoint]):
        self.points: List[SweepPoint] = list(points)
        self._index: Dict[Tuple[str, str], SweepPoint] = {
            (p.scheme, p.capacity_label): p for p in self.points
        }

    def get(self, scheme: str, capacity_label: str) -> SweepPoint:
        """The point for a scheme/capacity pair.

        Raises:
            ExperimentError: if the sweep did not include that pair.
        """
        try:
            return self._index[(scheme, capacity_label)]
        except KeyError:
            raise ExperimentError(
                f"sweep has no point for scheme={scheme!r}, "
                f"capacity={capacity_label!r}; available: {sorted(self._index)}"
            ) from None

    @property
    def schemes(self) -> List[str]:
        """Schemes present, in first-seen order."""
        return list(dict.fromkeys(p.scheme for p in self.points))

    @property
    def capacity_labels(self) -> List[str]:
        """Capacity labels present, in first-seen order."""
        return list(dict.fromkeys(p.capacity_label for p in self.points))


def run_capacity_sweep(
    trace: Trace,
    capacities: Sequence[Tuple[str, int]],
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
    track_memory: bool = False,
    spans=None,
) -> SweepResult:
    """Run {scheme} x {capacity} simulations over ``trace``.

    Args:
        trace: Workload replayed identically into every point — a
            :class:`Trace` or a streamed source (packed reader, synthetic
            stream; see :mod:`repro.trace.stream`), the latter requiring
            a chunked ``engine`` and keeping every point at O(chunk)
            request memory.
        capacities: ``(label, aggregate_bytes)`` pairs.
        schemes: Placement schemes to compare.
        base_config: Template for everything except scheme and capacity
            (group size, policy, architecture...); paper defaults if omitted.
        jobs: Worker processes for the sweep; ``None`` (the default) runs
            serially in-process. Any value fans out through
            :class:`repro.parallel.ParallelSweepRunner`, whose merge order
            makes results byte-identical to the serial path.
        memo: Optional :class:`repro.parallel.SweepMemoStore`; memoized
            points are loaded instead of re-simulated.
        engine: Execution engine for every point (``"object"`` /
            ``"columnar"``); overrides ``base_config.engine`` when given.
            Results are byte-identical either way — ``"columnar"`` is purely
            a throughput knob (unsupported configs fall back per point with
            a logged reason). Workers in a parallel sweep pin one trace, so
            the columnar interning cost is paid once per worker, not per
            point.
        events_dir: When given, each freshly simulated point writes a
            ``repro-events/1`` stream into this directory (see
            :mod:`repro.obs`); memoized points emit no events.
        snapshot_interval: Simulation-seconds between snapshot events in
            those streams (0 disables snapshots).
        progress: Optional per-point callback receiving a
            :class:`repro.parallel.telemetry.SweepProgress`.
        track_memory: Track each worker's :mod:`tracemalloc` high-water
            mark per point (surfaced on the sweep telemetry).
        spans: Optional parent :class:`repro.obs.spans.SpanTracer`;
            freshly simulated points are span-traced in their workers and
            merged onto per-point lanes of the parent timeline.

    Any observability argument routes the sweep through the runner (in
    process when ``jobs`` is unset) so event capture, telemetry, and
    progress share one implementation; results stay byte-identical.
    """
    if engine is not None:
        template = base_config if base_config is not None else SimulationConfig()
        base_config = replace(template, engine=engine)
    observed = (
        events_dir is not None or snapshot_interval > 0.0
        or progress is not None or track_memory or spans is not None
    )
    if jobs is not None or memo is not None or observed:
        # Imported lazily — repro.parallel imports this module for
        # SweepPoint/SweepResult, so a top-level import would be circular.
        from repro.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(jobs=jobs if jobs is not None else 1, memo=memo)
        sweep = runner.run(
            trace,
            capacities,
            schemes=schemes,
            base_config=base_config,
            events_dir=events_dir,
            snapshot_interval=snapshot_interval,
            progress=progress,
            track_memory=track_memory,
            spans=spans,
        )
        sweep.telemetry = runner.last_telemetry
        return sweep
    if not capacities:
        raise ExperimentError("capacity sweep needs at least one capacity")
    if not schemes:
        raise ExperimentError("capacity sweep needs at least one scheme")
    template = base_config if base_config is not None else SimulationConfig()
    points: List[SweepPoint] = []
    for label, capacity_bytes in capacities:
        for scheme in schemes:
            config = replace(template, scheme=scheme, aggregate_capacity=capacity_bytes)
            result = run_simulation(config, trace)
            points.append(
                SweepPoint(
                    scheme=scheme,
                    capacity_label=label,
                    capacity_bytes=capacity_bytes,
                    result=result,
                )
            )
    return SweepResult(points)
