"""Experiment drivers — one per paper figure/table, plus ablations.

Every driver exposes ``run(scale=..., seed=...) -> ExperimentReport`` and,
where it projects a plain capacity sweep, ``build_report(sweep)`` so one
sweep can feed several artifacts without re-simulating.
"""

from repro.experiments import (
    ablations,
    extensions,
    extensions2,
    fig1_document_hit_rates,
    fig2_byte_hit_rates,
    fig3_latency,
    group_size_sweep,
    model_validation,
    multiseed,
    table1_expiration_age,
    table2_hit_breakdown,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.store import CellDiff, ExperimentStore, diff_reports
from repro.experiments.sweep import (
    DEFAULT_SCHEMES,
    SweepPoint,
    SweepResult,
    run_capacity_sweep,
)
from repro.experiments.workload import (
    PAPER_CAPACITIES,
    PAPER_GROUP_SIZES,
    TABLE1_CAPACITIES,
    WORKLOAD_SCALES,
    capacities_for,
    workload_config,
    workload_trace,
)

#: Registry mapping experiment ids to their run() callables (CLI uses this).
EXPERIMENTS = {
    "fig1": fig1_document_hit_rates.run,
    "fig2": fig2_byte_hit_rates.run,
    "fig3": fig3_latency.run,
    "table1": table1_expiration_age.run,
    "table2": table2_hit_breakdown.run,
    "groupsize": group_size_sweep.run,
    "ablation-window": ablations.run_window_ablation,
    "ablation-ties": ablations.run_tie_break_ablation,
    "ablation-policy": ablations.run_policy_ablation,
    "ablation-architecture": ablations.run_architecture_ablation,
    "ablation-measure": ablations.run_measure_ablation,
    "ext-locator": extensions.run_locator_comparison,
    "ext-baselines": extensions.run_baseline_comparison,
    "ext-prefetch": extensions.run_prefetch_study,
    "ext-loss": extensions.run_loss_resilience,
    "ext-coherence": extensions2.run_coherence_study,
    "ext-demotion": extensions2.run_demotion_study,
    "ext-heterogeneous": extensions2.run_heterogeneity_study,
    "ext-admission": extensions2.run_admission_study,
    "ext-replica-cap": extensions2.run_replica_cap_study,
    "multiseed": multiseed.run_multi_seed_comparison,
    "model": model_validation.run,
}

__all__ = [
    "CellDiff",
    "DEFAULT_SCHEMES",
    "EXPERIMENTS",
    "ExperimentReport",
    "ExperimentStore",
    "PAPER_CAPACITIES",
    "PAPER_GROUP_SIZES",
    "SweepPoint",
    "SweepResult",
    "TABLE1_CAPACITIES",
    "WORKLOAD_SCALES",
    "ablations",
    "capacities_for",
    "diff_reports",
    "extensions",
    "extensions2",
    "fig1_document_hit_rates",
    "fig2_byte_hit_rates",
    "fig3_latency",
    "group_size_sweep",
    "model_validation",
    "multiseed",
    "run_capacity_sweep",
    "table1_expiration_age",
    "table2_hit_breakdown",
    "workload_config",
    "workload_trace",
]
