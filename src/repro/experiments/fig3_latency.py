"""Figure 3 — estimated average latency, ad-hoc vs EA (4-cache group).

Latency comes from the paper's Eq. 6 with its measured constants
(LHL = 146 ms, RHL = 342 ms, ML = 2784 ms). Expected shape: EA clearly lower
while miss latency dominates (small caches); converging — and EA *slightly
worse* — once caches are large enough that the extra remote hits (342 ms vs
146 ms) outweigh the small miss-rate advantage (the paper's 1 GB crossover).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import SweepResult, run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "fig3"


def build_report(sweep: SweepResult) -> ExperimentReport:
    """Project a completed sweep into the Figure 3 series (milliseconds)."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Figure 3: Estimated average latency (ms), ad-hoc vs EA (Eq. 6)",
        headers=["aggregate", "adhoc_latency_ms", "ea_latency_ms", "ea_minus_adhoc_ms"],
    )
    for label in sweep.capacity_labels:
        adhoc = sweep.get("adhoc", label).result.estimated_latency * 1000.0
        ea = sweep.get("ea", label).result.estimated_latency * 1000.0
        report.add_row(label, adhoc, ea, ea - adhoc)
    return report


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
) -> ExperimentReport:
    """Regenerate Figure 3 (4-cache distributed group, LRU, both schemes)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    sweep = run_capacity_sweep(
        trace, capacities, base_config=base_config, jobs=jobs, memo=memo,
        engine=engine, events_dir=events_dir, snapshot_interval=snapshot_interval,
        progress=progress,
    )
    return build_report(sweep)
