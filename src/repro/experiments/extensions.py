"""Extension experiments beyond the paper's evaluation.

Four studies using the substrates the paper cites as related work or future
directions:

* :func:`run_locator_comparison` — ICP probing vs Summary-Cache Bloom
  digests: hit rate lost to digest staleness/false positives vs protocol
  bytes saved.
* :func:`run_baseline_comparison` — ad-hoc vs EA vs consistent-hash routing
  (Karger et al.): replication spectrum from everywhere to nowhere.
* :func:`run_prefetch_study` — lazy vs eager (Markov-prefetched) placement
  under both schemes.
* :func:`run_loss_resilience` — EA-vs-ad-hoc gap as ICP reply loss grows
  (ICP rides UDP; replies can vanish).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.architecture.base import build_caches
from repro.architecture.distributed import DistributedGroup
from repro.architecture.hashrouted import HashRoutedGroup
from repro.core.placement import make_scheme
from repro.digest.group import DigestDistributedGroup
from repro.experiments.report import ExperimentReport
from repro.experiments.workload import capacities_for, workload_trace
from repro.prefetch.engine import PrefetchEngine
from repro.simulation.replay import replay_trace
from repro.trace.record import Trace


def _resolve(scale: str, seed: int, trace: Optional[Trace],
             capacities: Optional[Sequence[Tuple[str, int]]]):
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    return trace, capacities


def run_locator_comparison(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
    rebuild_interval: float = 60.0,
) -> ExperimentReport:
    """EA scheme under ICP location vs Bloom-digest location."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-locator",
        title="Extension: ICP vs Summary-Cache digests (EA scheme)",
        headers=[
            "aggregate",
            "icp_hit_rate",
            "digest_hit_rate",
            "icp_proto_kb",
            "digest_proto_kb",
            "digest_false_pos",
        ],
    )
    for label, capacity in capacities:
        icp_group = DistributedGroup(
            build_caches(num_caches, capacity), make_scheme("ea"), seed=seed
        )
        icp_metrics = replay_trace(icp_group, trace)
        digest_group = DigestDistributedGroup(
            build_caches(num_caches, capacity),
            make_scheme("ea"),
            seed=seed,
            rebuild_interval=rebuild_interval,
        )
        digest_metrics = replay_trace(digest_group, trace)
        icp_proto = icp_group.bus.counters.icp_bytes + icp_group.bus.counters.http_header_bytes
        digest_proto = (
            digest_group.bus.counters.http_header_bytes
            + digest_group.directory.stats.publish_bytes
        )
        report.add_row(
            label,
            icp_metrics.hit_rate,
            digest_metrics.hit_rate,
            icp_proto / 1024.0,
            digest_proto / 1024.0,
            digest_group.directory.stats.false_positives,
        )
    return report


def run_baseline_comparison(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """Ad-hoc vs EA vs consistent-hash routing across the capacity grid."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-baselines",
        title="Extension: placement spectrum — ad-hoc / EA / hash-routed",
        headers=[
            "aggregate",
            "adhoc_hit",
            "ea_hit",
            "hash_hit",
            "adhoc_latency_ms",
            "ea_latency_ms",
            "hash_latency_ms",
        ],
    )
    for label, capacity in capacities:
        metrics = {}
        for name in ("adhoc", "ea"):
            group = DistributedGroup(
                build_caches(num_caches, capacity), make_scheme(name), seed=seed
            )
            metrics[name] = replay_trace(group, trace)
        hash_group = HashRoutedGroup(build_caches(num_caches, capacity), seed=seed)
        metrics["hash"] = replay_trace(hash_group, trace)
        report.add_row(
            label,
            metrics["adhoc"].hit_rate,
            metrics["ea"].hit_rate,
            metrics["hash"].hit_rate,
            metrics["adhoc"].estimated_latency() * 1000.0,
            metrics["ea"].estimated_latency() * 1000.0,
            metrics["hash"].estimated_latency() * 1000.0,
        )
    return report


def run_prefetch_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """Lazy vs eager (Markov prefetch) placement under both schemes."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-prefetch",
        title="Extension: lazy vs eager placement (first-order Markov prefetch)",
        headers=[
            "aggregate",
            "scheme",
            "lazy_hit",
            "eager_hit",
            "prefetch_precision",
            "prefetch_mb",
        ],
    )
    for label, capacity in capacities:
        for scheme_name in ("adhoc", "ea"):
            lazy_group = DistributedGroup(
                build_caches(num_caches, capacity), make_scheme(scheme_name), seed=seed
            )
            lazy = replay_trace(lazy_group, trace)
            eager_group = DistributedGroup(
                build_caches(num_caches, capacity), make_scheme(scheme_name), seed=seed
            )
            engine = PrefetchEngine(eager_group)
            eager = replay_trace(engine, trace)
            report.add_row(
                label,
                scheme_name,
                lazy.hit_rate,
                eager.hit_rate,
                engine.stats.precision,
                engine.stats.bytes_prefetched / (1024.0 * 1024.0),
            )
    return report


def run_loss_resilience(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacity: int = 1 << 20,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.2, 0.5),
    num_caches: int = 4,
) -> ExperimentReport:
    """EA-vs-ad-hoc hit rates as ICP reply loss grows (failure injection)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    report = ExperimentReport(
        experiment_id="ext-loss",
        title=f"Extension: ICP reply loss resilience ({capacity // 1024} KB aggregate)",
        headers=["loss_rate", "adhoc_hit", "ea_hit", "ea_minus_adhoc", "replies_lost"],
    )
    for loss in loss_rates:
        rates = {}
        lost = 0
        for name in ("adhoc", "ea"):
            group = DistributedGroup(
                build_caches(num_caches, capacity),
                make_scheme(name),
                seed=seed,
                icp_loss_rate=loss,
            )
            rates[name] = replay_trace(group, trace).hit_rate
            lost += group.icp_replies_lost
        report.add_row(loss, rates["adhoc"], rates["ea"], rates["ea"] - rates["adhoc"], lost)
    return report
