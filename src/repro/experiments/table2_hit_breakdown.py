"""Table 2 — local/remote hit breakdown and estimated latency, 4-cache group.

Reproduces the paper's Table 2: for each aggregate size, the local hit rate,
remote hit rate, and Eq. 6 latency of both schemes side by side. Expected
shape: EA trades local hits for remote hits (it declines local copies that
would die young), raising the remote-hit rate substantially — the paper
reports 32.02 % (EA) vs 11.06 % (ad-hoc) remote hits at 1 GB — while its
miss rate stays at or below ad-hoc's.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import SweepResult, run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "table2"


def build_report(sweep: SweepResult) -> ExperimentReport:
    """Project a completed sweep into Table 2 (rates in %, latency in ms)."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Table 2: Ad-hoc vs EA — local/remote hits (%) and latency (ms)",
        headers=[
            "aggregate",
            "adhoc_local_%",
            "adhoc_remote_%",
            "adhoc_latency_ms",
            "ea_local_%",
            "ea_remote_%",
            "ea_latency_ms",
        ],
    )
    for label in sweep.capacity_labels:
        adhoc = sweep.get("adhoc", label).result
        ea = sweep.get("ea", label).result
        report.add_row(
            label,
            adhoc.metrics.local_hit_rate * 100.0,
            adhoc.metrics.remote_hit_rate * 100.0,
            adhoc.estimated_latency * 1000.0,
            ea.metrics.local_hit_rate * 100.0,
            ea.metrics.remote_hit_rate * 100.0,
            ea.estimated_latency * 1000.0,
        )
    return report


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
) -> ExperimentReport:
    """Regenerate Table 2 (4-cache distributed group, LRU, both schemes)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    sweep = run_capacity_sweep(
        trace, capacities, base_config=base_config, jobs=jobs, memo=memo,
        engine=engine, events_dir=events_dir, snapshot_interval=snapshot_interval,
        progress=progress,
    )
    return build_report(sweep)
