"""Table 1 — average cache expiration age (seconds), 4-cache group.

The paper tabulates the group's average cache expiration age for both
schemes at 100 KB ... 100 MB (no 1 GB row: with the workload fitting in the
aggregate space there are no evictions, so the age is undefined/infinite).
Expected shape: EA's ages substantially above ad-hoc's — "with EA scheme the
documents stay for much longer", i.e. EA reduces disk-space contention.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import SweepResult, run_capacity_sweep
from repro.experiments.workload import TABLE1_CAPACITIES, capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "table1"


def build_report(sweep: SweepResult) -> ExperimentReport:
    """Project a completed sweep into Table 1 (ages in seconds)."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Table 1: Average cache expiration age (seconds), ad-hoc vs EA",
        headers=["aggregate", "adhoc_exp_age_s", "ea_exp_age_s", "ea_over_adhoc"],
    )
    for label in sweep.capacity_labels:
        adhoc = sweep.get("adhoc", label).result.avg_cache_expiration_age
        ea = sweep.get("ea", label).result.avg_cache_expiration_age
        if math.isinf(adhoc) or math.isinf(ea):
            report.add_row(label, adhoc, ea, float("nan"))
            report.add_note(
                f"{label}: at least one scheme evicted nothing (age undefined); "
                "the paper's Table 1 likewise omits its largest size"
            )
        else:
            ratio = ea / adhoc if adhoc > 0 else float("inf")
            report.add_row(label, adhoc, ea, ratio)
    return report


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
) -> ExperimentReport:
    """Regenerate Table 1 (capacities stop at 100 MB, as in the paper)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    if capacities is None:
        available = capacities_for(scale)
        table1_labels = {label for label, _ in TABLE1_CAPACITIES}
        capacities = [c for c in available if c[0] in table1_labels]
    sweep = run_capacity_sweep(
        trace, capacities, base_config=base_config, jobs=jobs, memo=memo,
        engine=engine, events_dir=events_dir, snapshot_interval=snapshot_interval,
        progress=progress,
    )
    return build_report(sweep)
