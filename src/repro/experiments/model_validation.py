"""Model-vs-simulation validation: Che bounds around ad-hoc and EA.

The paper argues (analysis deferred to its technical report) that the EA
scheme's value is better *effective* use of the aggregate disk: ad-hoc
replication pushes the group toward N independent caches of X/N bytes,
while perfect placement approaches one logical cache of X bytes. This
experiment computes those two analytical bounds with the Che approximation
and places the simulated ad-hoc and EA hit rates between them — EA should
sit measurably closer to the shared-cache bound.

The Che approximation assumes the **independent reference model** (every
request an i.i.d. draw from the popularity law). The standard experiment
traces carry deliberate temporal locality, which IRM cannot represent and
which lets LRU beat the IRM bounds outright at small caches; this
experiment therefore generates its own IRM workload (``temporal_locality =
0``) unless an explicit trace is supplied.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional, Sequence, Tuple

from repro.analysis.che import group_hit_rate_bounds
from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_config
from repro.trace.record import Trace, patch_zero_sizes
from repro.trace.synthetic import generate_trace

EXPERIMENT_ID = "model"


def irm_workload(scale: str = "default", seed: int = 42) -> Trace:
    """The standard workload with temporal locality disabled (pure IRM)."""
    config = dc_replace(workload_config(scale, seed), temporal_locality=0.0)
    return generate_trace(config)


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """Compare Che-model bounds with simulated scheme hit rates (IRM workload)."""
    trace = trace if trace is not None else irm_workload(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    # The simulator patches zero sizes before replay; feed the model the
    # same effective workload.
    patched = Trace(list(patch_zero_sizes(iter(trace))))
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Model validation: Che bounds vs simulated hit rates",
        headers=[
            "aggregate",
            "che_replicated",
            "sim_adhoc",
            "sim_ea",
            "che_shared",
            "ea_position",
        ],
    )
    report.add_note(
        "ea_position: where EA sits between the bounds "
        "(0 = replicated/worst, 1 = shared/ideal); blank when bounds collapse"
    )
    sweep = run_capacity_sweep(trace, capacities)
    for label, capacity in capacities:
        bounds = group_hit_rate_bounds(patched, num_caches, capacity)
        adhoc = sweep.get("adhoc", label).result.metrics.hit_rate
        ea = sweep.get("ea", label).result.metrics.hit_rate
        spread = bounds.shared - bounds.replicated
        position = (ea - bounds.replicated) / spread if spread > 1e-9 else float("nan")
        report.add_row(
            label, bounds.replicated, adhoc, ea, bounds.shared, position
        )
    return report
