"""Second wave of extension experiments: coherence, demotion, heterogeneity.

* :func:`run_coherence_study` — the EA-vs-ad-hoc comparison with a TTL +
  If-Modified-Since consistency layer on both (does coherence traffic eat
  the placement benefit?).
* :func:`run_demotion_study` — the EA scheme with and without last-copy
  demotion on eviction (a global-memory-style extension the paper's related
  work [2, 7] suggests).
* :func:`run_heterogeneity_study` — skewed per-cache capacities. The EA
  scheme's entire premise is that contention differs across caches; a
  heterogeneous group makes that signal strong and persistent, so EA's
  advantage should *grow* relative to the homogeneous split.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.architecture.base import build_caches
from repro.architecture.distributed import DistributedGroup
from repro.coherence.group import CoherentGroup
from repro.coherence.model import ChangeModel, TTLModel
from repro.core.demotion import DemotionGroup
from repro.core.placement import make_scheme
from repro.experiments.report import ExperimentReport
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.replay import replay_trace
from repro.trace.record import Trace


def _resolve(scale: str, seed: int, trace: Optional[Trace],
             capacities: Optional[Sequence[Tuple[str, int]]]):
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    return trace, capacities


def run_coherence_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
    base_ttl: float = 1800.0,
    mean_change_interval: float = 86_400.0,
) -> ExperimentReport:
    """Placement comparison with a TTL/validation consistency layer."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-coherence",
        title=f"Extension: placement under coherence (TTL={base_ttl:.0f}s)",
        headers=[
            "aggregate",
            "scheme",
            "hit_rate",
            "validations",
            "304_rate",
            "coherence_misses",
        ],
    )
    for label, capacity in capacities:
        for scheme_name in ("adhoc", "ea"):
            group = DistributedGroup(
                build_caches(num_caches, capacity), make_scheme(scheme_name), seed=seed
            )
            coherent = CoherentGroup(
                group,
                ttl_model=TTLModel(base_ttl=base_ttl),
                change_model=ChangeModel(mean_change_interval=mean_change_interval),
            )
            metrics = replay_trace(coherent, trace)
            report.add_row(
                label,
                scheme_name,
                metrics.hit_rate,
                coherent.stats.validations,
                coherent.stats.validation_hit_rate,
                coherent.stats.coherence_misses,
            )
    return report


def run_demotion_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """EA alone vs naive demotion (all victims) vs filtered (re-referenced).

    Naive last-copy demotion floods the roomiest cache with one-timer
    victims and *hurts*; filtering to victims that were re-referenced at
    least once (``min_hits=2``) keeps only documents with demonstrated
    reuse. Both variants are reported against plain EA.
    """
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-demotion",
        title="Extension: EA scheme with last-copy demotion (naive vs filtered)",
        headers=[
            "aggregate",
            "ea_hit_rate",
            "naive_hit_rate",
            "filtered_hit_rate",
            "naive_demoted",
            "filtered_demoted",
        ],
    )
    for label, capacity in capacities:
        plain_group = DistributedGroup(
            build_caches(num_caches, capacity), make_scheme("ea"), seed=seed
        )
        plain = replay_trace(plain_group, trace)
        rates = {}
        counts = {}
        for kind, min_hits in (("naive", 1), ("filtered", 2)):
            demo_group = DistributedGroup(
                build_caches(num_caches, capacity), make_scheme("ea"), seed=seed
            )
            demotion = DemotionGroup(demo_group, min_hits=min_hits)
            rates[kind] = replay_trace(demotion, trace).hit_rate
            counts[kind] = demotion.stats.demoted
        report.add_row(
            label,
            plain.hit_rate,
            rates["naive"],
            rates["filtered"],
            counts["naive"],
            counts["filtered"],
        )
    return report


def run_replica_cap_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
    cap_fraction: float = 0.05,
) -> ExperimentReport:
    """EA with and without the size-aware replica cap.

    The cap (an extension, not in the paper) refuses to replicate any
    document bigger than ``cap_fraction`` of the requester's capacity,
    handing the fresh lease to the responder instead. Expected: small or
    neutral document-hit effect with a byte-hit improvement when the
    workload has heavy-tailed sizes.
    """
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ext-replica-cap",
        title=f"Extension: EA size-aware replica cap ({cap_fraction:.0%} of cache)",
        headers=[
            "aggregate",
            "ea_hit",
            "capped_hit",
            "ea_byte_hit",
            "capped_byte_hit",
        ],
    )
    for label, capacity in capacities:
        metrics = {}
        for kind, scheme in (
            ("plain", make_scheme("ea")),
            ("capped", make_scheme("ea", max_replica_fraction=cap_fraction)),
        ):
            group = DistributedGroup(
                build_caches(num_caches, capacity), scheme, seed=seed
            )
            metrics[kind] = replay_trace(group, trace)
        report.add_row(
            label,
            metrics["plain"].hit_rate,
            metrics["capped"].hit_rate,
            metrics["plain"].byte_hit_rate,
            metrics["capped"].byte_hit_rate,
        )
    return report


def run_admission_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """EA hit rate under admission gates: none / size-threshold / second-hit.

    Admission composes with placement: the scheme decides *where* a copy
    should live, the gate can veto the local write. One-hit-wonder
    filtering (second-hit) should help at contended sizes — web workloads
    are dominated by one-timer documents that waste cache bytes.
    """
    trace, capacities = _resolve(scale, seed, trace, capacities)
    gates = (
        ("none", None, None),
        ("size64k", "size-threshold", {"max_bytes": 64 * 1024}),
        ("second_hit", "second-hit", None),
    )
    report = ExperimentReport(
        experiment_id="ext-admission",
        title="Extension: EA hit rate by admission gate",
        headers=["aggregate", *[f"ea_{name}" for name, _, _ in gates]],
    )
    for label, capacity in capacities:
        rates = []
        for _name, admission_name, admission_kwargs in gates:
            group = DistributedGroup(
                build_caches(
                    num_caches,
                    capacity,
                    admission_name=admission_name,
                    admission_kwargs=admission_kwargs,
                ),
                make_scheme("ea"),
                seed=seed,
            )
            rates.append(replay_trace(group, trace).hit_rate)
        report.add_row(label, *rates)
    return report


def run_heterogeneity_study(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
    skew: Sequence[float] = (1.0, 1.0, 3.0, 7.0),
) -> ExperimentReport:
    """EA-vs-ad-hoc deltas on equal vs skewed capacity splits."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    if len(skew) != num_caches:
        raise ValueError("skew must have one weight per cache")
    report = ExperimentReport(
        experiment_id="ext-heterogeneous",
        title=f"Extension: heterogeneous capacities (shares {list(skew)})",
        headers=[
            "aggregate",
            "delta_equal",
            "delta_skewed",
            "ea_equal",
            "ea_skewed",
        ],
    )
    for label, capacity in capacities:
        deltas = {}
        ea_rates = {}
        for kind, shares in (("equal", None), ("skewed", skew)):
            rates = {}
            for scheme_name in ("adhoc", "ea"):
                group = DistributedGroup(
                    build_caches(num_caches, capacity, capacity_shares=shares),
                    make_scheme(scheme_name),
                    seed=seed,
                )
                rates[scheme_name] = replay_trace(group, trace).hit_rate
            deltas[kind] = rates["ea"] - rates["adhoc"]
            ea_rates[kind] = rates["ea"]
        report.add_row(
            label, deltas["equal"], deltas["skewed"], ea_rates["equal"], ea_rates["skewed"]
        )
    return report
