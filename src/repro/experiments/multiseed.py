"""Multi-seed experiment replication with confidence summaries.

One synthetic trace is one draw from the workload model; the paper's single
BU trace has the same limitation. This module reruns a scheme comparison
over several independently seeded traces and reports mean, standard
deviation and a normal-approximation 95 % confidence half-width per cell, so
"EA beats ad-hoc by X points" can be stated with error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_config
from repro.simulation.simulator import SimulationConfig
from repro.trace.synthetic import generate_trace


@dataclass(frozen=True)
class MeanStd:
    """Mean, standard deviation, and 95 % CI half-width of a sample."""

    mean: float
    std: float
    ci95: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "MeanStd":
        if not values:
            raise ExperimentError("cannot summarise an empty sample")
        n = len(values)
        mean = math.fsum(values) / n
        if n == 1:
            return cls(mean=mean, std=0.0, ci95=0.0, n=1)
        variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
        return cls(mean=mean, std=std, ci95=1.96 * std / math.sqrt(n), n=n)

    def __str__(self) -> str:
        return f"{self.mean:.4f}±{self.ci95:.4f}"


def run_multi_seed_comparison(
    scale: str = "tiny",
    seed: int = 1,
    num_seeds: int = 5,
    seeds: Optional[Sequence[int]] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
) -> ExperimentReport:
    """EA-minus-ad-hoc hit-rate delta with error bars across seeds.

    Each seed generates an independent workload; the sweep runs both schemes
    on it. Cells report the delta's mean ± 95 % CI — a delta whose CI
    excludes zero is a statistically supported win.

    Args:
        seed: First seed; ``num_seeds`` consecutive seeds are used unless an
            explicit ``seeds`` sequence is given.
    """
    if seeds is None:
        seeds = tuple(range(seed, seed + num_seeds))
    if not seeds:
        raise ExperimentError("need at least one seed")
    capacities = capacities if capacities is not None else capacities_for(scale)
    deltas: Dict[str, List[float]] = {label: [] for label, _ in capacities}
    ea_rates: Dict[str, List[float]] = {label: [] for label, _ in capacities}
    for seed in seeds:
        trace = generate_trace(workload_config(scale, seed))
        config = base_config if base_config is not None else SimulationConfig()
        sweep = run_capacity_sweep(
            trace, capacities, base_config=replace(config, seed=seed),
            jobs=jobs, memo=memo, engine=engine,
        )
        for label, _ in capacities:
            adhoc = sweep.get("adhoc", label).result.metrics.hit_rate
            ea = sweep.get("ea", label).result.metrics.hit_rate
            deltas[label].append(ea - adhoc)
            ea_rates[label].append(ea)

    report = ExperimentReport(
        experiment_id="multiseed",
        title=f"EA-minus-ad-hoc hit-rate delta across {len(seeds)} seeds (mean ± 95% CI)",
        headers=["aggregate", "ea_hit_rate", "delta_mean", "delta_ci95", "significant"],
    )
    for label, _ in capacities:
        summary = MeanStd.of(deltas[label])
        ea_summary = MeanStd.of(ea_rates[label])
        significant = summary.mean - summary.ci95 > 0
        report.add_row(label, ea_summary.mean, summary.mean, summary.ci95, significant)
    return report
