"""Ablation experiments for the design choices DESIGN.md calls out.

The paper under-specifies three knobs and skips evaluating a fourth; each
gets an ablation driver here:

* :func:`run_window_ablation` — the expiration-age window ("a finite time
  period"): cumulative vs last-K-evictions vs trailing-time.
* :func:`run_tie_break_ablation` — requester-wins vs responder-wins when
  both expiration ages are equal (notably during cold start, when both are
  infinite).
* :func:`run_policy_ablation` — the claim that the EA scheme "works well
  with various document replacement algorithms": LRU vs LFU vs GDSF.
* :func:`run_architecture_ablation` — the hierarchical architecture of
  Section 3.3, described but never evaluated in the paper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace


def _resolve(scale: str, seed: int, trace: Optional[Trace],
             capacities: Optional[Sequence[Tuple[str, int]]]):
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    return trace, capacities


def run_window_ablation(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    window_modes: Sequence[str] = ("cumulative", "count", "time"),
) -> ExperimentReport:
    """EA hit rate under each expiration-age window interpretation."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ablation-window",
        title="Ablation: EA hit rate by expiration-age window mode",
        headers=["aggregate", *[f"ea_{mode}" for mode in window_modes]],
    )
    sweeps = {
        mode: run_capacity_sweep(
            trace,
            capacities,
            schemes=("ea",),
            base_config=SimulationConfig(window_mode=mode),
        )
        for mode in window_modes
    }
    for label, _ in capacities:
        report.add_row(
            label,
            *[sweeps[mode].get("ea", label).result.metrics.hit_rate for mode in window_modes],
        )
    return report


def run_tie_break_ablation(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
) -> ExperimentReport:
    """EA hit rate with requester-wins vs responder-wins tie breaking."""
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ablation-ties",
        title="Ablation: EA hit rate by tie-break rule (equal expiration ages)",
        headers=["aggregate", "ea_requester_wins", "ea_responder_wins", "delta"],
    )
    sweeps = {
        tie: run_capacity_sweep(
            trace,
            capacities,
            schemes=("ea",),
            base_config=SimulationConfig(tie_break=tie),
        )
        for tie in ("requester", "responder")
    }
    for label, _ in capacities:
        requester = sweeps["requester"].get("ea", label).result.metrics.hit_rate
        responder = sweeps["responder"].get("ea", label).result.metrics.hit_rate
        report.add_row(label, requester, responder, requester - responder)
    return report


def run_policy_ablation(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    policies: Sequence[str] = ("lru", "lfu", "gdsf"),
) -> ExperimentReport:
    """EA-minus-ad-hoc hit-rate delta under different replacement policies.

    The paper claims scheme/policy independence but evaluates only LRU; a
    positive delta under LFU and GDSF supports the claim.
    """
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ablation-policy",
        title="Ablation: EA benefit (hit-rate delta vs ad-hoc) by replacement policy",
        headers=["aggregate", *[f"delta_{p}" for p in policies]],
    )
    sweeps = {
        policy: run_capacity_sweep(
            trace,
            capacities,
            base_config=SimulationConfig(policy=policy),
        )
        for policy in policies
    }
    for label, _ in capacities:
        deltas = []
        for policy in policies:
            sweep = sweeps[policy]
            deltas.append(
                sweep.get("ea", label).result.metrics.hit_rate
                - sweep.get("adhoc", label).result.metrics.hit_rate
            )
        report.add_row(label, *deltas)
    return report


def run_measure_ablation(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_caches: int = 4,
) -> ExperimentReport:
    """Expiration age vs Average Document Life Time as the contention signal.

    Section 3.1 argues lifetime "doesn't accurately reflect the cache
    contention" because it ignores hits; this ablation runs the identical
    EA machinery on both measures (and ad-hoc as the reference) so the
    argument is empirical rather than rhetorical.
    """
    from repro.architecture.base import build_caches
    from repro.architecture.distributed import DistributedGroup
    from repro.core.placement import make_scheme
    from repro.simulation.replay import replay_trace

    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ablation-measure",
        title="Ablation: contention measure — expiration age vs document lifetime",
        headers=["aggregate", "adhoc", "ea_expiration_age", "ea_lifetime"],
    )
    for label, capacity in capacities:
        rates = {}
        for name, scheme_name, measure in (
            ("adhoc", "adhoc", None),
            ("expage", "ea", None),
            ("lifetime", "ea", "lifetime"),
        ):
            group = DistributedGroup(
                build_caches(num_caches, capacity, contention_measure=measure),
                make_scheme(scheme_name),
                seed=seed,
            )
            rates[name] = replay_trace(group, trace).hit_rate
        report.add_row(label, rates["adhoc"], rates["expage"], rates["lifetime"])
    return report


def run_architecture_ablation(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    num_parents: int = 1,
) -> ExperimentReport:
    """Distributed vs hierarchical groups under both schemes.

    The hierarchical group adds ``num_parents`` parent caches above the
    leaves; the aggregate capacity is split across *all* caches, so this
    also probes whether spending disk on a shared parent beats spreading it
    across peers.
    """
    trace, capacities = _resolve(scale, seed, trace, capacities)
    report = ExperimentReport(
        experiment_id="ablation-architecture",
        title="Ablation: hit rate by architecture (distributed vs hierarchical)",
        headers=[
            "aggregate",
            "adhoc_distributed",
            "ea_distributed",
            "adhoc_hierarchical",
            "ea_hierarchical",
        ],
    )
    distributed = run_capacity_sweep(
        trace, capacities, base_config=SimulationConfig(architecture="distributed")
    )
    hierarchical = run_capacity_sweep(
        trace,
        capacities,
        base_config=SimulationConfig(
            architecture="hierarchical", num_parents=num_parents
        ),
    )
    for label, _ in capacities:
        report.add_row(
            label,
            distributed.get("adhoc", label).result.metrics.hit_rate,
            distributed.get("ea", label).result.metrics.hit_rate,
            hierarchical.get("adhoc", label).result.metrics.hit_rate,
            hierarchical.get("ea", label).result.metrics.hit_rate,
        )
    return report
