"""Group-size sweep — the paper's 2-, 4-, and 8-cache results (Section 4.2).

The paper quotes the EA-vs-ad-hoc improvements for an 8-cache group (about
+6.5 % document hit rate at 100 KB shrinking to +2.5 % at 100 MB; byte hit
rate +4 % shrinking to +1.5 %) and runs all experiments for N in {2, 4, 8}.
This driver reports EA-minus-ad-hoc document and byte hit-rate deltas for
every (group size, capacity) cell. Expected shape: deltas positive,
decreasing with capacity, and growing with group size (more caches = more
replication for the ad-hoc scheme to waste space on).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import run_capacity_sweep
from repro.experiments.workload import PAPER_GROUP_SIZES, capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "groupsize"


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    group_sizes: Sequence[int] = PAPER_GROUP_SIZES,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
) -> ExperimentReport:
    """Regenerate the 2/4/8-cache comparison."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    template = base_config if base_config is not None else SimulationConfig()
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Group-size sweep: EA minus ad-hoc hit-rate deltas by group size",
        headers=[
            "caches",
            "aggregate",
            "adhoc_hit_rate",
            "ea_hit_rate",
            "hit_delta",
            "adhoc_byte_hit",
            "ea_byte_hit",
            "byte_delta",
        ],
    )
    for num_caches in group_sizes:
        config = replace(template, num_caches=num_caches)
        sweep = run_capacity_sweep(
            trace, capacities, base_config=config, jobs=jobs, memo=memo,
            engine=engine,
        )
        for label in sweep.capacity_labels:
            adhoc = sweep.get("adhoc", label).result.metrics
            ea = sweep.get("ea", label).result.metrics
            report.add_row(
                num_caches,
                label,
                adhoc.hit_rate,
                ea.hit_rate,
                ea.hit_rate - adhoc.hit_rate,
                adhoc.byte_hit_rate,
                ea.byte_hit_rate,
                ea.byte_hit_rate - adhoc.byte_hit_rate,
            )
    return report
