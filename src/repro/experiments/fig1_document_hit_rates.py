"""Figure 1 — cumulative document hit rates, ad-hoc vs EA (4-cache group).

Reproduces the paper's Figure 1: hit rate of both placement schemes at
aggregate cache sizes of 100 KB ... 1 GB. The expected shape: EA above
ad-hoc everywhere, with the gap largest at small sizes and shrinking as the
aggregate size approaches the workload footprint.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.sweep import SweepResult, run_capacity_sweep
from repro.experiments.workload import capacities_for, workload_trace
from repro.simulation.simulator import SimulationConfig
from repro.trace.record import Trace

EXPERIMENT_ID = "fig1"


def build_report(sweep: SweepResult) -> ExperimentReport:
    """Project a completed sweep into the Figure 1 series."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Figure 1: Document hit rates (cumulative), ad-hoc vs EA",
        headers=["aggregate", "adhoc_hit_rate", "ea_hit_rate", "ea_minus_adhoc"],
    )
    for label in sweep.capacity_labels:
        adhoc = sweep.get("adhoc", label).result.metrics.hit_rate
        ea = sweep.get("ea", label).result.metrics.hit_rate
        report.add_row(label, adhoc, ea, ea - adhoc)
    return report


def run(
    scale: str = "default",
    seed: int = 42,
    trace: Optional[Trace] = None,
    capacities: Optional[Sequence[Tuple[str, int]]] = None,
    base_config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
    memo=None,
    engine: Optional[str] = None,
    events_dir: Optional[str] = None,
    snapshot_interval: float = 0.0,
    progress=None,
) -> ExperimentReport:
    """Regenerate Figure 1 (4-cache distributed group, LRU, both schemes)."""
    trace = trace if trace is not None else workload_trace(scale, seed)
    capacities = capacities if capacities is not None else capacities_for(scale)
    sweep = run_capacity_sweep(
        trace, capacities, base_config=base_config, jobs=jobs, memo=memo,
        engine=engine, events_dir=events_dir, snapshot_interval=snapshot_interval,
        progress=progress,
    )
    return build_report(sweep)
