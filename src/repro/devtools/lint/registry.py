"""Rule registry and the visitor base class every lint rule extends.

A rule is an :class:`ast.NodeVisitor` subclass with a ``code`` (``RPRnnn``),
a one-line ``summary``, and an optional package scope. Registering is one
decorator::

    @register
    class MyRule(RuleVisitor):
        code = "RPR042"
        summary = "what it guards"
        packages = ("core", "cache")   # repro subpackages; None = all files

        def visit_Call(self, node):
            self.report(node, "explanation")
            self.generic_visit(node)

Scoping: ``packages`` names first-level ``repro`` subpackages the rule
applies to (``"core"``, ``"cache"``, ...; ``""`` is the ``repro`` package
root itself). ``None`` applies the rule to every linted file, including
files outside the ``repro`` tree (e.g. ``tests/``). Rules with
``applies_to_tests = False`` skip test files regardless of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.devtools.lint.findings import Finding


@dataclass
class FileContext:
    """Everything a rule may need to know about the file being linted.

    Attributes:
        path: Display path (relative when the runner was given one).
        source: Full file text.
        tree: Parsed AST of ``source``.
        package: First-level ``repro`` subpackage this module lives in
            (``"core"``, ``"cache"``, ...), ``""`` for modules directly
            under ``repro/``, or ``None`` for files outside the tree.
        is_test: Whether this is a test file (under ``tests/``, named
            ``test_*.py`` / ``conftest.py``).
    """

    path: str
    source: str
    tree: ast.Module
    package: Optional[str] = None
    is_test: bool = False
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class RuleVisitor(ast.NodeVisitor):
    """Base class for lint rules: an AST visitor that accumulates findings."""

    #: Unique rule code, ``RPRnnn``.
    code: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: ``repro`` subpackages the rule applies to; ``None`` = every file.
    packages: Optional[Tuple[str, ...]] = None
    #: Whether the rule also runs on test files.
    applies_to_tests: bool = True

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether this rule should run on ``ctx`` at all."""
        if ctx.is_test and not cls.applies_to_tests:
            return False
        if cls.packages is None:
            return True
        return ctx.package is not None and ctx.package in cls.packages

    def run(self) -> List[Finding]:
        """Visit the tree and return the findings. Override for pre-passes."""
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message,
            )
        )


#: All registered rules, keyed by code.
REGISTRY: Dict[str, Type[RuleVisitor]] = {}


def register(cls: Type[RuleVisitor]) -> Type[RuleVisitor]:
    """Class decorator adding a rule to :data:`REGISTRY`."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[RuleVisitor]]:
    """Registered rules in code order."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]
