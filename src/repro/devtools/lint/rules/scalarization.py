"""Scalarization guard for the vectorised hot-path modules.

``repro.fastpath.batch`` earns its throughput by applying whole blocks of
work through numpy gathers and scatters; its scalar protocol path
deliberately reads the buffer-protocol columns (``array``/``bytearray``)
element-wise instead. The regression RPR012 exists to catch is the quiet
middle ground: a Python ``for`` loop iterating a *numpy array* element by
element inside the vectorised helpers — each step materialises a numpy
scalar, which is several times slower than either the vector op it
replaced or the plain-int loop it pretends to be. The sanctioned escape
hatch when per-element Python iteration is genuinely needed is
``.tolist()`` (one bulk conversion, then plain ints), which this rule
deliberately does not flag.

The rule covers every module that mixes numpy arrays with scalar loops:
the batch engine itself, the numpy gate (``fastpath/numeric.py``), and
the packed-trace decoder (``trace/columnar_io.py``), whose numpy branch
decodes columns via ``frombuffer`` and must hand them to the interner as
``.tolist()`` columns, never by element-wise iteration.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.lint.registry import FileContext, RuleVisitor, register

#: Builtins that iterate their argument element-wise: wrapping a numpy
#: array in one of these is the same scalarization as a bare ``for``.
_ELEMENTWISE_WRAPPERS: Set[str] = {
    "enumerate",
    "zip",
    "map",
    "filter",
    "reversed",
    "sorted",
    "list",
    "tuple",
    "set",
}


def _is_np_call(node: ast.AST) -> bool:
    """Whether ``node`` is a call rooted at the ``np`` module object
    (``np.frombuffer(...)``, ``np.maximum.accumulate(...)``, ...)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    while isinstance(func, ast.Attribute):
        func = func.value
    return isinstance(func, ast.Name) and func.id == "np"


@register
class BatchScalarizationRule(RuleVisitor):
    """RPR012: no Python-level per-element iteration over numpy arrays
    in the vectorised hot-path modules (``fastpath/batch.py``,
    ``fastpath/numeric.py``, ``trace/columnar_io.py``).

    Tracks names bound to numpy expressions (``x = np.flatnonzero(...)``
    and anything derived from a tracked name by subscripting, arithmetic,
    or comparison) and flags a ``for`` statement or comprehension whose
    iterable is such an array — directly, or wrapped in an element-wise
    builtin (``enumerate``/``zip``/``list``/...). Iterating the result of
    ``.tolist()`` is the sanctioned bulk escape and is never flagged; a
    deliberate exception takes ``# repro: noqa[RPR012]``.
    """

    code = "RPR012"
    summary = "per-element Python iteration over a numpy array in bulk hot-path code"
    packages = ("fastpath", "trace")

    #: Module basenames the rule runs against: the vectorised bulk paths.
    #: The other fastpath/trace modules loop over plain lists by design.
    _SCOPED_FILES: Set[str] = {"batch.py", "numeric.py", "columnar_io.py"}

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._np_names: Set[str] = set()

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Scoped to the modules that hold numpy bulk code; the scalar
        columns the other fastpath/trace modules loop over are lists."""
        if not super().applies(ctx):
            return False
        name = ctx.path.replace("\\", "/").rsplit("/", 1)[-1]
        return name in cls._SCOPED_FILES

    def _arrayish(self, node: ast.AST) -> bool:
        """Whether ``node`` statically looks like a numpy array value."""
        if isinstance(node, ast.Name):
            return node.id in self._np_names
        if _is_np_call(node):
            return True
        if isinstance(node, ast.Subscript):
            return self._arrayish(node.value)
        if isinstance(node, ast.BinOp):
            return self._arrayish(node.left) or self._arrayish(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._arrayish(node.operand)
        if isinstance(node, ast.Compare):
            return self._arrayish(node.left) or any(
                self._arrayish(c) for c in node.comparators
            )
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._arrayish(node.value):
                self._np_names.add(name)
            else:
                self._np_names.discard(name)
        self.generic_visit(node)

    def _check_iterable(self, node: ast.AST, anchor: ast.AST) -> None:
        if self._arrayish(node):
            self.report(
                anchor,
                "per-element Python iteration over a numpy array "
                "materialises one numpy scalar per step; use a vector "
                "op, or `.tolist()` once if a scalar loop is required",
            )
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ELEMENTWISE_WRAPPERS
        ):
            for arg in node.args:
                if self._arrayish(arg):
                    self.report(
                        anchor,
                        f"`{node.func.id}(...)` over a numpy array iterates "
                        "it element-wise in Python; use a vector op, or "
                        "`.tolist()` once if a scalar loop is required",
                    )
                    return

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, node)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter, node.iter)
        self.generic_visit(node)
