"""RPR003: float equality on expiration ages outside the sanctioned helper.

The EA scheme's tie-break hinges on comparing two expiration ages — floats
produced by division and windowed averaging. Scattering ``==`` / ``!=`` on
those values around the codebase invites two failure modes: accidental
near-miss ties after a refactor reorders arithmetic, and silent divergence
between call sites that each reimplement the tie test. Exactly one place is
allowed to compare ages for equality: :func:`repro.core.placement.ages_equal`,
which documents why exact comparison is correct there (both operands come
from the identical deterministic computation, and the meaningful tie is the
double-infinity cold start).
"""

from __future__ import annotations

import ast
from typing import Union

from repro.devtools.lint.registry import FileContext, RuleVisitor, register

#: The one function allowed to test expiration ages for equality.
SANCTIONED_HELPER = "ages_equal"


def _looks_like_age(node: ast.expr) -> bool:
    """Whether an expression syntactically denotes an expiration age."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, (ast.Name, ast.Attribute)):
            return _age_identifier(
                func.id if isinstance(func, ast.Name) else func.attr
            )
        return False
    else:
        return False
    return _age_identifier(name)


def _age_identifier(name: str) -> bool:
    return name == "age" or name.endswith("_age") or name == "expiration_age"


@register
class AgeEqualityRule(RuleVisitor):
    """Flag ``==`` / ``!=`` between expiration-age expressions."""

    code = "RPR003"
    summary = (
        "float ==/!= on expiration ages outside "
        "repro.core.placement.ages_equal"
    )
    packages = ("core", "cache", "simulation", "architecture")

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._helper_depth = 0

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        sanctioned = node.name == SANCTIONED_HELPER
        if sanctioned:
            self._helper_depth += 1
        self.generic_visit(node)
        if sanctioned:
            self._helper_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._helper_depth == 0:
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _looks_like_age(left) or _looks_like_age(right)
                ):
                    self.report(
                        node,
                        "expiration ages are floats; test ties via "
                        "repro.core.placement.ages_equal, not ==/!=",
                    )
                    break
        self.generic_visit(node)
