"""Generic hygiene rules: public docstrings and mutable default arguments.

RPR006 keeps the public surface self-describing: every module, public
class, and public module-level function carries a docstring (methods are
left to the class docstring's discretion — flagging every small override
would bury the signal). RPR007 is the classic shared-mutable-default trap:
``def f(items=[])`` aliases one list across calls, which in a simulator
means state leaking between runs that should be independent.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.devtools.lint.registry import RuleVisitor, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls producing a fresh mutable container are still shared across calls
#: when used as a default.
_MUTABLE_FACTORIES = ("list", "dict", "set", "defaultdict", "OrderedDict", "deque")


@register
class DocstringRule(RuleVisitor):
    """RPR006: missing docstring on a module, public class, or function."""

    code = "RPR006"
    summary = "missing docstring on module / public class / public function"
    applies_to_tests = False

    def visit_Module(self, node: ast.Module) -> None:
        if ast.get_docstring(node) is None:
            self.report(node, "module has no docstring")
        self._check_body(node.body, top_level=True)

    def _check_body(self, body: list, top_level: bool) -> None:
        for child in body:
            if isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    if ast.get_docstring(child) is None:
                        self.report(
                            child, f"public class `{child.name}` has no docstring"
                        )
                    self._check_body(child.body, top_level=False)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if top_level and not child.name.startswith("_"):
                    if ast.get_docstring(child) is None:
                        self.report(
                            child,
                            f"public function `{child.name}` has no docstring",
                        )


@register
class MutableDefaultRule(RuleVisitor):
    """RPR007: mutable default argument shared across calls."""

    code = "RPR007"
    summary = "mutable default argument (use None + fresh construction)"

    def _check_function(self, node: _FunctionNode) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
                self.report(
                    default,
                    f"mutable default in `{node.name}(...)` is shared across "
                    "calls; default to None and construct inside",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            ):
                self.report(
                    default,
                    f"mutable default `{default.func.id}(...)` in "
                    f"`{node.name}(...)` is shared across calls; default to "
                    "None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)
