"""Multiprocessing rules for the parallel execution package.

``multiprocessing`` pickles the callable it ships to worker processes, and
pickle resolves functions *by qualified name*: only module-level (top-level)
functions survive the trip. Lambdas and functions nested inside another
function raise ``PicklingError`` — but only at runtime, and only on code
paths that actually fan out, which makes the mistake easy to merge. RPR008
catches it statically in ``repro.parallel``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import RuleVisitor, register

#: Pool / executor methods whose first argument is a callable that must
#: pickle across the process boundary.
_POOL_METHODS: Set[str] = {
    "map",
    "imap",
    "imap_unordered",
    "apply",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "submit",
}


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function's body."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(outer):
            if node is outer:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
    return nested


@register
class UnpicklablePoolCallableRule(RuleVisitor):
    """RPR008: only module-level functions may be submitted to a pool.

    Flags a lambda, or a name bound to a nested function, passed as the
    callable to ``Pool.map`` / ``imap`` / ``apply_async`` / ``submit`` and
    friends inside ``repro.parallel``. Pickle resolves callables by
    qualified name, so anything not importable at module top level dies at
    dispatch time with ``PicklingError`` — and only on runs that actually
    fan out, which is exactly when you least want a surprise.
    """

    code = "RPR008"
    summary = "unpicklable callable handed to a multiprocessing pool"
    packages = ("parallel",)

    def run(self) -> List[Finding]:
        self._nested = _nested_function_names(self.ctx.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and node.args
        ):
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                self.report(
                    target,
                    f"lambda passed to `{func.attr}` cannot pickle to a "
                    "worker process; define a module-level function",
                )
            elif isinstance(target, ast.Name) and target.id in self._nested:
                self.report(
                    target,
                    f"nested function `{target.id}` passed to `{func.attr}` "
                    "cannot pickle to a worker process; move it to module "
                    "top level",
                )
        self.generic_visit(node)
