"""Determinism rules: virtual clock only, seeded randomness only.

The whole reproduction stands on bit-identical replays: the same trace and
seed must produce the same result on every run and every machine (the same
property adaptive-caching simulation work depends on to trust its numbers).
Wall-clock reads and process-global RNG state are the two classic ways that
guarantee quietly dies, so both are machine-checked here.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import RuleVisitor, register

#: Wall-clock attributes of the ``time`` module (monotonic clocks included:
#: they are just as non-replayable as ``time.time``).
_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}

#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_FUNCS = {"now", "utcnow", "today"}


class _ImportTracker(ast.NodeVisitor):
    """Pre-pass resolving which local names refer to clock/RNG sources."""

    def __init__(self) -> None:
        #: local alias -> canonical module name ("time", "datetime", "random")
        self.module_aliases: Dict[str, str] = {}
        #: local names bound by ``from time import time`` etc.
        self.direct_clock_names: Set[str] = set()
        #: local names bound to the datetime/date classes.
        self.datetime_classes: Set[str] = set()
        #: local names bound by ``from random import <module-level fn>``.
        self.direct_random_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("time", "datetime", "random"):
                self.module_aliases[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self.direct_clock_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in ("Random", "SystemRandom"):
                    self.direct_random_names.add(alias.asname or alias.name)


def _track_imports(tree: ast.Module) -> _ImportTracker:
    tracker = _ImportTracker()
    tracker.visit(tree)
    return tracker


@register
class WallClockRule(RuleVisitor):
    """RPR001: no wall-clock reads in simulation-facing packages.

    Simulation, cache, and placement code must take time as an explicit
    ``now`` parameter fed from the trace / event scheduler (the virtual
    clock). ``time.time()``, ``time.monotonic()``, ``datetime.now()`` and
    friends make replays non-reproducible and couple results to host speed.
    """

    code = "RPR001"
    summary = "wall-clock read in virtual-clock code (use the `now` parameter)"
    packages = ("core", "cache", "simulation", "architecture")

    def run(self) -> "List[Finding]":
        self._imports = _track_imports(self.ctx.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._imports.direct_clock_names:
                self.report(node, f"call to wall clock `{func.id}()`")
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                module = self._imports.module_aliases.get(owner.id)
                if module == "time" and func.attr in _TIME_FUNCS:
                    self.report(node, f"call to wall clock `time.{func.attr}()`")
                elif owner.id in self._imports.datetime_classes and func.attr in _DATETIME_FUNCS:
                    self.report(node, f"call to wall clock `{owner.id}.{func.attr}()`")
            elif (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and self._imports.module_aliases.get(owner.value.id) == "datetime"
                and owner.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                self.report(
                    node, f"call to wall clock `datetime.{owner.attr}.{func.attr}()`"
                )
        self.generic_visit(node)


@register
class UnseededRandomRule(RuleVisitor):
    """RPR002: no module-level or unseeded randomness in ``repro`` code.

    All stochastic behaviour must flow from an explicitly seeded
    ``random.Random(seed)`` instance that is injected or constructed from a
    config seed. The module-level functions (``random.random()``,
    ``random.choice()``, ...) share hidden global state that any import can
    perturb, and ``random.Random()`` without a seed draws from the OS.
    """

    code = "RPR002"
    summary = "module-level or unseeded `random` (inject a seeded Random)"
    packages = (
        "",
        "core",
        "cache",
        "simulation",
        "architecture",
        "trace",
        "network",
        "digest",
        "prefetch",
        "coherence",
        "protocol",
        "experiments",
        "analysis",
    )

    def run(self) -> "List[Finding]":
        self._imports = _track_imports(self.ctx.tree)
        return super().run()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ("Random", "SystemRandom"):
                    self.report(
                        node,
                        f"`from random import {alias.name}` binds the shared "
                        "module-level RNG; import `Random` and seed it",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if self._imports.module_aliases.get(func.value.id) == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self.report(
                            node,
                            "`random.Random()` without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                elif func.attr != "SystemRandom":
                    self.report(
                        node,
                        f"module-level `random.{func.attr}()` uses hidden "
                        "global state; use an injected seeded Random",
                    )
        elif isinstance(func, ast.Name) and func.id in self._imports.direct_random_names:
            self.report(
                node,
                f"call to module-level RNG `{func.id}()`; use an injected "
                "seeded Random",
            )
        self.generic_visit(node)
