"""Lint rule implementations; importing this package registers every rule."""

from repro.devtools.lint.rules import (  # noqa: F401  (import-for-side-effect)
    configaccess,
    dataclasses,
    determinism,
    floats,
    hotloop,
    obsio,
    ordering,
    parallel,
    scalarization,
    style,
)
