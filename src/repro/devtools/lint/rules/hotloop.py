"""Allocation rules for the columnar fast-path package.

``repro.fastpath`` exists to replay the request loop without per-request
object churn: its engine works over pre-interned integer arrays, and its
throughput edge over the object core comes precisely from *not* building a
``CacheEntry`` / ``HttpRequest`` / dict per event. An innocuous-looking
dataclass construction or dict comprehension added inside one of its loops
quietly reintroduces the allocation cost the package was written to remove
— and nothing fails, the engine just gets slower. RPR009 catches that
statically.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.lint.registry import RuleVisitor, register

#: Per-event object types the object engine allocates and the columnar
#: engine must not: constructing any of these inside a fastpath loop body
#: is per-request allocation by definition.
_PER_REQUEST_CLASSES: Set[str] = {
    "CacheEntry",
    "Document",
    "EvictionRecord",
    "RequestOutcome",
    "HttpRequest",
    "HttpResponse",
    "ICPMessage",
    "TraceRecord",
}


@register
class HotLoopAllocationRule(RuleVisitor):
    """RPR009: no per-request object allocation in fastpath hot loops.

    Flags, inside the body of a ``for``/``while`` loop (or a ``while``
    condition, which also runs per iteration) in ``repro.fastpath``:

    * construction of a per-event repro dataclass (``CacheEntry``,
      ``HttpRequest``, ``EvictionRecord``, ...), whether called bare or as
      an attribute (``http.HttpRequest(...)``);
    * a dict comprehension, which allocates a fresh dict per iteration.

    One-off allocations outside loops (setup, result assembly, error
    paths) are fine; a deliberate exception inside a loop takes
    ``# repro: noqa[RPR009]``.
    """

    code = "RPR009"
    summary = "per-request object allocation inside a fastpath hot loop"
    packages = ("fastpath",)

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._loop_depth = 0

    def _visit_per_iteration(self, nodes) -> None:
        self._loop_depth += 1
        for child in nodes:
            self.visit(child)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        # The iterable expression evaluates once; only the body repeats.
        self.visit(node.iter)
        self.visit(node.target)
        self._visit_per_iteration(node.body)
        for child in node.orelse:
            self.visit(child)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._visit_per_iteration([node.test, *node.body])
        for child in node.orelse:
            self.visit(child)

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth > 0:
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _PER_REQUEST_CLASSES:
                self.report(
                    node,
                    f"`{name}` constructed inside a fastpath loop allocates "
                    "one object per request; hoist it out or work on the "
                    "interned arrays",
                )
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self._loop_depth > 0:
            self.report(
                node,
                "dict comprehension inside a fastpath loop allocates a dict "
                "per iteration; build it once outside the loop",
            )
        self.generic_visit(node)
