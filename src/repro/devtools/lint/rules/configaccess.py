"""Config-access rule for the columnar fast-path package.

The columnar engine reads :class:`SimulationConfig` exactly once, at
setup: every field it honours is hoisted into a local (``ea =
config.scheme == "ea"``) or baked into the interned arrays before the
replay loop starts. That discipline is what makes engine parity
*auditable* — ``repro analyze parity`` diffs the setup reads against the
fallback matrix. A ``config.field`` read inside the hot loop bypasses
that choke point twice over: it re-pays an attribute lookup per request,
and it lets a field slip into one branch of the engine where the parity
diff (and the next maintainer) will not look for it. RPR010 keeps every
config read in the setup phase.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.registry import FileContext, RuleVisitor, register

#: Variable names conventionally holding a SimulationConfig (kept in sync
#: with repro.devtools.analysis.dataflow.CONFIG_RECEIVER_NAMES).
_CONFIG_NAMES = frozenset({"config", "cfg", "base_config", "sim_config"})


@register
class FastpathConfigAccessRule(RuleVisitor):
    """RPR010: no direct SimulationConfig access in fastpath hot loops.

    Flags ``config.<anything>`` (receiver named ``config`` / ``cfg`` /
    ``base_config`` / ``sim_config``, or ``self.config`` /
    ``<expr>.config``) inside the body of a ``for``/``while`` loop in
    ``repro.fastpath``. Hoist the read into a local during engine setup —
    that is where the parity analyzer, and the fallback matrix, expect
    every config dependency to be visible.
    """

    code = "RPR010"
    summary = "SimulationConfig attribute access inside a fastpath hot loop"
    packages = ("fastpath",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._loop_depth = 0

    def _visit_per_iteration(self, nodes: Iterable[ast.AST]) -> None:
        self._loop_depth += 1
        for child in nodes:
            self.visit(child)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        # The iterable evaluates once; only target/body repeat.
        self.visit(node.iter)
        self._visit_per_iteration([node.target, *node.body])
        for child in node.orelse:
            self.visit(child)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._visit_per_iteration([node.test, *node.body])
        for child in node.orelse:
            self.visit(child)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._loop_depth > 0:
            value = node.value
            is_config = (
                isinstance(value, ast.Name) and value.id in _CONFIG_NAMES
            ) or (isinstance(value, ast.Attribute) and value.attr == "config")
            if is_config:
                self.report(
                    node,
                    f"`config.{node.attr}` read inside a fastpath loop "
                    "bypasses the columnar setup phase; hoist it into a "
                    "local before the loop so the parity audit sees it",
                )
        self.generic_visit(node)
