"""I/O hygiene for instrumented hot loops.

The observability layer (``repro.obs``) is the *only* sanctioned output
channel from the engines: both cores emit events through an injected
``RunRecorder``, which compiles to a no-op when disabled and buffers
through one sink. A stray ``print`` or ad-hoc file write inside a
simulation loop bypasses that contract twice over — it costs syscalls per
request even when observability is off, and it produces output the event
schema, the parity tests, and the manifests never see. RPR011 keeps the
hot packages honest.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.lint.registry import RuleVisitor, register

#: Direct-output callables that must not appear per-iteration: console
#: writes, file opens, and raw stream writes.
_DIRECT_IO_NAMES: Set[str] = {"print", "open"}
_DIRECT_IO_ATTRS: Set[str] = {"write", "writelines"}


@register
class HotLoopDirectIORule(RuleVisitor):
    """RPR011: no direct console/file I/O inside simulation hot loops.

    Flags, inside the body of a ``for``/``while`` loop (or a ``while``
    condition) in the engine-side packages:

    * ``print(...)`` and ``open(...)`` calls;
    * ``.write(...)`` / ``.writelines(...)`` method calls on any receiver.

    Instrumentation must flow through :mod:`repro.obs` (which is exempt —
    it owns the sink) so that disabling observability really disables all
    I/O. Setup/teardown I/O outside loops is fine; a deliberate exception
    takes ``# repro: noqa[RPR011]``.
    """

    code = "RPR011"
    summary = "direct console/file I/O inside a simulation hot loop"
    packages = ("fastpath", "simulation", "cache", "architecture", "core")

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._loop_depth = 0

    def _visit_per_iteration(self, nodes) -> None:
        self._loop_depth += 1
        for child in nodes:
            self.visit(child)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        # The iterable expression evaluates once; only the body repeats.
        self.visit(node.iter)
        self.visit(node.target)
        self._visit_per_iteration(node.body)
        for child in node.orelse:
            self.visit(child)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._visit_per_iteration([node.test, *node.body])
        for child in node.orelse:
            self.visit(child)

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth > 0:
            func = node.func
            if isinstance(func, ast.Name) and func.id in _DIRECT_IO_NAMES:
                self.report(
                    node,
                    f"`{func.id}(...)` inside a simulation loop does I/O per "
                    "iteration even with observability disabled; emit through "
                    "a repro.obs recorder instead",
                )
            elif isinstance(func, ast.Attribute) and func.attr in _DIRECT_IO_ATTRS:
                self.report(
                    node,
                    f"`.{func.attr}(...)` inside a simulation loop writes a "
                    "stream per iteration; route output through repro.obs",
                )
        self.generic_visit(node)
