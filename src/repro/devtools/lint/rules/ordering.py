"""RPR004: no order-sensitive iteration over sets in decision-making code.

Victim selection, responder choice, demotion targets — anywhere the group
picks *one* item from *many*, iteration order is part of the algorithm. A
``set`` iterates in hash order, which varies across Python builds and with
``PYTHONHASHSEED`` for strings, so a decision loop fed by a set can return
different answers on identical inputs. The fix is a deterministic container
(list / dict preserving insertion order) or an explicit ``sorted(...)``.

The rule is syntactic: it flags ``for``-loops, comprehensions, and
list/tuple/enumerate conversions whose iterable is a set literal, a set
comprehension, or a direct ``set(...)`` / ``frozenset(...)`` call. Sets used
purely for membership tests or counting (``len``) are fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.lint.registry import RuleVisitor, register

#: Conversions that materialise iteration order.
_ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate", "iter", "next")


def _set_expression(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it is syntactically a set, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return f"a `{node.func.id}(...)` call"
    return None


@register
class SetIterationRule(RuleVisitor):
    """Flag iteration whose order feeds decisions but comes from a set."""

    code = "RPR004"
    summary = "iteration over a set in decision-making code (hash-order nondeterminism)"
    packages = (
        "core",
        "cache",
        "simulation",
        "architecture",
        "digest",
        "prefetch",
        "coherence",
        "network",
    )

    def _check_iterable(self, node: ast.expr) -> None:
        described = _set_expression(node)
        if described is not None:
            self.report(
                node,
                f"iterating {described} is hash-order nondeterministic; "
                "use a list/dict or wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iterable(comp.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_holder(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_holder(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_holder(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set comprehension *over* a set is fine (result is unordered
        # anyway); only its own generators matter if they drive decisions,
        # which they cannot from inside a set. Skip.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CALLS
            and node.args
        ):
            self._check_iterable(node.args[0])
        self.generic_visit(node)
