"""RPR005: public dataclasses in ``core`` / ``cache`` must be frozen.

Decision records (:class:`~repro.core.placement.RemoteHitDecision`,
:class:`~repro.cache.document.EvictionRecord`, ...) are passed between
caches, schemes, and the simulator as audit facts. If they are mutable, any
layer can silently edit history — the sanitizer then validates a lie. New
public dataclasses in the two foundational packages therefore default to
``frozen=True``; genuinely mutable counter blocks opt out with a justified
``# repro: noqa[RPR005]`` on the decorator line.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.registry import RuleVisitor, register


def _dataclass_decorator(node: ast.expr) -> bool:
    """Whether a decorator expression is ``dataclass`` in any spelling."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _is_frozen(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False  # bare @dataclass
    for keyword in node.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


@register
class FrozenDataclassRule(RuleVisitor):
    """Flag public ``@dataclass`` without ``frozen=True`` in core/cache."""

    code = "RPR005"
    summary = "public dataclass in core/cache must be frozen=True"
    packages = ("core", "cache")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not node.name.startswith("_"):
            for decorator in node.decorator_list:
                if _dataclass_decorator(decorator) and not _is_frozen(decorator):
                    self.report(
                        decorator,
                        f"public dataclass `{node.name}` is mutable; add "
                        "frozen=True (or a justified noqa for counter blocks)",
                    )
        self.generic_visit(node)
