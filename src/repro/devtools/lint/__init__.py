"""Repro-specific static analysis (the ``repro lint`` subcommand).

Public surface:

* :func:`lint_paths` / :func:`lint_file` / :func:`lint_source` — run the
  registered rules and get back sorted, suppression-filtered
  :class:`Finding` objects.
* :data:`~repro.devtools.lint.registry.REGISTRY` / :func:`all_rules` — the
  rule catalogue (see ``docs/DEVTOOLS.md`` for rationale per rule).
* ``# repro: noqa[RPR00x]`` — line-scoped suppression syntax
  (:mod:`repro.devtools.lint.suppress`).
"""

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    REGISTRY,
    FileContext,
    RuleVisitor,
    all_rules,
    register,
)
from repro.devtools.lint.runner import (
    lint_context,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "FileContext",
    "REGISTRY",
    "RuleVisitor",
    "all_rules",
    "lint_context",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
