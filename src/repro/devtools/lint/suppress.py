"""``# repro: noqa[RULE]`` suppression pragmas.

A finding is suppressed when the physical line it is anchored to carries a
pragma naming its rule code — or a bare ``# repro: noqa`` which silences
every rule on that line. Multiple codes are comma-separated::

    entry.hit_count = 3  # repro: noqa[RPR003]
    thing = {"a", "b"}   # repro: noqa[RPR004, RPR006] intentional
    legacy_call()        # repro: noqa — grandfathered

Suppressions are deliberately line-scoped (no file- or block-level escape
hatch): every exemption stays next to the code it excuses, where review
sees it.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.devtools.lint.findings import Finding

#: Matches the pragma anywhere in a line's trailing comment.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?")

#: ``None`` means "suppress every rule on this line".
SuppressionMap = Dict[int, Optional[FrozenSet[str]]]


def collect_suppressions(source: str) -> SuppressionMap:
    """Map 1-based line numbers to the rule codes suppressed on them."""
    suppressions: SuppressionMap = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        raw_codes = match.group("codes")
        if raw_codes is None:
            suppressions[lineno] = None  # bare noqa: everything
        else:
            codes = frozenset(
                code.strip() for code in raw_codes.split(",") if code.strip()
            )
            existing = suppressions.get(lineno)
            if existing is not None:
                codes = codes | existing
            if lineno in suppressions and suppressions[lineno] is None:
                continue
            suppressions[lineno] = codes
    return suppressions


def is_suppressed(finding: Finding, suppressions: SuppressionMap) -> bool:
    """Whether ``finding`` is silenced by a pragma on its line."""
    if finding.line not in suppressions:
        return False
    codes = suppressions[finding.line]
    return codes is None or finding.rule in codes


def filter_suppressed(
    findings: Iterable[Finding], suppressions: SuppressionMap
) -> List[Finding]:
    """Findings that survive the file's suppression pragmas."""
    return [f for f in findings if not is_suppressed(f, suppressions)]
