"""Lint findings: what a rule reports and how it is rendered."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation at a specific source location.

    Attributes:
        path: File the violation was found in (as given to the runner).
        line: 1-based line number of the offending node.
        col: 0-based column offset of the offending node.
        rule: Rule code, e.g. ``"RPR001"``.
        message: Human-readable explanation with the fix direction.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the classic greppable format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
