"""Lint driver: discover files, run rules, filter suppressions.

The runner is filesystem-only (no imports of the code under analysis), so
it can lint broken or heavyweight modules safely, and it is what both the
``repro lint`` CLI and the test suite call.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Type

import repro.devtools.lint.rules  # noqa: F401  (registers every rule)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import REGISTRY, FileContext, RuleVisitor, all_rules
from repro.devtools.lint.suppress import collect_suppressions, filter_suppressed

#: Directories never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _module_package(path: Path) -> Optional[str]:
    """First-level ``repro`` subpackage of ``path``, or None if outside."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1 :]
            if not remainder:
                return None
            if len(remainder) == 1:
                return ""  # module directly under repro/
            return remainder[0]
    return None


def _is_test_file(path: Path) -> bool:
    name = path.name
    return (
        "tests" in path.parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _selected_rules(select: Optional[Iterable[str]]) -> List[Type[RuleVisitor]]:
    if select is None:
        return all_rules()
    rules: List[Type[RuleVisitor]] = []
    for code in select:
        if code not in REGISTRY:
            raise ValueError(
                f"unknown lint rule {code!r}; known: {', '.join(sorted(REGISTRY))}"
            )
        rules.append(REGISTRY[code])
    return rules


def lint_context(
    ctx: FileContext, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the rule set over an already-parsed :class:`FileContext`.

    This is the shared back half of :func:`lint_source`, split out so
    ``repro check`` can lint the modules of a ProjectModel without
    re-reading or re-parsing any file. Suppression pragmas are applied
    from the context's source.
    """
    findings: List[Finding] = []
    for rule_cls in _selected_rules(select):
        if rule_cls.applies(ctx):
            findings.extend(rule_cls(ctx).run())
    return sorted(
        filter_suppressed(findings, collect_suppressions(ctx.source))
    )


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string as though it lived at ``path``.

    ``path`` determines rule scoping (e.g. pass
    ``"src/repro/core/x.py"`` to exercise core-scoped rules) and appears in
    the findings. Unparseable source yields a single ``RPR000`` finding.
    """
    as_path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="RPR000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        package=_module_package(as_path),
        is_test=_is_test_file(as_path),
    )
    return lint_context(ctx, select=select)


def lint_file(path: Path, select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8", errors="replace")
    return lint_source(source, path=str(path), select=select)


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return sorted(findings)
