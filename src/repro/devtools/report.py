"""Shared machine-readable finding envelope for the devtools CLIs.

``repro lint --json`` and ``repro analyze --json`` emit the same
``repro-findings/1`` envelope so CI annotation scripts and editor
integrations can consume either tool without caring which produced the
finding::

    {
      "schema": "repro-findings/1",
      "tool": "analyze",
      "count": 2,
      "findings": [
        {"path": "...", "line": 3, "col": 0, "rule": "RPR101",
         "severity": "error", "message": "..."},
        ...
      ]
    }

Extra top-level keys (analyzer selection, baseline statistics) are
allowed and additive; consumers must ignore keys they do not know. The
``severity`` key (``note``/``warn``/``error``, from
:mod:`repro.devtools.catalog`) drives the shared ``--fail-on`` flag.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.devtools.catalog import severity_for
from repro.devtools.lint.findings import Finding

#: Version tag of the shared finding envelope.
FINDINGS_SCHEMA = "repro-findings/1"


def finding_to_dict(finding: Finding) -> Dict[str, Any]:
    """One finding as a plain JSON-serialisable mapping."""
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "severity": severity_for(finding.rule),
        "message": finding.message,
    }


def findings_payload(
    tool: str,
    findings: Iterable[Finding],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full ``repro-findings/1`` envelope for ``tool``.

    Args:
        tool: Producer name (``"lint"`` or ``"analyze"``).
        findings: Findings to serialise, in the order to emit them.
        extra: Optional additional top-level keys (must not collide with
            the envelope's own).
    """
    serialised: List[Dict[str, Any]] = [finding_to_dict(f) for f in findings]
    payload: Dict[str, Any] = {
        "schema": FINDINGS_SCHEMA,
        "tool": tool,
        "count": len(serialised),
        "findings": serialised,
    }
    if extra:
        for key in extra:
            if key in payload:
                raise ValueError(f"extra key {key!r} collides with envelope")
        payload.update(extra)
    return payload
