"""Orchestration for ``repro analyze``: model build, analyzers, filtering.

One :class:`~repro.devtools.analysis.model.ProjectModel` is built per
invocation and shared by every selected analyzer (``repro check`` reuses
the same model for lint too, via :func:`run_analyzers`). Raw findings
then pass through two filters, in order:

1. line-scoped ``# repro: noqa[CODE]`` pragmas in the analyzed sources
   (the same mechanism, and the same parser, as ``repro lint``);
2. the checked-in JSON baseline (matched on rule/path/message, see
   :mod:`repro.devtools.analysis.baseline`).

The result is an :class:`AnalysisReport` carrying what survived, what
was absorbed where, and which baseline entries went stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.devtools.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.devtools.analysis.concurrency import analyze_concurrency
from repro.devtools.analysis.configflow import analyze_configflow
from repro.devtools.analysis.determinism import analyze_determinism
from repro.devtools.analysis.domains import analyze_domains
from repro.devtools.analysis.effects import analyze_effects
from repro.devtools.analysis.model import AnalysisError, ProjectModel
from repro.devtools.analysis.parity import analyze_parity
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.suppress import (
    SuppressionMap,
    collect_suppressions,
    is_suppressed,
)

#: Analyzer name -> implementation, in canonical execution order.
ANALYZERS: Dict[str, Callable[[ProjectModel], List[Finding]]] = {
    "parity": analyze_parity,
    "determinism": analyze_determinism,
    "configflow": analyze_configflow,
    "effects": analyze_effects,
    "concurrency": analyze_concurrency,
    "domains": analyze_domains,
}


@dataclass
class AnalysisReport:
    """Outcome of one ``repro analyze`` run.

    Attributes:
        findings: Findings that survived pragmas and the baseline, sorted.
        suppressed: Count of findings silenced by ``# repro: noqa``.
        baselined: Findings absorbed by the checked-in baseline.
        stale_baseline: Baseline entries that matched no current finding.
        analyzers: Names of the analyzers that ran, in execution order.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    analyzers: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Whether the tree passes: nothing surviving, nothing stale."""
        return not self.findings and not self.stale_baseline


def select_analyzers(
    analyzers: Optional[Sequence[str]] = None,
) -> Tuple[str, ...]:
    """Validate an analyzer selection (default: all, canonical order)."""
    selected = tuple(ANALYZERS) if analyzers is None else tuple(analyzers)
    for name in selected:
        if name not in ANALYZERS:
            raise AnalysisError(
                f"unknown analyzer {name!r}; expected one of "
                f"{', '.join(sorted(ANALYZERS))}"
            )
    return selected


def run_analyzers(
    model: ProjectModel, selected: Sequence[str]
) -> List[Finding]:
    """Raw (unfiltered) findings of ``selected`` analyzers over ``model``."""
    raw: List[Finding] = []
    for name in selected:
        raw.extend(ANALYZERS[name](model))
    return sorted(set(raw))


class LazySuppressions:
    """Per-path ``# repro: noqa`` maps, parsed only for paths with findings.

    A full-tree analysis used to parse the pragma map of *every* module
    up front even when a run produced two findings; this defers the parse
    to first use per path, keyed by the display path the findings carry.
    """

    def __init__(self, model: ProjectModel) -> None:
        self._sources: Dict[str, str] = {
            info.path: info.source for info in model.modules.values()
        }
        self._cache: Dict[str, Optional[SuppressionMap]] = {}

    def for_path(self, path: str) -> Optional[SuppressionMap]:
        """The pragma map for ``path``, or None for unknown paths."""
        if path not in self._cache:
            source = self._sources.get(path)
            self._cache[path] = (
                collect_suppressions(source) if source is not None else None
            )
        return self._cache[path]


def filter_findings(
    model: ProjectModel,
    raw: Sequence[Finding],
    selected: Tuple[str, ...],
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Apply noqa pragmas, then the baseline, to ``raw`` findings."""
    suppressions = LazySuppressions(model)
    unsuppressed: List[Finding] = []
    suppressed = 0
    for finding in raw:
        pragmas = suppressions.for_path(finding.path)
        if pragmas is not None and is_suppressed(finding, pragmas):
            suppressed += 1
        else:
            unsuppressed.append(finding)

    entries: List[BaselineEntry] = []
    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
    kept, baselined, stale = apply_baseline(unsuppressed, entries)

    return AnalysisReport(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        analyzers=selected,
    )


def analyze_project(
    root: Path,
    analyzers: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Run ``analyzers`` (default: all) over the tree rooted at ``root``.

    Args:
        root: Directory containing the ``repro`` package (usually ``src``).
        analyzers: Subset of :data:`ANALYZERS` keys; unknown names raise.
        baseline_path: Optional baseline file; when given, its entries
            absorb matching findings and stale entries are reported.
    """
    selected = select_analyzers(analyzers)
    model = ProjectModel.load(root)
    raw = run_analyzers(model, selected)
    return filter_findings(model, raw, selected, baseline_path)
