"""Orchestration for ``repro analyze``: model build, analyzers, filtering.

One :class:`~repro.devtools.analysis.model.ProjectModel` is built per
invocation and shared by every selected analyzer. Raw findings then pass
through two filters, in order:

1. line-scoped ``# repro: noqa[CODE]`` pragmas in the analyzed sources
   (the same mechanism, and the same parser, as ``repro lint``);
2. the checked-in JSON baseline (matched on rule/path/message, see
   :mod:`repro.devtools.analysis.baseline`).

The result is an :class:`AnalysisReport` carrying what survived, what
was absorbed where, and which baseline entries went stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.devtools.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.devtools.analysis.configflow import analyze_configflow
from repro.devtools.analysis.determinism import analyze_determinism
from repro.devtools.analysis.model import AnalysisError, ProjectModel
from repro.devtools.analysis.parity import analyze_parity
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.suppress import collect_suppressions, is_suppressed

#: Analyzer name -> implementation, in canonical execution order.
ANALYZERS: Dict[str, Callable[[ProjectModel], List[Finding]]] = {
    "parity": analyze_parity,
    "determinism": analyze_determinism,
    "configflow": analyze_configflow,
}


@dataclass
class AnalysisReport:
    """Outcome of one ``repro analyze`` run.

    Attributes:
        findings: Findings that survived pragmas and the baseline, sorted.
        suppressed: Count of findings silenced by ``# repro: noqa``.
        baselined: Findings absorbed by the checked-in baseline.
        stale_baseline: Baseline entries that matched no current finding.
        analyzers: Names of the analyzers that ran, in execution order.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    analyzers: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Whether the tree passes: nothing surviving, nothing stale."""
        return not self.findings and not self.stale_baseline


def analyze_project(
    root: Path,
    analyzers: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Run ``analyzers`` (default: all) over the tree rooted at ``root``.

    Args:
        root: Directory containing the ``repro`` package (usually ``src``).
        analyzers: Subset of :data:`ANALYZERS` keys; unknown names raise.
        baseline_path: Optional baseline file; when given, its entries
            absorb matching findings and stale entries are reported.
    """
    selected = tuple(ANALYZERS) if analyzers is None else tuple(analyzers)
    for name in selected:
        if name not in ANALYZERS:
            raise AnalysisError(
                f"unknown analyzer {name!r}; expected one of "
                f"{', '.join(sorted(ANALYZERS))}"
            )
    model = ProjectModel.load(root)

    raw: List[Finding] = []
    for name in selected:
        raw.extend(ANALYZERS[name](model))
    raw = sorted(set(raw))

    suppression_maps = {
        info.path: collect_suppressions(info.source)
        for info in model.modules.values()
    }
    unsuppressed: List[Finding] = []
    suppressed = 0
    for finding in raw:
        pragmas = suppression_maps.get(finding.path)
        if pragmas is not None and is_suppressed(finding, pragmas):
            suppressed += 1
        else:
            unsuppressed.append(finding)

    entries: List[BaselineEntry] = []
    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
    kept, baselined, stale = apply_baseline(unsuppressed, entries)

    return AnalysisReport(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        analyzers=selected,
    )
