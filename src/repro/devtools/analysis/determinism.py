"""Call-graph determinism audit (``repro analyze determinism``, RPR111-115).

The parallel runner merges worker results positionally and the memo store
treats ``sha256(config + trace fingerprint)`` as a proof of byte-identity
— both stake correctness on every simulation-reachable function being
deterministic. The existing lint rules check *files* in scoped packages;
this auditor instead audits exactly the functions a simulation can
execute, wherever they live, using the shared per-function effect
summaries from :mod:`repro.devtools.analysis.effects` (one model, one
call graph, one fixpoint — the concurrency pass reads the same data):

* **RPR111** — wall-clock reads (``time.time`` and friends,
  ``datetime.now``): results would depend on host speed. These are the
  ``time`` effect sites of reachable functions.
* **RPR112** — process-global RNG (``random.random``, ``random.choice``,
  ...): any import can perturb the shared state. Seeded
  ``random.Random(seed)`` instances are fine. These are the ``rng``
  effect sites.
* **RPR113** — iteration over an unordered ``set``/``frozenset`` feeding
  downstream state: Python set order varies with hash seeding and insert
  history. (``dict`` iteration is insertion-ordered and not flagged.)
* **RPR114** — filesystem-order dependence (``os.listdir``, ``glob``,
  ``Path.iterdir`` / ``.glob`` / ``.rglob``) not neutralised by
  ``sorted``/``min``/``max``/``set``/``len``/``any``/``all``.
* **RPR115** — ``sum`` over an unordered set: float accumulation order
  changes the low bits, which breaks byte-identical merges.

RPR113-115 are about *enumeration order*, which the effect lattice does
not model, so they stay syntactic — but they run over the same
reachability set the effect analysis computed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Union

# Re-exported for backward compatibility: these constant sets moved into
# the effect-inference engine, which is now their single owner.
from repro.devtools.analysis.effects import (  # noqa: F401
    GLOBAL_RNG_CALLS,
    RNG,
    TIME,
    WALL_CLOCK_CALLS,
    dotted_call_name,
    effect_analysis,
)
from repro.devtools.analysis.model import ModuleInfo, ProjectModel
from repro.devtools.lint.findings import Finding

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES: Dict[str, str] = {
    "RPR111": "wall-clock read on a simulation-reachable path",
    "RPR112": "process-global RNG call on a simulation-reachable path",
    "RPR113": "iteration over an unordered set on a simulation-reachable "
    "path",
    "RPR114": "filesystem-order enumeration on a simulation-reachable "
    "path without sorted(...)",
    "RPR115": "sum over an unordered set (unstable float accumulation "
    "order)",
}

#: Entry points whose transitive callees must be deterministic.
DEFAULT_ROOTS: Sequence[str] = (
    "repro.simulation.simulator:CooperativeSimulator.run",
    "repro.simulation.simulator:run_simulation",
    "repro.fastpath.engine:simulate_columnar",
    "repro.fastpath.batch:simulate_batch",
    "repro.parallel.runner:ParallelSweepRunner.run",
    "repro.parallel.memo:SweepMemoStore.get",
    "repro.parallel.memo:SweepMemoStore.put",
)

#: Calls returning entries in filesystem order.
_FS_ORDER_DOTTED = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Wrappers that make enumeration order irrelevant.
_ORDER_NEUTRAL_WRAPPERS = frozenset(
    {"sorted", "min", "max", "set", "frozenset", "len", "any", "all", "sum"}
)

_SET_EXPRS = (ast.Set, ast.SetComp)


def analyze_determinism(
    model: ProjectModel, roots: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Audit every function reachable from ``roots``; findings sorted.

    ``roots`` defaults to :data:`DEFAULT_ROOTS`; roots absent from the
    model are ignored, so miniature fixture trees can pass their own.
    """
    analysis = effect_analysis(model)
    reachable = analysis.reachable(DEFAULT_ROOTS if roots is None else roots)
    findings: List[Finding] = []
    for node_id in sorted(reachable):
        module_name = node_id.partition(":")[0]
        info = model.get(module_name)
        func = model.function_node(node_id)
        if info is None or func is None:
            continue
        for site in analysis.sites(node_id, TIME):
            findings.append(
                Finding(
                    path=info.path,
                    line=site.line,
                    col=site.col,
                    rule="RPR111",
                    message=(
                        f"wall-clock call `{site.detail}()` on a "
                        "simulation-reachable path; time must come from "
                        "trace timestamps or an injected clock"
                    ),
                )
            )
        for site in analysis.sites(node_id, RNG):
            findings.append(
                Finding(
                    path=info.path,
                    line=site.line,
                    col=site.col,
                    rule="RPR112",
                    message=(
                        f"process-global RNG call `{site.detail}()` on a "
                        "simulation-reachable path; draw from a "
                        "config-seeded random.Random instead"
                    ),
                )
            )
        findings.extend(_audit_syntactic(info, func))
    return sorted(set(findings))


# Backward-compatible alias; the resolver lives in the effects module now.
_dotted_call_name = dotted_call_name


def _is_set_expression(info: ModuleInfo, node: ast.expr) -> bool:
    """Whether ``node`` statically evaluates to an unordered set."""
    if isinstance(node, _SET_EXPRS):
        # A set *display* with literal elements has fixed iteration order
        # only by accident; treat every set expression as unordered.
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _audit_syntactic(info: ModuleInfo, func: ast.AST) -> List[Finding]:
    """RPR113-115: the enumeration-order checks for one function body."""
    findings: List[Finding] = []
    parents: Dict[ast.AST, ast.AST] = {}
    set_vars: Dict[str, int] = {}  # name -> assignment count as a set
    assigned: Dict[str, int] = {}  # name -> total assignment count

    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigned[target.id] = assigned.get(target.id, 0) + 1
                if _is_set_expression(info, node.value):
                    set_vars[target.id] = set_vars.get(target.id, 0) + 1

    def report(node: ast.AST, rule: str, message: str) -> None:
        findings.append(
            Finding(
                path=info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def order_neutral(node: ast.AST) -> bool:
        """Whether an enclosing call neutralises enumeration order."""
        current = parents.get(node)
        while current is not None and not isinstance(
            current, (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in _ORDER_NEUTRAL_WRAPPERS
            ):
                return True
            current = parents.get(current)
        return False

    def check_iterable(node: ast.expr) -> None:
        is_unordered = _is_set_expression(info, node) or (
            isinstance(node, ast.Name)
            and set_vars.get(node.id, 0) > 0
            and assigned.get(node.id, 0) == set_vars.get(node.id, 0)
        )
        if is_unordered and not order_neutral(node):
            report(
                node,
                "RPR113",
                "iteration over an unordered set on a simulation-reachable "
                "path; sort it (or keep a list/dict) so replay order is "
                "stable",
            )

    for node in ast.walk(func):
        if isinstance(node, ast.For):
            check_iterable(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                check_iterable(generator.iter)
        elif isinstance(node, ast.Call):
            dotted = dotted_call_name(info, node.func)
            fs_name = _fs_order_call(info, node, dotted)
            if fs_name is not None and not order_neutral(node):
                report(
                    node,
                    "RPR114",
                    f"`{fs_name}` yields entries in filesystem order on a "
                    "simulation-reachable path; wrap the enumeration in "
                    "sorted(...)",
                )
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and _contains_set_expression(info, node.args[0])
            ):
                report(
                    node,
                    "RPR115",
                    "`sum` over an unordered set accumulates floats in an "
                    "unstable order on a simulation-reachable path; sort the "
                    "operands first",
                )
    return findings


def _fs_order_call(
    info: ModuleInfo, node: ast.Call, dotted: Optional[str]
) -> Optional[str]:
    """The display name of a filesystem-order call, or None."""
    if dotted in _FS_ORDER_DOTTED:
        return dotted
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _FS_ORDER_METHODS:
        # Receiver-agnostic: `.glob` / `.rglob` / `.iterdir` are Path idioms.
        return f".{func.attr}"
    return None


def _contains_set_expression(
    info: ModuleInfo, node: Union[ast.expr, ast.AST]
) -> bool:
    """Whether any subexpression of ``node`` is an unordered set."""
    for child in ast.walk(node):
        if isinstance(child, ast.expr) and _is_set_expression(info, child):
            return True
    return False
