"""Whole-program model: per-module symbol tables over a parsed source tree.

:class:`ProjectModel` is the substrate every ``repro analyze`` analyzer
works from. Like the lint runner it is filesystem-only — modules are
*parsed*, never imported — so the analyzers can inspect broken, heavy, or
deliberately drifted trees (the tests feed them synthetic miniature
projects). For each ``.py`` file under the root it records:

* the dotted module name (``repro.fastpath.engine``; packages take their
  ``__init__.py``'s name, ``repro.fastpath``);
* an import table mapping every local alias to the dotted name it binds
  (relative imports resolved against the module's package);
* module- and class-level function definitions keyed by qualified name
  (``simulate_columnar``, ``CooperativeSimulator.run``). Nested (closure)
  functions are deliberately *not* separate symbols: their statements
  belong to the enclosing function, which is the right granularity for
  reachability — a closure runs iff its definer does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Directories never descended into (mirrors the lint runner).
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build", "dist"}


class AnalysisError(ReproError):
    """The analysis framework was driven with invalid inputs."""


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module.

    Attributes:
        name: Dotted module name relative to the analysis root.
        path: Display path of the source file (as discovered).
        source: Full file text (suppression pragmas are read from it).
        tree: Parsed AST.
        imports: Local alias -> dotted target; ``import a.b`` binds
            ``{"a": "a"}``, ``import a.b as c`` binds ``{"c": "a.b"}``,
            ``from a.b import c as d`` binds ``{"d": "a.b.c"}``.
        functions: Qualified name -> def node for module-level functions
            and methods (``"f"``, ``"Cls.meth"``).
        classes: Class qualified name -> class def node.
    """

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, _FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    def dataclass_fields(self, class_name: str) -> Dict[str, int]:
        """Annotated field names of ``class_name`` mapped to their line.

        Reads ``AnnAssign`` statements in the class body — the dataclass
        field syntax — skipping ``ClassVar`` annotations. Raises
        :class:`AnalysisError` when the class is not defined here.
        """
        node = self.classes.get(class_name)
        if node is None:
            raise AnalysisError(
                f"class {class_name!r} not found in module {self.name}"
            )
        fields: Dict[str, int] = {}
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields[stmt.target.id] = stmt.lineno
        return fields


def _module_name(root: Path, file: Path) -> str:
    """Dotted module name of ``file`` relative to ``root``."""
    relative = file.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _collect_imports(module_name: str, tree: ast.Module) -> Dict[str, str]:
    """Resolve every import statement in ``tree`` to absolute dotted names."""
    package_parts = module_name.split(".")[:-1] if module_name else []
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # `import a.b` binds the top-level name `a`.
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Relative import: strip (level - 1) trailing packages.
                keep = len(package_parts) - (node.level - 1)
                prefix = package_parts[: max(keep, 0)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _collect_symbols(
    tree: ast.Module,
) -> Tuple[Dict[str, _FunctionNode], Dict[str, ast.ClassDef]]:
    """Module- and class-level defs, keyed by qualified name."""
    functions: Dict[str, _FunctionNode] = {}
    classes: Dict[str, ast.ClassDef] = {}

    def descend(body: List[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[f"{prefix}{stmt.name}"] = stmt
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}{stmt.name}"
                classes[qualname] = stmt
                descend(stmt.body, f"{qualname}.")

    descend(tree.body, "")
    return functions, classes


class ProjectModel:
    """Parsed view of every module under one source root.

    Attributes:
        root: The directory the model was loaded from.
        modules: Dotted module name -> :class:`ModuleInfo`.
        method_index: Bare method/function name -> list of
            ``"module:qualname"`` node ids defining it (the call graph's
            receiver-agnostic resolution table).
    """

    def __init__(self, root: Path, modules: Dict[str, ModuleInfo]) -> None:
        self.root = root
        self.modules = modules
        self.method_index: Dict[str, List[str]] = {}
        for info in modules.values():
            for qualname in info.functions:
                bare = qualname.rsplit(".", 1)[-1]
                self.method_index.setdefault(bare, []).append(
                    f"{info.name}:{qualname}"
                )
        for callers in self.method_index.values():
            callers.sort()

    @classmethod
    def load(cls, root: Union[str, Path]) -> "ProjectModel":
        """Parse every ``.py`` file under ``root`` into a model.

        ``root`` is the directory *containing* the top-level package(s) —
        ``src`` for this repository, so modules come out as ``repro.*``.
        Unparseable files are skipped (the lint pass owns reporting those
        as RPR000).
        """
        root_path = Path(root)
        if not root_path.is_dir():
            raise AnalysisError(f"analysis root {root_path} is not a directory")
        modules: Dict[str, ModuleInfo] = {}
        for file in sorted(root_path.rglob("*.py")):
            if _SKIP_DIRS.intersection(file.parts):
                continue
            source = file.read_text(encoding="utf-8", errors="replace")
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            name = _module_name(root_path, file)
            functions, classes = _collect_symbols(tree)
            modules[name] = ModuleInfo(
                name=name,
                path=str(file),
                source=source,
                tree=tree,
                imports=_collect_imports(name, tree),
                functions=functions,
                classes=classes,
            )
        if not modules:
            raise AnalysisError(f"no Python modules found under {root_path}")
        return cls(root_path, modules)

    def get(self, module_name: str) -> Optional[ModuleInfo]:
        """The module named ``module_name``, or None when absent."""
        return self.modules.get(module_name)

    def iter_package(self, package: str) -> Iterator[ModuleInfo]:
        """Modules inside ``package`` (itself included), sorted by name."""
        prefix = package + "."
        for name in sorted(self.modules):
            if name == package or name.startswith(prefix):
                yield self.modules[name]

    def function_node(self, node_id: str) -> Optional[_FunctionNode]:
        """Resolve a ``"module:qualname"`` id back to its def node."""
        module_name, _, qualname = node_id.partition(":")
        info = self.modules.get(module_name)
        if info is None:
            return None
        return info.functions.get(qualname)
