"""Whole-program static analysis for the repro codebase.

Built for the dual-engine contract: the object core and the columnar
fastpath must stay byte-identical, config fields must be plumbed end to
end, and everything reachable from a simulation run must be
deterministic (the parallel memo store keys on it). Three analyzers
enforce those properties *by construction* rather than by sampled
differential tests:

* :func:`~repro.devtools.analysis.parity.analyze_parity` — RPR101-103,
  engine-parity drift against the machine-readable fallback matrix;
* :func:`~repro.devtools.analysis.determinism.analyze_determinism` —
  RPR111-115, nondeterminism on simulation-reachable call paths;
* :func:`~repro.devtools.analysis.configflow.analyze_configflow` —
  RPR121-123, dead / one-sided config fields and memo-key coverage.

Everything is AST-level over :class:`ProjectModel` — analyzed code is
never imported, so broken or deliberately drifted trees (regression
fixtures) analyze fine. Entry point: :func:`analyze_project`; CLI:
``repro analyze``.
"""

from repro.devtools.analysis.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.analysis.callgraph import CallGraph
from repro.devtools.analysis.configflow import analyze_configflow, coverage_table
from repro.devtools.analysis.determinism import DEFAULT_ROOTS, analyze_determinism
from repro.devtools.analysis.model import AnalysisError, ModuleInfo, ProjectModel
from repro.devtools.analysis.parity import analyze_parity
from repro.devtools.analysis.runner import (
    ANALYZERS,
    AnalysisReport,
    analyze_project,
)

__all__ = [
    "ANALYZERS",
    "AnalysisError",
    "AnalysisReport",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_ROOTS",
    "ModuleInfo",
    "ProjectModel",
    "analyze_configflow",
    "analyze_determinism",
    "analyze_parity",
    "analyze_project",
    "apply_baseline",
    "coverage_table",
    "load_baseline",
    "write_baseline",
]
