"""Whole-program static analysis for the repro codebase.

Built for the dual-engine contract: the object core and the columnar
fastpath must stay byte-identical, config fields must be plumbed end to
end, and everything reachable from a simulation run must be
deterministic (the parallel memo store keys on it). Six analyzers
enforce those properties *by construction* rather than by sampled
differential tests:

* :func:`~repro.devtools.analysis.parity.analyze_parity` — RPR101-103,
  engine-parity drift against the machine-readable fallback matrix;
* :func:`~repro.devtools.analysis.determinism.analyze_determinism` —
  RPR111-115, nondeterminism on simulation-reachable call paths;
* :func:`~repro.devtools.analysis.configflow.analyze_configflow` —
  RPR121-123, dead / one-sided config fields and memo-key coverage;
* :func:`~repro.devtools.analysis.effects.analyze_effects` — RPR137,
  drift between inferred per-function effect summaries and declared
  ``# repro: effects[...]`` contracts (the summaries themselves export
  as ``repro-effects/1`` JSON);
* :func:`~repro.devtools.analysis.concurrency.analyze_concurrency` —
  RPR131-136, fork-unsafe mutation, cross-boundary module state,
  hot-loop IO, internal-state escape, shared dataclass defaults, and
  blocking service paths;
* :func:`~repro.devtools.analysis.domains.analyze_domains` — RPR141-147,
  index-domain and dtype-width hazards on the vectorised hot paths:
  cross-domain indexing, chunk-local/global offset mixing, narrow
  accumulators, ``frombuffer`` view lifetimes, mask domain mismatches,
  ``# repro: domains[...]`` contract drift, and interned-id escape
  (inferred per-function domain tables export as ``repro-domains/1``).

Everything is AST-level over :class:`ProjectModel` — analyzed code is
never imported, so broken or deliberately drifted trees (regression
fixtures) analyze fine. The determinism and concurrency passes share one
memoized :class:`~repro.devtools.analysis.effects.EffectAnalysis` per
model. Entry point: :func:`analyze_project`; CLI: ``repro analyze`` (or
``repro check`` for lint + analysis off one parse).
"""

from repro.devtools.analysis.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.analysis.callgraph import (
    CallGraph,
    resolve_call,
    resolve_callable_ref,
)
from repro.devtools.analysis.concurrency import (
    analyze_concurrency,
    worker_roots,
)
from repro.devtools.analysis.configflow import analyze_configflow, coverage_table
from repro.devtools.analysis.determinism import DEFAULT_ROOTS, analyze_determinism
from repro.devtools.analysis.domains import (
    DOMAINS_SCHEMA,
    Dom,
    DomainAnalysis,
    FunctionDomains,
    analyze_domains,
    domain_analysis,
)
from repro.devtools.analysis.effects import (
    EFFECTS_SCHEMA,
    EffectAnalysis,
    EffectSite,
    FunctionEffects,
    analyze_effects,
    effect_analysis,
)
from repro.devtools.analysis.model import AnalysisError, ModuleInfo, ProjectModel
from repro.devtools.analysis.parity import analyze_parity
from repro.devtools.analysis.runner import (
    ANALYZERS,
    AnalysisReport,
    analyze_project,
    filter_findings,
    run_analyzers,
    select_analyzers,
)

__all__ = [
    "ANALYZERS",
    "AnalysisError",
    "AnalysisReport",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_ROOTS",
    "DOMAINS_SCHEMA",
    "Dom",
    "DomainAnalysis",
    "EFFECTS_SCHEMA",
    "EffectAnalysis",
    "EffectSite",
    "FunctionDomains",
    "FunctionEffects",
    "ModuleInfo",
    "ProjectModel",
    "analyze_concurrency",
    "analyze_configflow",
    "analyze_determinism",
    "analyze_domains",
    "analyze_effects",
    "analyze_parity",
    "analyze_project",
    "apply_baseline",
    "coverage_table",
    "domain_analysis",
    "effect_analysis",
    "filter_findings",
    "load_baseline",
    "resolve_call",
    "resolve_callable_ref",
    "run_analyzers",
    "select_analyzers",
    "worker_roots",
    "write_baseline",
]
