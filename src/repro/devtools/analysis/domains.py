"""Index-domain & dtype-width inference (``repro analyze domains``, RPR141-147).

The batch engine earns its throughput from numpy gathers and scatters
indexed by *five different integer spaces* — raw doc id, interned dense
id, cache slot (``doc * NC + cache``), chunk-local offset, global request
sequence — plus zero-copy ``np.frombuffer`` views over mutable buffers
and a mix of ``int64``/``uint8``/platform-default dtypes. An index used
in the wrong space, a chunk-local offset added to a global sequence
without the base, or a platform-default accumulator on a path whose
totals scale with trace length are all bugs the differential harness
only catches if the sampled trace happens to trip them. This module
makes those properties statically checkable.

Each variable gets an abstract :class:`Dom` — an *axis* domain (what the
array's positions index), a *value* domain (what its elements mean), and
a dtype *width* class — propagated flow-insensitively to a fixpoint
through assignments, the recognised numpy operations (``cumsum``,
``searchsorted``, ``repeat``, ``frombuffer``, fancy indexing, boolean
masks, ``argsort``/``flatnonzero``/``bincount``), and ``.view()``
pass-through. The domain lattice:

===============  ======================================================
``doc-id``       raw document identity as traces record it
``interned-id``  dense per-trace id from :mod:`repro.fastpath.interning`
``cache-slot``   flattened residency slot, ``doc * num_caches + cache``
``chunk-offset`` position within one streamed trace chunk
``global-seq``   absolute request sequence number across the whole run
``byte-size``    document/wire byte counts
``age-tick``     expiration-age timestamps
``any``          declared wildcard: matches every domain
===============  ======================================================

Functions declare bounds with ``# repro: domains[...]`` pragmas — on the
``def`` line, on contiguous comment lines immediately above it, or
inline on an assignment::

    # repro: domains[seq=cache-slot->global-seq:int64]
    def warm_loop(...):
        gbase = ...          # repro: domains[gbase=global-seq]
        a, b = runs          # repro: domains[a=chunk-offset, b=cache-slot]

An entry is ``name=spec`` with ``spec := [axis "->"] value [":" width]``;
a bare ``spec`` is allowed inline on a single-name assignment. A declared
name is pinned for the whole function; assignments whose inferred domain
conflicts with the pin are contract drift (RPR146, mirroring RPR137).
Annotating the axis (``any->`` when unconstrained) marks a name as an
array; bare ``name=value`` entries describe scalars.

Rules:

* **RPR141** — cross-domain indexing: an index whose *values* live in one
  domain gathers/scatters an array whose *axis* is another
  (slot-domain index into a doc-axis array).
* **RPR142** — chunk-local offsets and global sequence numbers mixed:
  elementwise arithmetic over two *arrays* of the two domains, or a
  store of one into an array whose values are the other. Adding a
  ``global-seq`` *scalar* base to a ``chunk-offset`` array is the
  sanctioned conversion and infers ``global-seq``.
* **RPR143** — dtype-width overflow hazard: an accumulator
  (``cumsum``/``cumprod``/``np.add.accumulate``/``np.power``) whose
  result dtype is narrow or platform-default — e.g. ``np.arange``
  without ``dtype`` feeding a ``cumsum``. Fix with an explicit
  ``dtype=np.int64``. Float accumulators are exempt (ordered-fold
  determinism, not width, is their hazard).
* **RPR144** — a ``np.frombuffer`` view used after (or sharing a loop
  with) a growth call on its backing buffer without an intervening
  ``del``: growth reallocates and the view keeps the dead buffer.
* **RPR145** — silent broadcast/mask mismatch: a boolean mask or
  elementwise operand whose axis differs from the other array's.
* **RPR146** — declared-vs-inferred contract drift, or an unknown
  domain/width token in a ``# repro: domains[...]`` pragma.
* **RPR147** — an ``interned-id`` value passed to a parameter declared
  ``doc-id`` (dense ids escaping to a raw-id API), resolved through the
  precise call graph.

The inventory exports as a machine-readable ``repro-domains/1`` document
(``repro analyze --domains-out``), snapshot-diffed in CI by
``scripts/diff_domains.py`` so domain regressions surface in review.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from repro.devtools.analysis.callgraph import resolve_call
from repro.devtools.analysis.model import ModuleInfo, ProjectModel
from repro.devtools.lint.findings import Finding

#: Version tag of the machine-readable domain inventory.
DOMAINS_SCHEMA = "repro-domains/1"

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES: Dict[str, str] = {
    "RPR141": "index values from one domain gather/scatter an array "
    "whose axis is another domain",
    "RPR142": "chunk-local offsets and global sequence numbers mixed "
    "in array arithmetic or a cross-domain store",
    "RPR143": "narrow or platform-default accumulator dtype on a "
    "trace-length-scaled path",
    "RPR144": "`np.frombuffer` view outlives a growth of its backing "
    "buffer without an intervening `del`",
    "RPR145": "boolean mask or elementwise operand pairs arrays of "
    "different domains",
    "RPR146": "declared `# repro: domains[...]` contract conflicts "
    "with inference or names an unknown token",
    "RPR147": "interned-id value passed to a parameter declared over "
    "raw doc ids",
}

#: The index domains, in canonical (report) order.
DOC_ID = "doc-id"
INTERNED_ID = "interned-id"
CACHE_SLOT = "cache-slot"
CHUNK_OFFSET = "chunk-offset"
GLOBAL_SEQ = "global-seq"
BYTE_SIZE = "byte-size"
AGE_TICK = "age-tick"

ALL_DOMAINS: Tuple[str, ...] = (
    DOC_ID,
    INTERNED_ID,
    CACHE_SLOT,
    CHUNK_OFFSET,
    GLOBAL_SEQ,
    BYTE_SIZE,
    AGE_TICK,
)

#: Declared wildcard: compatible with every domain.
ANY = "any"

#: Width classes. ``platform`` is the C-long-derived default integer
#: (what `np.arange` without dtype and narrow-input `cumsum` produce);
#: ``intp`` is the pointer-sized index integer.
NARROW_WIDTHS = frozenset(
    {"int8", "uint8", "int16", "uint16", "int32", "uint32", "float16"}
)
PLATFORM_WIDTHS = frozenset({"platform", "intp", "bool"})
WIDE_WIDTHS = frozenset({"int64", "uint64", "float32", "float64"})
ALL_WIDTHS = NARROW_WIDTHS | PLATFORM_WIDTHS | WIDE_WIDTHS

#: Widths that overflow (or can, per platform) at 100M-request scale.
_HAZARD_WIDTHS = (NARROW_WIDTHS | PLATFORM_WIDTHS) - {"float16"}

#: Accumulator results in these widths never overflow an int64 budget.
_SAFE_ACCUMULATOR_WIDTHS = frozenset({"int64", "uint64", "float32", "float64"})

#: dtype spellings (``np.<attr>``, bare builtins, string literals) -> width.
_DTYPE_ALIASES: Dict[str, str] = {
    "int8": "int8",
    "uint8": "uint8",
    "byte": "int8",
    "ubyte": "uint8",
    "int16": "int16",
    "uint16": "uint16",
    "int32": "int32",
    "uint32": "uint32",
    "int64": "int64",
    "uint64": "uint64",
    "longlong": "int64",
    "ulonglong": "uint64",
    "intp": "intp",
    "uintp": "intp",
    "int_": "platform",
    "uint": "platform",
    "long": "platform",
    "int": "platform",
    "float16": "float16",
    "half": "float16",
    "float32": "float32",
    "single": "float32",
    "float64": "float64",
    "double": "float64",
    "float": "float64",
    "bool_": "bool",
    "bool": "bool",
}

#: Names the numpy module object is bound to in this tree
#: (``np = load_numpy()`` makes it a local, so the import table can't
#: resolve it — recognition is by conventional name).
_NUMPY_NAMES = frozenset({"np", "numpy"})

#: Accumulating callables: ``np.<name>(...)`` or ``arr.<name>()``.
_ACCUMULATOR_NAMES = frozenset({"cumsum", "cumprod"})

#: Constructors that bind a growable buffer (RPR144 backing objects).
_BUFFER_CONSTRUCTORS = frozenset({"bytearray", "array"})

#: Buffer methods that may reallocate the backing storage.
_GROWTH_METHODS = frozenset(
    {
        "extend",
        "append",
        "insert",
        "frombytes",
        "fromlist",
        "fromfile",
        "clear",
        "pop",
        "remove",
    }
)

#: ``# repro: domains[...]`` contract pragma.
_CONTRACT_RE = re.compile(r"#\s*repro:\s*domains\[(?P<body>[^\]]*)\]")

_FunctionNode = ast.AST
_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class Dom:
    """Abstract value: axis domain, value domain, dtype width.

    ``None`` in any slot means *unknown* (no claim); :data:`ANY` is the
    declared wildcard (compatible with everything). A scalar has
    ``axis is None``; an annotated array always carries an axis
    (``any`` when unconstrained), which is how the analyzer tells
    array/array arithmetic from a sanctioned scalar base shift.
    """

    axis: Optional[str] = None
    value: Optional[str] = None
    width: Optional[str] = None

    def render(self) -> str:
        """Compact ``axis->value:width`` spec (``?`` for unknown value)."""
        spec = self.value if self.value is not None else "?"
        if self.axis is not None:
            spec = f"{self.axis}->{spec}"
        if self.width is not None:
            spec = f"{spec}:{self.width}"
        return spec

    @property
    def known(self) -> bool:
        """Whether any slot carries information."""
        return (
            self.axis is not None
            or self.value is not None
            or self.width is not None
        )


UNKNOWN = Dom()


def _join_token(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Join two domain/width tokens toward unknown on conflict."""
    return a if a == b else None


def join(a: Dom, b: Dom) -> Dom:
    """Per-slot join of two abstract values (conflicts become unknown)."""
    return Dom(
        axis=_join_token(a.axis, b.axis),
        value=_join_token(a.value, b.value),
        width=_join_token(a.width, b.width),
    )


def _conflict(declared: Optional[str], inferred: Optional[str]) -> bool:
    """Whether two tokens are both concrete and different."""
    return (
        declared is not None
        and inferred is not None
        and declared != ANY
        and inferred != ANY
        and declared != inferred
    )


def parse_spec(spec: str) -> Tuple[Dom, List[str]]:
    """``(dom, unknown_tokens)`` from an ``[axis->]value[:width]`` spec."""
    axis: Optional[str] = None
    unknown: List[str] = []
    body = spec.strip()
    if "->" in body:
        axis_part, body = body.split("->", 1)
        axis = axis_part.strip()
    width: Optional[str] = None
    if ":" in body:
        body, width_part = body.split(":", 1)
        width = width_part.strip()
    value: Optional[str] = body.strip() or None
    for token in (axis, value):
        if token is not None and token not in ALL_DOMAINS and token != ANY:
            unknown.append(token)
    if width is not None and width not in ALL_WIDTHS:
        unknown.append(width)
        width = None
    return (
        Dom(
            axis=axis if axis in ALL_DOMAINS or axis == ANY else None,
            value=value if value in ALL_DOMAINS or value == ANY else None,
            width=width,
        ),
        unknown,
    )


def parse_pragma(
    line: str,
) -> Optional[List[Tuple[Optional[str], Dom, List[str]]]]:
    """Entries of a ``domains[...]`` pragma on ``line``, or None.

    Each entry is ``(name_or_None, dom, unknown_tokens)``; the name is
    None for a bare spec (valid only inline on a single-name assignment).
    """
    match = _CONTRACT_RE.search(line)
    if match is None:
        return None
    entries: List[Tuple[Optional[str], Dom, List[str]]] = []
    for chunk in match.group("body").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name: Optional[str] = None
        spec = chunk
        if "=" in chunk:
            name_part, spec = chunk.split("=", 1)
            name = name_part.strip()
        dom, unknown = parse_spec(spec)
        entries.append((name, dom, unknown))
    return entries


def _scope_walk(root: _FunctionNode) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested ``def``s."""
    body = getattr(root, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _DEF_NODES + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _dtype_width(node: Optional[ast.expr]) -> Optional[str]:
    """The width class a dtype expression names, if recognisable."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id in _NUMPY_NAMES:
            return _DTYPE_ALIASES.get(node.attr)
        return None
    if isinstance(node, ast.Name):
        return _DTYPE_ALIASES.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_ALIASES.get(node.value)
    return None


def _call_dtype(call: ast.Call, positional: Optional[int] = None) -> Optional[ast.expr]:
    """The dtype argument of ``call``: ``dtype=`` kwarg or position."""
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    if positional is not None and len(call.args) > positional:
        return call.args[positional]
    return None


def _np_chain(func: ast.expr) -> Optional[Tuple[str, ...]]:
    """``("add", "accumulate")`` for ``np.add.accumulate``; None if not
    an attribute chain rooted at a numpy module name."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in _NUMPY_NAMES and parts:
        parts.reverse()
        return tuple(parts)
    return None


def _expr_display(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        return "<expr>"
    return text if len(text) <= 48 else text[:45] + "..."


def _function_params(func: _FunctionNode) -> List[str]:
    """All parameter names of ``func``, in positional order."""
    if not isinstance(func, _DEF_NODES):
        return []
    args = list(func.args.posonlyargs) + list(func.args.args)
    names = [arg.arg for arg in args]
    names += [arg.arg for arg in func.args.kwonlyargs]
    if func.args.vararg is not None:
        names.append(func.args.vararg.arg)
    if func.args.kwarg is not None:
        names.append(func.args.kwarg.arg)
    return names


@dataclass
class FunctionDomains:
    """Domain summary of one project function.

    Attributes:
        node_id: ``"module:qualname"`` id in the call graph.
        info: The owning module.
        func: The function's AST (nested defs included).
        declared: Pinned contract bindings, name -> :class:`Dom`.
        declared_lines: Contract source line per declared name.
        contract_issues: ``(line, message)`` pairs for malformed pragmas.
        env: Fixpoint environment, name -> inferred :class:`Dom`.
    """

    node_id: str
    info: ModuleInfo
    func: _FunctionNode
    declared: Dict[str, Dom]
    declared_lines: Dict[str, int]
    contract_issues: List[Tuple[int, str]]
    env: Dict[str, Dom]

    def lookup(self, name: str) -> Dom:
        """The binding for ``name`` (declared wins over inferred)."""
        return self.declared.get(name) or self.env.get(name, UNKNOWN)


def collect_contracts(
    info: ModuleInfo, func: _FunctionNode
) -> Tuple[Dict[str, Dom], Dict[str, int], List[Tuple[int, str]]]:
    """``(declared, declared_lines, issues)`` for one function.

    Named entries bind from any pragma line in the function's span or
    the contiguous comment block above the ``def``; bare entries bind
    the single ``Name`` target of the assignment they sit on.
    """
    declared: Dict[str, Dom] = {}
    declared_lines: Dict[str, int] = {}
    issues: List[Tuple[int, str]] = []
    lines = info.source.splitlines()
    start = getattr(func, "lineno", 1)
    end = getattr(func, "end_lineno", start)
    for deco in getattr(func, "decorator_list", []):
        start = min(start, getattr(deco, "lineno", start))

    # Line -> single-Name assignment target, for bare inline specs.
    inline_targets: Dict[int, str] = {}
    for node in ast.walk(func):
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            target = node.target
        if isinstance(target, ast.Name):
            inline_targets.setdefault(node.lineno, target.id)

    def absorb(lineno: int, text: str) -> None:
        entries = parse_pragma(text)
        if entries is None:
            return
        for name, dom, unknown in entries:
            for token in unknown:
                issues.append(
                    (
                        lineno,
                        f"domain contract names unknown token `{token}`; "
                        "known domains: "
                        + ", ".join(ALL_DOMAINS + (ANY,))
                        + "; known widths: "
                        + ", ".join(sorted(ALL_WIDTHS)),
                    )
                )
            if name is None:
                name = inline_targets.get(lineno)
                if name is None:
                    issues.append(
                        (
                            lineno,
                            "bare domain spec needs a single-name "
                            "assignment on the same line; use "
                            "`name=spec` elsewhere",
                        )
                    )
                    continue
            if name in declared:
                issues.append(
                    (lineno, f"duplicate domain contract for `{name}`")
                )
                continue
            declared[name] = dom
            declared_lines[name] = lineno

    # Contiguous comment-only block immediately above the def.
    above = start - 1
    while above >= 1 and lines[above - 1].lstrip().startswith("#"):
        absorb(above, lines[above - 1])
        above -= 1
    for lineno in range(start, min(end, len(lines)) + 1):
        absorb(lineno, lines[lineno - 1])
    return declared, declared_lines, issues


class _Evaluator:
    """Expression evaluation over one function's environment.

    One instance serves both phases: the fixpoint runs with
    ``reporter=None`` (no findings), the findings pass passes a sink.
    """

    def __init__(self, summary: FunctionDomains) -> None:
        self.summary = summary
        self.reporter: Optional[List[Finding]] = None

    # -- findings ---------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if self.reporter is None:
            return
        self.reporter.append(
            Finding(
                path=self.summary.info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- evaluation -------------------------------------------------------

    def eval(self, node: Optional[ast.expr]) -> Dom:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self.summary.lookup(node.id)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            return Dom(axis=operand.axis, value=None, width=operand.width)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Constant):
            return UNKNOWN
        return UNKNOWN

    def _is_mask(self, dom: Dom) -> bool:
        return dom.width == "bool"

    def _subscript(self, node: ast.Subscript) -> Dom:
        base = self.eval(node.value)
        sl = node.slice
        if isinstance(sl, ast.Slice):
            return base
        if isinstance(sl, ast.Tuple):
            return UNKNOWN
        index = self.eval(sl)
        if self._is_mask(index):
            if _conflict(index.axis, base.axis):
                self._report(
                    node,
                    "RPR145",
                    f"boolean mask over the `{index.axis}` axis applied "
                    f"to `{_expr_display(node.value)}`, whose axis is "
                    f"`{base.axis}`; the mask length silently "
                    "mismatches — align the domains or fix the "
                    "annotation",
                )
            return base
        if _conflict(index.value, base.axis):
            self._report(
                node,
                "RPR141",
                f"`{index.value}`-domain index into "
                f"`{_expr_display(node.value)}`, whose axis is "
                f"`{base.axis}`; translate the index into the array's "
                "domain or fix the annotation",
            )
        return Dom(axis=index.axis, value=base.value, width=base.width)

    def _binop(self, node: ast.BinOp) -> Dom:
        left = self.eval(node.left)
        right = self.eval(node.right)
        axis = self._elementwise_axis(node, left, right)
        width = left.width if left.width == right.width else (
            left.width if right.width is None else (
                right.width if left.width is None else None
            )
        )
        value = self._binop_value(node, left, right)
        return Dom(axis=axis, value=value, width=width)

    def _elementwise_axis(
        self, node: ast.AST, left: Dom, right: Dom
    ) -> Optional[str]:
        if _conflict(left.axis, right.axis):
            self._report(
                node,
                "RPR145",
                f"elementwise operation pairs a `{left.axis}`-axis "
                f"array with a `{right.axis}`-axis array; their "
                "lengths agree only by accident — align the domains "
                "or fix the annotation",
            )
            return None
        return left.axis if left.axis is not None else right.axis

    def _binop_value(
        self, node: ast.BinOp, left: Dom, right: Dom
    ) -> Optional[str]:
        lv, rv = left.value, right.value
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if lv == rv:
                return None if isinstance(node.op, ast.Sub) else lv
            if {lv, rv} == {CHUNK_OFFSET, GLOBAL_SEQ}:
                both_arrays = left.axis is not None and right.axis is not None
                if both_arrays:
                    self._report(
                        node,
                        "RPR142",
                        "elementwise arithmetic mixes a `chunk-offset` "
                        "array with a `global-seq` array; convert with "
                        "a scalar chunk base (`+ gbase`) first",
                    )
                    return None
                if isinstance(node.op, ast.Add):
                    # Scalar base shift: the sanctioned conversion.
                    return GLOBAL_SEQ
                return None
            if lv is None:
                return rv
            if rv is None:
                return lv
            return None
        if isinstance(node.op, ast.Mult):
            index_domains = (
                DOC_ID,
                INTERNED_ID,
                CACHE_SLOT,
                CHUNK_OFFSET,
                GLOBAL_SEQ,
            )
            if lv in index_domains or rv in index_domains:
                return None
            return lv if lv == rv else None
        return None

    def _compare(self, node: ast.Compare) -> Dom:
        left = self.eval(node.left)
        axis = left.axis
        for comparator in node.comparators:
            other = self.eval(comparator)
            axis = self._elementwise_axis(node, Dom(axis=axis), other)
        return Dom(axis=axis, value=None, width="bool")

    # -- calls ------------------------------------------------------------

    def _call(self, node: ast.Call) -> Dom:
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)
        chain = _np_chain(node.func)
        if chain is not None:
            return self._np_call(node, chain)
        if isinstance(node.func, ast.Attribute):
            return self._method_call(node, node.func)
        return UNKNOWN

    def _np_call(self, node: ast.Call, chain: Tuple[str, ...]) -> Dom:
        name = chain[-1] if len(chain) == 1 else ".".join(chain)
        arg0 = self.eval(node.args[0]) if node.args else UNKNOWN
        if name in _ACCUMULATOR_NAMES or name in (
            "add.accumulate",
            "power",
        ):
            return self._accumulator(node, name, arg0)
        if name == "arange":
            width = _dtype_width(_call_dtype(node)) or "platform"
            return Dom(axis=None, value=None, width=width)
        if name == "frombuffer":
            width = _dtype_width(_call_dtype(node, positional=1))
            return Dom(axis=arg0.axis, value=arg0.value, width=width)
        if name == "flatnonzero":
            return Dom(axis=None, value=arg0.axis, width="intp")
        if name == "argsort":
            return Dom(axis=arg0.axis, value=arg0.axis, width="intp")
        if name == "searchsorted":
            probe = self.eval(node.args[1]) if len(node.args) > 1 else UNKNOWN
            return Dom(axis=probe.axis, value=arg0.axis, width="intp")
        if name == "bincount":
            return Dom(axis=arg0.value, value=None, width="intp")
        if name == "repeat":
            return Dom(axis=None, value=arg0.value, width=arg0.width)
        if name in ("array", "asarray", "ascontiguousarray"):
            width = _dtype_width(_call_dtype(node, positional=1))
            return Dom(
                axis=arg0.axis, value=arg0.value, width=width or arg0.width
            )
        if name in ("empty", "zeros", "ones"):
            width = _dtype_width(_call_dtype(node, positional=1))
            return Dom(axis=None, value=None, width=width)
        if name == "full":
            width = _dtype_width(_call_dtype(node, positional=2))
            return Dom(axis=None, value=None, width=width)
        if name == "where" and len(node.args) == 3:
            return join(self.eval(node.args[1]), self.eval(node.args[2]))
        if name in ("minimum", "maximum") and len(node.args) == 2:
            return join(arg0, self.eval(node.args[1]))
        if name in ("maximum.accumulate", "minimum.accumulate"):
            # Running extrema never exceed their inputs: no width hazard.
            return arg0
        if name in ("cumsum", "cumprod"):  # pragma: no cover - in set above
            return self._accumulator(node, name, arg0)
        return UNKNOWN

    def _method_call(self, node: ast.Call, func: ast.Attribute) -> Dom:
        receiver = self.eval(func.value)
        if func.attr in ("view", "copy", "ravel"):
            return receiver
        if func.attr == "astype":
            width = _dtype_width(
                node.args[0] if node.args else _call_dtype(node)
            )
            return Dom(
                axis=receiver.axis, value=receiver.value, width=width
            )
        if func.attr in _ACCUMULATOR_NAMES:
            return self._accumulator(node, func.attr, receiver)
        if func.attr == "tolist":
            return UNKNOWN
        return UNKNOWN

    def _accumulator(self, node: ast.Call, name: str, arg: Dom) -> Dom:
        explicit = _dtype_width(_call_dtype(node))
        if explicit is not None:
            result_width: Optional[str] = explicit
        elif arg.width in _HAZARD_WIDTHS:
            # numpy promotes bool / narrower-than-`int_` integer inputs
            # to the *platform* integer — int32 on Windows.
            result_width = "platform"
        else:
            result_width = arg.width
        if result_width is not None and (
            result_width not in _SAFE_ACCUMULATOR_WIDTHS
        ):
            self._report(
                node,
                "RPR143",
                f"`{name}` accumulates into `{result_width}`, which "
                "overflows on trace-length-scaled totals (platform "
                "default is int32 on Windows); pass an explicit "
                "`dtype=np.int64`",
            )
        return Dom(axis=arg.axis, value=arg.value, width=result_width)


class _FunctionAnalyzer:
    """Both phases over one function: env fixpoint, then findings."""

    #: Fixpoint pass guard; the per-slot join only moves toward unknown,
    #: so convergence is fast — this bound is a safety net, not a budget.
    _MAX_PASSES = 10

    def __init__(self, summary: FunctionDomains) -> None:
        self.summary = summary
        self.evaluator = _Evaluator(summary)

    # -- phase 1: environment fixpoint ------------------------------------

    def solve(self) -> None:
        for _ in range(self._MAX_PASSES):
            if not self._pass():
                return

    def _pass(self) -> bool:
        changed = False
        for node in ast.walk(self.summary.func):
            if isinstance(node, ast.Assign):
                value = self.evaluator.eval(node.value)
                for target in node.targets:
                    changed |= self._bind_target(target, node.value, value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                changed |= self._bind_target(
                    node.target, node.value, self.evaluator.eval(node.value)
                )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    synthetic = ast.BinOp(
                        left=ast.Name(id=node.target.id, ctx=ast.Load()),
                        op=node.op,
                        right=node.value,
                    )
                    ast.copy_location(synthetic, node)
                    ast.fix_missing_locations(synthetic)
                    changed |= self._bind(
                        node.target.id, self.evaluator.eval(synthetic)
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    iterated = self.evaluator.eval(node.iter)
                    changed |= self._bind(
                        node.target.id,
                        Dom(
                            axis=None,
                            value=iterated.value,
                            width=iterated.width,
                        ),
                    )
                else:
                    changed |= self._bind_target(node.target, None, UNKNOWN)
        return changed

    def _bind_target(
        self,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value: Dom,
    ) -> bool:
        if isinstance(target, ast.Name):
            return self._bind(target.id, value)
        if isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                elements = value_node.elts
            else:
                elements = [None] * len(target.elts)
            changed = False
            for element, source in zip(target.elts, elements):
                changed |= self._bind_target(
                    element,
                    source,
                    self.evaluator.eval(source) if source else UNKNOWN,
                )
            return changed
        return False

    def _bind(self, name: str, value: Dom) -> bool:
        if name in self.summary.declared:
            return False  # Pinned: drift is RPR146, not a rebind.
        old = self.summary.env.get(name)
        new = value if old is None else join(old, value)
        if new != old:
            self.summary.env[name] = new
            return True
        return False

    # -- phase 2: findings -------------------------------------------------

    def findings(self, analysis: "DomainAnalysis") -> List[Finding]:
        sink: List[Finding] = []
        self.evaluator.reporter = sink
        try:
            for node in ast.walk(self.summary.func):
                if isinstance(node, (ast.Subscript, ast.BinOp, ast.Compare)):
                    self.evaluator.eval(node)
                elif isinstance(node, ast.Call):
                    self.evaluator.eval(node)
                    self._check_escape(analysis, node, sink)
                elif isinstance(node, ast.Assign):
                    value = self.evaluator.eval(node.value)
                    for target in node.targets:
                        self._check_store(target, node, value, sink)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if node.value is not None:
                        self._check_store(
                            node.target,
                            node,
                            self.evaluator.eval(node.value),
                            sink,
                        )
        finally:
            self.evaluator.reporter = None
        for line, message in self.summary.contract_issues:
            sink.append(
                Finding(
                    path=self.summary.info.path,
                    line=line,
                    col=0,
                    rule="RPR146",
                    message=message,
                )
            )
        sink.extend(_scan_view_lifetimes(self.summary))
        return sink

    def _check_store(
        self,
        target: ast.expr,
        anchor: ast.AST,
        value: Dom,
        sink: List[Finding],
    ) -> None:
        """Pinned-contract drift and cross-domain scatter stores."""
        if isinstance(target, ast.Name):
            declared = self.summary.declared.get(target.id)
            if declared is None:
                return
            drift = []
            if _conflict(declared.axis, value.axis):
                drift.append(f"axis `{value.axis}`")
            if _conflict(declared.value, value.value):
                drift.append(f"value domain `{value.value}`")
            if _conflict(declared.width, value.width):
                drift.append(f"width `{value.width}`")
            if drift:
                sink.append(
                    Finding(
                        path=self.summary.info.path,
                        line=getattr(anchor, "lineno", 1),
                        col=getattr(anchor, "col_offset", 0),
                        rule="RPR146",
                        message=(
                            f"`{target.id}` is declared "
                            f"`{declared.render()}` but this assignment "
                            f"infers {', '.join(drift)}; fix the code "
                            "or the contract"
                        ),
                    )
                )
            return
        if isinstance(target, ast.Subscript):
            base = self.evaluator.eval(target.value)
            stored, held = value.value, base.value
            if _conflict(stored, held) and {stored, held} == {
                CHUNK_OFFSET,
                GLOBAL_SEQ,
            }:
                sink.append(
                    Finding(
                        path=self.summary.info.path,
                        line=getattr(anchor, "lineno", 1),
                        col=getattr(anchor, "col_offset", 0),
                        rule="RPR142",
                        message=(
                            f"stores `{stored}` values into "
                            f"`{_expr_display(target.value)}`, which "
                            f"holds `{held}`; add the chunk base "
                            "(`+ gbase`) before the store"
                        ),
                    )
                )

    def _check_escape(
        self,
        analysis: "DomainAnalysis",
        call: ast.Call,
        sink: List[Finding],
    ) -> None:
        """RPR147: interned-id arguments against doc-id parameter pins."""
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return
        callees = resolve_call(
            analysis.model, self.summary.info, call, precise=True
        )
        for callee_id in sorted(callees):
            target = analysis.functions.get(callee_id)
            if target is None or not target.declared:
                continue
            params = _function_params(target.func)
            offset = (
                1
                if params
                and params[0] in ("self", "cls")
                and isinstance(call.func, ast.Attribute)
                else 0
            )
            bound: List[Tuple[str, ast.expr]] = []
            for index, arg in enumerate(call.args):
                slot = offset + index
                if slot < len(params):
                    bound.append((params[slot], arg))
            for kw in call.keywords:
                if kw.arg is not None:
                    bound.append((kw.arg, kw.value))
            for param, arg in bound:
                pin = target.declared.get(param)
                if pin is None or pin.value != DOC_ID:
                    continue
                passed = self.evaluator.eval(arg)
                if passed.value == INTERNED_ID:
                    sink.append(
                        Finding(
                            path=self.summary.info.path,
                            line=call.lineno,
                            col=call.col_offset,
                            rule="RPR147",
                            message=(
                                f"passes an `interned-id` value to "
                                f"parameter `{param}` of `{callee_id}`, "
                                "declared over raw `doc-id`s; translate "
                                "through the interner first"
                            ),
                        )
                    )


def _scan_view_lifetimes(summary: FunctionDomains) -> List[Finding]:
    """RPR144 over every lexical scope of one function.

    Buffer names are collected function-wide (closures grow buffers the
    outer scope owns); view/growth/kill ordering is judged per scope so
    a view local to a nested helper dies at its return.
    """
    buffers: Set[str] = set()
    for node in ast.walk(summary.func):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            continue
        callee = value.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute) else ""
        )
        if name in _BUFFER_CONSTRUCTORS:
            for target in targets:
                if isinstance(target, ast.Name):
                    buffers.add(target.id)
    if not buffers:
        return []

    findings: List[Finding] = []
    scopes: List[_FunctionNode] = [summary.func]
    scopes.extend(
        node
        for node in ast.walk(summary.func)
        if isinstance(node, _DEF_NODES) and node is not summary.func
    )
    for scope in scopes:
        findings.extend(_scan_scope_lifetimes(summary, scope, buffers))
    return findings


def _scan_scope_lifetimes(
    summary: FunctionDomains, scope: _FunctionNode, buffers: Set[str]
) -> List[Finding]:
    growths: List[Tuple[str, int]] = []  # (buffer, line)
    views: List[Tuple[str, str, int]] = []  # (view, buffer, line)
    kills: Dict[str, List[int]] = {}  # view -> kill lines
    loops: List[Tuple[int, int]] = []

    for node in _scope_walk(scope):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            loops.append(
                (node.lineno, getattr(node, "end_lineno", node.lineno))
            )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            root = node.func.value
            if (
                isinstance(root, ast.Name)
                and root.id in buffers
                and node.func.attr in _GROWTH_METHODS
            ):
                growths.append((root.id, node.lineno))
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id in buffers:
                growths.append((node.target.id, node.lineno))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    kills.setdefault(target.id, []).append(node.lineno)
        elif isinstance(node, ast.Assign):
            value = node.value
            is_view = (
                isinstance(value, ast.Call)
                and _np_chain(value.func) == ("frombuffer",)
                and value.args
                and isinstance(value.args[0], ast.Name)
                and value.args[0].id in buffers
            )
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if is_view:
                    assert isinstance(value, ast.Call)
                    buffer_arg = value.args[0]
                    assert isinstance(buffer_arg, ast.Name)
                    views.append((target.id, buffer_arg.id, node.lineno))
                else:
                    # Rebinding to a non-view kills the old view.
                    kills.setdefault(target.id, []).append(node.lineno)

    findings: List[Finding] = []
    reported: Set[Tuple[str, str]] = set()
    for view, buffer, view_line in views:
        kill_lines = [k for k in kills.get(view, []) if k > view_line]
        kill_line = min(kill_lines) if kill_lines else None
        for grown, growth_line in growths:
            if grown != buffer or (view, buffer) in reported:
                continue
            after = growth_line > view_line and (
                kill_line is None or growth_line < kill_line
            )
            shares_loop = kill_line is None and any(
                start <= view_line <= end and start <= growth_line <= end
                for start, end in loops
            )
            if after or shares_loop:
                reported.add((view, buffer))
                findings.append(
                    Finding(
                        path=summary.info.path,
                        line=view_line,
                        col=0,
                        rule="RPR144",
                        message=(
                            f"`{view}` is a zero-copy view of "
                            f"`{buffer}`, which grows at line "
                            f"{growth_line}; growth reallocates the "
                            "buffer — `del` the view before growth "
                            "and re-fetch it after"
                        ),
                    )
                )
    return findings


class DomainAnalysis:
    """Domain summaries for every function in a :class:`ProjectModel`.

    Attributes:
        model: The analyzed model.
        functions: Node id -> :class:`FunctionDomains` (fixpoint result).
    """

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.functions: Dict[str, FunctionDomains] = {}
        for info in model.modules.values():
            for qualname, func in info.functions.items():
                declared, declared_lines, issues = collect_contracts(
                    info, func
                )
                summary = FunctionDomains(
                    node_id=f"{info.name}:{qualname}",
                    info=info,
                    func=func,
                    declared=declared,
                    declared_lines=declared_lines,
                    contract_issues=issues,
                    env={},
                )
                _FunctionAnalyzer(summary).solve()
                self.functions[summary.node_id] = summary

    def findings(self) -> List[Finding]:
        """Every finding of every rule, sorted and deduplicated."""
        raw: List[Finding] = []
        for node_id in sorted(self.functions):
            summary = self.functions[node_id]
            raw.extend(_FunctionAnalyzer(summary).findings(self))
        return sorted(set(raw))

    def report(self) -> Dict[str, object]:
        """The ``repro-domains/1`` document for this model.

        Only functions carrying a declaration or a non-trivial inference
        are listed, keyed by node id with line-number-free specs, so the
        document (and the CI snapshot diffed against it) is stable
        across formatting-only edits.
        """
        functions: Dict[str, Dict[str, Dict[str, str]]] = {}
        declared_names = 0
        inferred_names = 0
        for node_id in sorted(self.functions):
            summary = self.functions[node_id]
            declared = {
                name: summary.declared[name].render()
                for name in sorted(summary.declared)
            }
            inferred = {
                name: dom.render()
                for name, dom in sorted(summary.env.items())
                if name not in summary.declared
                and (dom.axis is not None or dom.value is not None)
            }
            if not declared and not inferred:
                continue
            declared_names += len(declared)
            inferred_names += len(inferred)
            functions[node_id] = {
                "declared": declared,
                "inferred": inferred,
            }
        return {
            "schema": DOMAINS_SCHEMA,
            "functions": functions,
            "totals": {
                "annotated-functions": sum(
                    1 for entry in functions.values() if entry["declared"]
                ),
                "declared-names": declared_names,
                "inferred-names": inferred_names,
            },
        }


#: Memoized analyses, keyed weakly so models are collectable.
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectModel, DomainAnalysis]" = (
    WeakKeyDictionary()
)


def domain_analysis(model: ProjectModel) -> DomainAnalysis:
    """The (cached) :class:`DomainAnalysis` for ``model``.

    ``repro analyze`` / ``repro check`` share one model per invocation,
    so the per-function fixpoints are a build-once cost (the same memo
    discipline as :func:`repro.devtools.analysis.effects.effect_analysis`).
    """
    analysis = _ANALYSIS_CACHE.get(model)
    if analysis is None:
        analysis = DomainAnalysis(model)
        _ANALYSIS_CACHE[model] = analysis
    return analysis


def analyze_domains(model: ProjectModel) -> List[Finding]:
    """RPR141-147 over every project function; sorted."""
    return domain_analysis(model).findings()
