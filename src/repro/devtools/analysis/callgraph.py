"""Static call graph over a :class:`~repro.devtools.analysis.model.ProjectModel`.

Edges are resolved without type inference, in three tiers:

1. **Local name** — ``helper(...)`` inside a module resolves to that
   module's ``helper`` (or to ``Cls.__init__`` when ``Cls`` is a local
   class).
2. **Imported name** — ``simulate_columnar(...)`` resolves through the
   import table to the defining module; imported classes resolve to their
   ``__init__``. ``module.attr(...)`` resolves when ``module`` is an
   imported project module.
3. **Method name** — ``obj.process(...)`` with an unknown receiver
   resolves to *every* project function named ``process`` (the model's
   ``method_index``). This deliberately over-approximates: reachability
   analyses (the determinism auditor) must not lose a path because a
   receiver's type was not statically evident. The cost is a few spurious
   edges into same-named helpers, which the narrow per-node checks keep
   harmless.

Nodes are ``"module:qualname"`` strings, e.g.
``"repro.simulation.simulator:CooperativeSimulator.run"``.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.devtools.analysis.model import ModuleInfo, ProjectModel


def _split_symbol(model: ProjectModel, dotted: str, depth: int = 0) -> Optional[str]:
    """Resolve a dotted name to a ``module:qualname`` node id, if it is one.

    Tries the longest module prefix first, so ``repro.a.b.Cls.meth``
    resolves against module ``repro.a.b`` with qualname ``Cls.meth``.
    Re-exports are chased one hop at a time (``from repro.fastpath import
    simulate_columnar`` lands on ``repro.fastpath.engine``), bounded to
    keep accidental import cycles from recursing forever.
    """
    if depth > 4:
        return None
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:cut])
        info = model.modules.get(module_name)
        if info is None:
            continue
        remainder = ".".join(parts[cut:])
        if remainder in info.functions:
            return f"{module_name}:{remainder}"
        if remainder in info.classes:
            init = f"{remainder}.__init__"
            if init in info.functions:
                return f"{module_name}:{init}"
            return None
        reexport = info.imports.get(parts[cut])
        if reexport is not None:
            chased = ".".join([reexport] + parts[cut + 1 :])
            return _split_symbol(model, chased, depth + 1)
        return None
    return None


class CallGraph:
    """Caller -> callees adjacency over project functions.

    Attributes:
        edges: Node id -> sorted callee node ids.
    """

    def __init__(self, edges: Dict[str, List[str]]) -> None:
        self.edges = edges

    @classmethod
    def build(cls, model: ProjectModel, precise: bool = False) -> "CallGraph":
        """Construct the graph for every function in ``model``.

        With ``precise=True`` the receiver-agnostic method-index tier is
        dropped: only calls whose target is statically certain (local or
        imported names, ``self.method``) produce edges. Reachability
        analyses that *flag* per-node properties want the default
        over-approximation; closure analyses that *propagate* properties
        (the hot-loop IO audit) want the precise graph, because one
        ubiquitous method name (``get``, ``put``) would otherwise smear
        its effects over every call site in the tree.
        """
        edges: Dict[str, List[str]] = {}
        for info in model.modules.values():
            for qualname, node in info.functions.items():
                caller = f"{info.name}:{qualname}"
                edges[caller] = sorted(
                    _callees(model, info, node, precise=precise)
                )
        return cls(edges)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every node reachable from ``roots`` (roots included when known)."""
        seen: Set[str] = set()
        queue = deque(root for root in roots if root in self.edges)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen


def resolve_call(
    model: ProjectModel,
    info: ModuleInfo,
    node: ast.Call,
    precise: bool = False,
) -> Set[str]:
    """Node ids a single call expression may dispatch to.

    The public per-call variant of the edge builder, for analyses that
    need callee sets at *specific* sites (e.g. the hot-loop IO audit)
    rather than whole-function adjacency. ``precise`` as in
    :meth:`CallGraph.build`.
    """
    target = node.func
    if isinstance(target, ast.Name):
        resolved = _resolve_name(model, info, target.id)
        return {resolved} if resolved is not None else set()
    if isinstance(target, ast.Attribute):
        return _resolve_attribute(model, info, target, precise=precise)
    return set()


def resolve_callable_ref(
    model: ProjectModel, info: ModuleInfo, node: ast.expr
) -> Optional[str]:
    """Resolve a callable passed *by reference* (not called) to a node id.

    Handles the pool-submission idiom: ``pool.imap(func, ...)`` or
    ``Pool(initializer=_init_worker)`` name a function without calling
    it, so the edge builder never sees it — but it still runs, in a
    worker process.
    """
    if isinstance(node, ast.Name):
        return _resolve_name(model, info, node.id)
    if isinstance(node, ast.Attribute):
        resolved = _resolve_attribute(model, info, node)
        if len(resolved) == 1:
            return next(iter(resolved))
    return None


def _callees(
    model: ProjectModel,
    info: ModuleInfo,
    func: ast.AST,
    precise: bool = False,
) -> Set[str]:
    """Resolved callee node ids for one function body."""
    callees: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            resolved = _resolve_name(model, info, target.id)
            if resolved is not None:
                callees.add(resolved)
        elif isinstance(target, ast.Attribute):
            callees.update(
                _resolve_attribute(model, info, target, precise=precise)
            )
    return callees


def _resolve_name(
    model: ProjectModel, info: ModuleInfo, name: str
) -> Optional[str]:
    """Resolve a bare called name inside ``info``."""
    if name in info.functions:
        return f"{info.name}:{name}"
    if name in info.classes:
        init = f"{name}.__init__"
        if init in info.functions:
            return f"{info.name}:{init}"
        return None
    dotted = info.imports.get(name)
    if dotted is not None:
        return _split_symbol(model, dotted)
    return None


def _resolve_attribute(
    model: ProjectModel,
    info: ModuleInfo,
    target: ast.Attribute,
    precise: bool = False,
) -> Set[str]:
    """Resolve an ``x.y.z(...)`` callee inside ``info``."""
    # Reconstruct the dotted receiver chain when it is made of plain names.
    parts: List[str] = [target.attr]
    value: ast.expr = target.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
        parts.reverse()
        head, rest = parts[0], parts[1:]
        dotted_head = info.imports.get(head)
        if dotted_head is not None:
            resolved = _split_symbol(model, ".".join([dotted_head] + rest))
            if resolved is not None:
                return {resolved}
        # `self.method(...)` / `cls.method(...)`: prefer same-module methods.
        if head in ("self", "cls") and len(rest) == 1:
            local = [
                f"{info.name}:{qualname}"
                for qualname in info.functions
                if qualname.rsplit(".", 1)[-1] == rest[0] and "." in qualname
            ]
            if local:
                return set(local)
    # Unknown receiver: fall back to the project-wide method-name index
    # (the deliberate over-approximation), unless precision was asked for.
    if precise:
        return set()
    return set(model.method_index.get(target.attr, ()))
