"""Per-function effect inference (``repro analyze effects``, RPR137).

The parallel sweep runner, the dual-engine parity contract, and the
planned asyncio cluster all rest on the same unstated assumption: nothing
on a hot or worker-reachable path secretly mutates shared state, touches
IO, or blocks. This module makes that assumption checkable by inferring,
for every project function, a conservative *effect summary* — a set of
labels from a small lattice — and propagating the summaries to a fixpoint
over the three-tier :class:`~repro.devtools.analysis.callgraph.CallGraph`:

* ``reads-config`` — reads an attribute off a ``SimulationConfig``
  receiver (the same conventions as :mod:`repro.devtools.analysis.dataflow`);
* ``mutates-self`` — stores to / deletes / calls a mutating container
  method on state rooted at ``self`` (or ``cls``);
* ``mutates-param`` — the same, rooted at any other parameter;
* ``mutates-global`` — rebinds a ``global`` name or mutates a
  module-level mutable binding;
* ``io`` — console/file IO (``print``, ``open``, ``os``/``shutil`` file
  ops, ``Path.write_text`` idioms);
* ``rng`` — process-global ``random`` module calls;
* ``time`` — wall-clock reads (``time.time`` and friends);
* ``blocking`` — calls that park the thread (``time.sleep``, synchronous
  socket/subprocess ops, ``input``).

A function with the empty set is *pure* for our purposes. Transitive
summaries deliberately over-approximate in the same direction as the call
graph: a caller inherits every callee label (including ``mutates-self``,
which at the caller means "may mutate state reachable from objects it
touches"), and unknown receivers fan out through ``method_index``. The
audits built on top (:mod:`repro.devtools.analysis.concurrency`, the
determinism pass) are reachability filters over these summaries, so a
path must never be lost to a receiver whose type was not statically
evident.

Functions may declare a contract as a pragma on their ``def`` line::

    def query_wire_length(url):  # repro: effects[pure]
    def record(self, age):       # repro: effects[mutates-self]

The declaration is an upper bound; **RPR137** fires when inference finds
an effect the contract does not admit (or an unknown label). The full
inventory exports as a machine-readable ``repro-effects/1`` document
(``repro analyze --effects-out``), snapshot-diffed in CI so effect
regressions surface in review.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from repro.devtools.analysis.callgraph import CallGraph
from repro.devtools.analysis.dataflow import CONFIG_RECEIVER_NAMES
from repro.devtools.analysis.model import ModuleInfo, ProjectModel
from repro.devtools.lint.findings import Finding

#: Version tag of the machine-readable effect inventory.
EFFECTS_SCHEMA = "repro-effects/1"

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES: Dict[str, str] = {
    "RPR137": "inferred effects escape the declared "
    "`# repro: effects[...]` contract",
}

#: The effect labels, in canonical (report) order.
READS_CONFIG = "reads-config"
MUTATES_SELF = "mutates-self"
MUTATES_PARAM = "mutates-param"
MUTATES_GLOBAL = "mutates-global"
IO = "io"
RNG = "rng"
TIME = "time"
BLOCKING = "blocking"

ALL_EFFECTS: Tuple[str, ...] = (
    READS_CONFIG,
    MUTATES_SELF,
    MUTATES_PARAM,
    MUTATES_GLOBAL,
    IO,
    RNG,
    TIME,
    BLOCKING,
)

#: Contract label meaning "no effects at all".
PURE = "pure"

#: Fully-dotted callables that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Module-level ``random`` functions sharing hidden global state.
GLOBAL_RNG_CALLS = frozenset(
    {
        f"random.{name}"
        for name in (
            "random",
            "randint",
            "randrange",
            "getrandbits",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "uniform",
            "triangular",
            "gauss",
            "normalvariate",
            "lognormvariate",
            "expovariate",
            "vonmisesvariate",
            "gammavariate",
            "betavariate",
            "paretovariate",
            "weibullvariate",
        )
    }
)

#: Fully-dotted callables that park the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "select.select",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
    }
)

#: Fully-dotted filesystem/console operations (direct IO).
_IO_DOTTED = frozenset(
    {
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.symlink",
        "os.write",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Receiver-agnostic method names that are Path / stream IO idioms.
_IO_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

#: Builtins doing console/file IO when called bare.
_IO_BUILTINS = frozenset({"print", "open"})

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

#: Calls at module level that bind a name to a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
    }
)

_MUTABLE_DISPLAYS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)

#: ``# repro: effects[...]`` contract pragma on a ``def`` line.
_CONTRACT_RE = re.compile(r"#\s*repro:\s*effects\[(?P<labels>[a-z\-,\s]*)\]")

_FunctionNode = ast.AST


@dataclass(frozen=True)
class EffectSite:
    """One source location contributing a direct effect.

    Attributes:
        effect: The label contributed (one of :data:`ALL_EFFECTS`).
        line: 1-based line of the contributing node.
        col: 0-based column of the contributing node.
        detail: What contributed — a dotted callable (``"time.sleep"``),
            a mutation target (``"global _WORKER_TRACE"``,
            ``"self._entries"``), or a config field name.
    """

    effect: str
    line: int
    col: int
    detail: str


@dataclass
class FunctionEffects:
    """Inferred summary of one project function.

    Attributes:
        node_id: ``"module:qualname"`` id in the call graph.
        direct: Sites contributed by this function's own body, in source
            order.
        effects: Direct plus transitive labels (the fixpoint result).
        declared: Contract labels from a ``# repro: effects[...]`` pragma
            on the ``def`` line, or None when undeclared. ``pure``
            declares the empty set.
        unknown_labels: Declared labels that are not in the lattice.
    """

    node_id: str
    direct: Tuple[EffectSite, ...]
    effects: FrozenSet[str]
    declared: Optional[FrozenSet[str]] = None
    unknown_labels: Tuple[str, ...] = ()

    @property
    def direct_labels(self) -> FrozenSet[str]:
        """The labels this function contributes itself."""
        return frozenset(site.effect for site in self.direct)

    @property
    def is_pure(self) -> bool:
        """Whether the transitive summary is empty."""
        return not self.effects


def dotted_call_name(info: ModuleInfo, func: ast.expr) -> Optional[str]:
    """Resolve a call target to a fully-dotted name via the import table.

    ``time.perf_counter`` resolves when ``time`` (or an alias) is
    imported; a bare name or unknown receiver returns None.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    resolved_head = info.imports.get(node.id)
    if resolved_head is None:
        return None
    parts.append(resolved_head)
    parts.reverse()
    return ".".join(parts)


def module_state(info: ModuleInfo) -> Dict[str, int]:
    """Every module-level assigned name -> definition line."""
    names: Dict[str, int] = {}
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.setdefault(target.id, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                names.setdefault(stmt.target.id, stmt.lineno)
    return names


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    """Whether an initialiser expression builds a mutable container."""
    if value is None:
        return False
    if isinstance(value, _MUTABLE_DISPLAYS):
        return True
    if isinstance(value, ast.Call):
        callee = value.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute) else ""
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def module_mutable_names(info: ModuleInfo) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> definition line."""
    names: Dict[str, int] = {}
    for stmt in info.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.setdefault(target.id, stmt.lineno)
    return names


def local_bound_names(func: _FunctionNode) -> Set[str]:
    """Names bound (plain ``Name`` store) anywhere inside ``func``.

    Includes assignment targets, loop/comprehension variables, and
    ``with ... as`` names — everything that shadows a module-level
    binding for the rest of the function. ``global``-declared names are
    excluded: storing to those writes the module binding.
    """
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    bound: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if node.id not in declared_global:
                bound.add(node.id)
    return bound


def _chain_root(node: ast.expr) -> Optional[ast.Name]:
    """The base ``Name`` of an attribute/subscript chain, if it has one."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current if isinstance(current, ast.Name) else None


def _chain_display(node: ast.expr) -> str:
    """Source-ish rendering of a target chain for finding details."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        return "<target>"


def _parameters(func: _FunctionNode) -> Tuple[Optional[str], Set[str]]:
    """``(receiver_name, other_params)`` for a function node."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None, set()
    args = list(func.args.posonlyargs) + list(func.args.args)
    names = [arg.arg for arg in args]
    names += [arg.arg for arg in func.args.kwonlyargs]
    if func.args.vararg is not None:
        names.append(func.args.vararg.arg)
    if func.args.kwarg is not None:
        names.append(func.args.kwarg.arg)
    receiver: Optional[str] = None
    if names and names[0] in ("self", "cls"):
        receiver = names[0]
        names = names[1:]
    return receiver, set(names)


def parse_contract(
    info: ModuleInfo, func: _FunctionNode
) -> Tuple[Optional[FrozenSet[str]], Tuple[str, ...]]:
    """``(declared_labels, unknown_labels)`` from the def-line pragma."""
    lineno = getattr(func, "lineno", 0)
    lines = info.source.splitlines()
    if not 1 <= lineno <= len(lines):
        return None, ()
    match = _CONTRACT_RE.search(lines[lineno - 1])
    if match is None:
        return None, ()
    labels = [
        label.strip()
        for label in match.group("labels").split(",")
        if label.strip()
    ]
    declared: Set[str] = set()
    unknown: List[str] = []
    for label in labels:
        if label == PURE:
            continue
        elif label in ALL_EFFECTS:
            declared.add(label)
        else:
            unknown.append(label)
    return frozenset(declared), tuple(unknown)


class _DirectEffectScanner:
    """Single-pass extraction of one function's direct effect sites."""

    def __init__(self, info: ModuleInfo, func: _FunctionNode) -> None:
        self.info = info
        self.func = func
        self.receiver, self.params = _parameters(func)
        self.module_mutables = module_mutable_names(info)
        self.locals = local_bound_names(func)
        self.declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
        self.sites: List[EffectSite] = []

    def scan(self) -> Tuple[EffectSite, ...]:
        """Collect every direct site, in source order."""
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._mutation_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._mutation_target(node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._mutation_target(target)
            elif isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._config_read(node)
        self.sites.sort(key=lambda site: (site.line, site.col, site.effect))
        return tuple(self.sites)

    def _site(self, node: ast.AST, effect: str, detail: str) -> None:
        self.sites.append(
            EffectSite(
                effect=effect,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                detail=detail,
            )
        )

    def _classify_root(self, root: str) -> Optional[str]:
        """Which mutation label a chain rooted at ``root`` carries."""
        if self.receiver is not None and root == self.receiver:
            return MUTATES_SELF
        if root in self.params:
            return MUTATES_PARAM
        if root in self.declared_global:
            return MUTATES_GLOBAL
        if root in self.module_mutables and root not in self.locals:
            return MUTATES_GLOBAL
        return None

    def _mutation_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            # A bare store only mutates shared state via `global`.
            if target.id in self.declared_global:
                self._site(target, MUTATES_GLOBAL, f"global {target.id}")
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _chain_root(target)
        if root is None:
            return
        effect = self._classify_root(root.id)
        if effect is not None:
            self._site(target, effect, _chain_display(target))

    def _call(self, node: ast.Call) -> None:
        func = node.func
        dotted = dotted_call_name(self.info, func)
        if dotted is not None:
            if dotted in WALL_CLOCK_CALLS:
                self._site(node, TIME, dotted)
            elif dotted in GLOBAL_RNG_CALLS:
                self._site(node, RNG, dotted)
            if dotted in BLOCKING_CALLS:
                self._site(node, BLOCKING, dotted)
            if dotted in _IO_DOTTED:
                self._site(node, IO, dotted)
        if isinstance(func, ast.Name):
            if func.id in _IO_BUILTINS:
                self._site(node, IO, func.id)
            elif func.id == "input":
                self._site(node, BLOCKING, "input")
        elif isinstance(func, ast.Attribute):
            if func.attr in _IO_METHODS:
                self._site(node, IO, f".{func.attr}")
            if func.attr in MUTATING_METHODS:
                root = _chain_root(func.value)
                if root is not None:
                    effect = self._classify_root(root.id)
                    if effect is not None:
                        self._site(
                            node,
                            effect,
                            f"{_chain_display(func.value)}.{func.attr}()",
                        )

    def _config_read(self, node: ast.Attribute) -> None:
        value = node.value
        is_config = (
            isinstance(value, ast.Name) and value.id in CONFIG_RECEIVER_NAMES
        ) or (isinstance(value, ast.Attribute) and value.attr == "config")
        if is_config:
            self._site(node, READS_CONFIG, node.attr)


def propagate(
    direct: Mapping[str, FrozenSet[str]], graph: CallGraph
) -> Dict[str, FrozenSet[str]]:
    """Fixpoint closure of ``direct`` labels over the call graph.

    Returns, for every node in ``graph``, the union of its own labels and
    every (transitive) callee's. Nodes absent from ``direct`` start
    empty; nodes absent from the graph are ignored. The worklist runs
    over reverse edges, so cost is proportional to the label churn, not
    to graph size squared.
    """
    callers: Dict[str, List[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            callers.setdefault(callee, []).append(caller)
    effects: Dict[str, FrozenSet[str]] = {
        node: direct.get(node, frozenset()) for node in graph.edges
    }
    worklist = [node for node, labels in effects.items() if labels]
    while worklist:
        node = worklist.pop()
        labels = effects.get(node, frozenset())
        for caller in callers.get(node, ()):
            merged = effects[caller] | labels
            if merged != effects[caller]:
                effects[caller] = merged
                worklist.append(caller)
    return effects


class EffectAnalysis:
    """Effect summaries for every function in a :class:`ProjectModel`.

    Attributes:
        model: The analyzed model.
        graph: The shared three-tier call graph.
        functions: Node id -> :class:`FunctionEffects` (fixpoint result).
    """

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.graph = CallGraph.build(model)
        self._precise_graph: Optional[CallGraph] = None
        direct_sites: Dict[str, Tuple[EffectSite, ...]] = {}
        contracts: Dict[
            str, Tuple[Optional[FrozenSet[str]], Tuple[str, ...]]
        ] = {}
        for info in model.modules.values():
            for qualname, func in info.functions.items():
                node_id = f"{info.name}:{qualname}"
                direct_sites[node_id] = _DirectEffectScanner(
                    info, func
                ).scan()
                contracts[node_id] = parse_contract(info, func)
        transitive = propagate(
            {
                node_id: frozenset(site.effect for site in sites)
                for node_id, sites in direct_sites.items()
            },
            self.graph,
        )
        self.functions: Dict[str, FunctionEffects] = {}
        for node_id, sites in direct_sites.items():
            declared, unknown = contracts[node_id]
            self.functions[node_id] = FunctionEffects(
                node_id=node_id,
                direct=sites,
                effects=transitive.get(
                    node_id, frozenset(site.effect for site in sites)
                ),
                declared=declared,
                unknown_labels=unknown,
            )

    @property
    def precise_graph(self) -> CallGraph:
        """The method-index-free graph (built on first use, then shared).

        Closure analyses propagate properties over this one: the default
        graph's receiver-agnostic tier would let a single ubiquitous
        method name (``get``, ``put``) smear its effects over every call
        site in the tree.
        """
        if self._precise_graph is None:
            self._precise_graph = CallGraph.build(self.model, precise=True)
        return self._precise_graph

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Node ids reachable from ``roots`` through the shared graph."""
        return self.graph.reachable(roots)

    def sites(
        self, node_id: str, effect: Optional[str] = None
    ) -> Tuple[EffectSite, ...]:
        """Direct sites of ``node_id``, optionally filtered by label."""
        summary = self.functions.get(node_id)
        if summary is None:
            return ()
        if effect is None:
            return summary.direct
        return tuple(s for s in summary.direct if s.effect == effect)

    def report(self) -> Dict[str, object]:
        """The ``repro-effects/1`` document for this model.

        Functions with an empty transitive summary are folded into the
        ``totals.pure`` count instead of listed, so the document (and the
        CI snapshot diffed against it) stays focused on effect-bearing
        code and is stable across line-number-only edits.
        """
        functions: Dict[str, Dict[str, List[str]]] = {}
        totals: Dict[str, int] = {label: 0 for label in ALL_EFFECTS}
        pure = 0
        for node_id in sorted(self.functions):
            summary = self.functions[node_id]
            if summary.is_pure:
                pure += 1
                continue
            ordered = [
                label for label in ALL_EFFECTS if label in summary.effects
            ]
            for label in ordered:
                totals[label] += 1
            functions[node_id] = {
                "direct": [
                    label
                    for label in ALL_EFFECTS
                    if label in summary.direct_labels
                ],
                "effects": ordered,
            }
        return {
            "schema": EFFECTS_SCHEMA,
            "functions": functions,
            "totals": {
                "pure": pure,
                **{label: totals[label] for label in ALL_EFFECTS},
            },
        }


#: Memoized analyses, keyed weakly so models are collectable.
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectModel, EffectAnalysis]" = (
    WeakKeyDictionary()
)


def effect_analysis(model: ProjectModel) -> EffectAnalysis:
    """The (cached) :class:`EffectAnalysis` for ``model``.

    Every analyzer in one ``repro analyze`` / ``repro check`` invocation
    shares a single model, so this memo makes the effect fixpoint and the
    call graph a build-once cost.
    """
    analysis = _ANALYSIS_CACHE.get(model)
    if analysis is None:
        analysis = EffectAnalysis(model)
        _ANALYSIS_CACHE[model] = analysis
    return analysis


def analyze_effects(model: ProjectModel) -> List[Finding]:
    """RPR137: inferred effects escaping a declared contract; sorted."""
    analysis = effect_analysis(model)
    findings: List[Finding] = []
    for node_id in sorted(analysis.functions):
        summary = analysis.functions[node_id]
        func = model.function_node(node_id)
        info = model.get(node_id.partition(":")[0])
        if func is None or info is None:
            continue
        line = getattr(func, "lineno", 1)
        for label in summary.unknown_labels:
            findings.append(
                Finding(
                    path=info.path,
                    line=line,
                    col=0,
                    rule="RPR137",
                    message=(
                        f"effect contract on `{node_id}` names unknown "
                        f"label `{label}`; known labels: pure, "
                        + ", ".join(ALL_EFFECTS)
                    ),
                )
            )
        if summary.declared is None:
            continue
        extras = sorted(summary.effects - summary.declared)
        if extras:
            evidence = _drift_evidence(analysis, node_id, extras)
            findings.append(
                Finding(
                    path=info.path,
                    line=line,
                    col=0,
                    rule="RPR137",
                    message=(
                        f"`{node_id}` declares effects "
                        f"[{_render_contract(summary.declared)}] but "
                        f"analysis also infers [{', '.join(extras)}]"
                        f"{evidence}; fix the function or widen the "
                        "contract"
                    ),
                )
            )
    return sorted(set(findings))


def _render_contract(declared: FrozenSet[str]) -> str:
    return ", ".join(sorted(declared)) if declared else PURE


def _drift_evidence(
    analysis: EffectAnalysis, node_id: str, extras: List[str]
) -> str:
    """`` (via ...)`` pointing at one concrete contributing site."""
    own = {site.effect: site for site in analysis.sites(node_id)}
    for label in extras:
        site = own.get(label)
        if site is not None:
            return f" (via `{site.detail}` at line {site.line})"
    # Transitive: name one callee that carries the first extra label.
    for callee in analysis.graph.edges.get(node_id, ()):
        summary = analysis.functions.get(callee)
        if summary is not None and extras[0] in summary.effects:
            return f" (via call into `{callee}`)"
    return ""
