"""Concurrency-safety audit (``repro analyze concurrency``, RPR131-136).

The sweep runner forks worker processes, the dual engines replay one
trace through two codebases, and the planned asyncio live cluster will
multiplex protocol handling on one event loop. Each of those execution
shapes dies quietly when code relies on shared mutable state, hot-path
IO, or blocking calls — failure modes invisible to per-file lint. This
pass reads the shared per-function effect summaries
(:mod:`repro.devtools.analysis.effects`) and audits the specific
boundaries this codebase has:

* **RPR131** — fork-unsafe effects in worker-submitted callables: a
  function reachable from a pool task / initializer mutates
  process-global state. Under fork each worker mutates its own copy and
  the parent never observes it; under spawn the state resets entirely.
* **RPR132** — module-level mutable state written by one function and
  read by another on a boundary-reachable path: the canonical
  hidden-channel that diverges across processes and engines.
* **RPR133** — calls inside hot replay loops whose callees (transitively)
  perform IO. Generalizes syntactic RPR011 across function boundaries
  via the call graph; ``repro.obs`` is the sanctioned sink and is
  excluded from the closure.
* **RPR134** — public methods of cache/fastpath classes returning
  internal mutable containers by reference (store dicts, LRU nodes);
  callers can corrupt cache state without any cache API call.
* **RPR135** — shared mutable defaults on sim-facing dataclasses
  (``field(default=<mutable>)``, module-level mutables as defaults,
  bare class-level containers): every instance aliases one object.
* **RPR136** — blocking calls (``time.sleep``, synchronous
  socket/subprocess ops) reachable from ``repro.protocol`` /
  ``repro.network`` entry points the asyncio service will reuse.

Unlike the determinism pass, every reachability and closure here runs
over the *precise* call graph (no receiver-agnostic method-index tier):
these rules propagate properties transitively, and one ubiquitous method
name (``get``, ``put``) would otherwise smear its effects across the
whole tree. The cost — dynamic dispatch through an unannotated receiver
is not followed — is covered by the syntactic in-package rules (RPR011)
staying in force.

Line-scoped ``# repro: noqa[RPR13x]`` pragmas mark the sanctioned
exceptions (e.g. the worker-trace pinning idiom in
``repro.parallel.runner``); the runner applies them as usual.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.devtools.analysis.callgraph import (
    resolve_call,
    resolve_callable_ref,
)
from repro.devtools.analysis.effects import (
    BLOCKING,
    IO,
    MUTATES_GLOBAL,
    EffectAnalysis,
    _is_mutable_value,
    effect_analysis,
    local_bound_names,
    module_mutable_names,
    module_state,
    propagate,
)
from repro.devtools.analysis.model import ModuleInfo, ProjectModel
from repro.devtools.lint.findings import Finding

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES: Dict[str, str] = {
    "RPR131": "process-global mutation reachable from a pool worker "
    "callable (fork-unsafe)",
    "RPR132": "module-level state written and read by different "
    "functions on an engine/worker-reachable path",
    "RPR133": "loop-body call whose callee transitively performs IO on "
    "a hot replay path",
    "RPR134": "public cache/fastpath method returns an internal mutable "
    "container by reference",
    "RPR135": "sim-facing dataclass field defaulting to shared mutable "
    "state",
    "RPR136": "blocking call reachable from a protocol/network entry "
    "point",
}

#: Pool/executor methods that take a callable to run in a worker.
_POOL_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "map_async",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Replay entry points whose loops are the measured hot path (RPR133).
HOT_ROOTS: Tuple[str, ...] = (
    "repro.simulation.simulator:CooperativeSimulator.run",
    "repro.simulation.simulator:run_simulation",
    "repro.fastpath.engine:simulate_columnar",
    "repro.fastpath.batch:simulate_batch",
)

#: Engine entry points that, together with worker roots, bound RPR132.
ENGINE_ROOTS: Tuple[str, ...] = (
    "repro.simulation.simulator:CooperativeSimulator.run",
    "repro.simulation.simulator:run_simulation",
    "repro.fastpath.engine:simulate_columnar",
    "repro.fastpath.batch:simulate_batch",
    "repro.parallel.runner:ParallelSweepRunner.run",
)

#: Packages whose classes guard internal mutable structures (RPR134).
_INTERNAL_STATE_PACKAGES: Tuple[str, ...] = ("repro.cache", "repro.fastpath")

#: Packages whose public callables the asyncio service reuses (RPR136).
_SERVICE_PACKAGES: Tuple[str, ...] = ("repro.protocol", "repro.network")

#: The sanctioned IO sink, excluded from the RPR133 closure.
_OBS_PACKAGE = "repro.obs"

#: Package exempt from the dataclass-default audit (tooling, not sim).
_NON_SIM_PACKAGE = "repro.devtools"


def _in_package(module_name: str, package: str) -> bool:
    return module_name == package or module_name.startswith(package + ".")


def worker_roots(model: ProjectModel) -> Set[str]:
    """Node ids of callables handed to process pools / executors.

    Two submission idioms are recognised anywhere in the tree: a callable
    passed as the first argument of a pool method
    (``pool.imap(_run_task, ...)``), and an ``initializer=`` keyword
    (``Pool(initializer=_init_worker, ...)``). ``Pool.map`` the *builtin*
    is not an attribute call and is never matched.
    """
    roots: Set[str] = set()
    for info in model.modules.values():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and node.args
            ):
                resolved = resolve_callable_ref(model, info, node.args[0])
                if resolved is not None:
                    roots.add(resolved)
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    resolved = resolve_callable_ref(
                        model, info, keyword.value
                    )
                    if resolved is not None:
                        roots.add(resolved)
    return roots


def _finding(
    info: ModuleInfo, line: int, col: int, rule: str, message: str
) -> Finding:
    return Finding(
        path=info.path, line=line, col=col, rule=rule, message=message
    )


def _audit_fork_safety(
    model: ProjectModel, analysis: EffectAnalysis, workers: Set[str]
) -> List[Finding]:
    """RPR131: global mutation reachable from worker callables."""
    findings: List[Finding] = []
    for node_id in sorted(analysis.precise_graph.reachable(workers)):
        info = model.get(node_id.partition(":")[0])
        if info is None:
            continue
        for site in analysis.sites(node_id, MUTATES_GLOBAL):
            findings.append(
                _finding(
                    info,
                    site.line,
                    site.col,
                    "RPR131",
                    f"`{node_id}` mutates process-global state "
                    f"(`{site.detail}`) on a worker-reachable path; each "
                    "forked worker mutates its own copy and the parent "
                    "never sees it — pass state through the task payload "
                    "or return it from the task",
                )
            )
    return findings


def _global_reads_writes(
    info: ModuleInfo, func: ast.AST, candidates: FrozenSet[str]
) -> Tuple[Set[str], Set[str]]:
    """``(reads, writes)`` of module-level ``candidates`` by ``func``."""
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    shadowed = local_bound_names(func)
    mutables = set(module_mutable_names(info))
    reads: Set[str] = set()
    writes: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in candidates:
            visible = node.id in declared_global or node.id not in shadowed
            if not visible:
                continue
            if isinstance(node.ctx, ast.Load):
                reads.add(node.id)
            elif node.id in declared_global:
                writes.add(node.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                root = target
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root is not target
                    and root.id in candidates
                    and root.id in mutables
                    and root.id not in shadowed
                ):
                    writes.add(root.id)
    return reads, writes


def _audit_shared_module_state(
    model: ProjectModel, analysis: EffectAnalysis, workers: Set[str]
) -> List[Finding]:
    """RPR132: module state written by one function, read by another."""
    boundary = analysis.precise_graph.reachable(set(ENGINE_ROOTS) | workers)
    findings: List[Finding] = []
    for info in model.modules.values():
        defined = module_state(info)
        rebindable: Set[str] = set()
        for func in info.functions.values():
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    rebindable.update(node.names)
        candidates = frozenset(
            (set(module_mutable_names(info)) | rebindable) & set(defined)
        )
        if not candidates:
            continue
        readers: Dict[str, Set[str]] = {name: set() for name in candidates}
        writers: Dict[str, Set[str]] = {name: set() for name in candidates}
        for qualname, func in info.functions.items():
            node_id = f"{info.name}:{qualname}"
            reads, writes = _global_reads_writes(info, func, candidates)
            for name in reads:
                readers[name].add(node_id)
            for name in writes:
                writers[name].add(node_id)
        for name in sorted(candidates):
            pure_readers = readers[name] - writers[name]
            if not writers[name] or not pure_readers:
                continue
            involved = writers[name] | pure_readers
            if not involved & boundary:
                continue
            writer = sorted(writers[name])[0]
            reader = sorted(pure_readers)[0]
            findings.append(
                _finding(
                    info,
                    defined[name],
                    0,
                    "RPR132",
                    f"module-level state `{name}` is written by `{writer}` "
                    f"and read by `{reader}` on an engine/worker-reachable "
                    "path; per-process copies silently diverge across "
                    "fork and engine boundaries — thread it through "
                    "arguments or an explicit context object",
                )
            )
    return findings


def _io_closure_without_obs(analysis: EffectAnalysis) -> Dict[str, bool]:
    """Node id -> transitively-performs-IO, with ``repro.obs`` excluded.

    The obs recorders *are* IO by design — engines call them from replay
    loops as the sanctioned telemetry sink — so both their nodes and
    edges into them are removed before propagating.
    """

    def is_obs(node_id: str) -> bool:
        return _in_package(node_id.partition(":")[0], _OBS_PACKAGE)

    direct: Dict[str, FrozenSet[str]] = {}
    for node_id, summary in analysis.functions.items():
        if is_obs(node_id):
            continue
        if IO in summary.direct_labels:
            direct[node_id] = frozenset({IO})
    filtered_edges = {
        caller: [c for c in callees if not is_obs(c)]
        for caller, callees in analysis.precise_graph.edges.items()
        if not is_obs(caller)
    }
    closure = propagate(direct, _SubGraph(filtered_edges))
    return {node_id: IO in labels for node_id, labels in closure.items()}


class _SubGraph:
    """Minimal edge holder satisfying :func:`propagate`'s interface."""

    def __init__(self, edges: Dict[str, List[str]]) -> None:
        self.edges = edges


def _loop_calls(func: ast.AST) -> List[ast.Call]:
    """Every call expression nested inside a loop body of ``func``."""
    calls: List[ast.Call] = []

    def visit(node: ast.AST, depth: int) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in ast.iter_child_nodes(node):
                visit(child, depth + 1)
            return
        if isinstance(node, ast.Call) and depth > 0:
            calls.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not func
        ):
            # Nested defs execute when called, not where defined.
            return
        for child in ast.iter_child_nodes(node):
            visit(child, depth)

    visit(func, 0)
    return calls


def _audit_hot_loop_io(
    model: ProjectModel, analysis: EffectAnalysis
) -> List[Finding]:
    """RPR133: loop-body calls into (transitively) IO-performing code."""
    io_closure = _io_closure_without_obs(analysis)
    findings: List[Finding] = []
    for node_id in sorted(analysis.precise_graph.reachable(HOT_ROOTS)):
        module_name = node_id.partition(":")[0]
        if _in_package(module_name, _OBS_PACKAGE):
            continue
        info = model.get(module_name)
        func = model.function_node(node_id)
        if info is None or func is None:
            continue
        for call in _loop_calls(func):
            culprits = sorted(
                callee
                for callee in resolve_call(model, info, call, precise=True)
                if io_closure.get(callee, False)
            )
            if culprits:
                findings.append(
                    _finding(
                        info,
                        call.lineno,
                        call.col_offset,
                        "RPR133",
                        f"call into `{culprits[0]}` performs IO "
                        "(transitively) inside a hot replay loop; hoist "
                        "the IO out of the loop or route it through the "
                        "repro.obs recorders",
                    )
                )
    return findings


def _mutable_attrs(info: ModuleInfo, class_qualname: str) -> Set[str]:
    """Attributes of ``class_qualname`` initialised to mutable containers."""
    attrs: Set[str] = set()
    for ctor in ("__init__", "__post_init__"):
        func = info.functions.get(f"{class_qualname}.{ctor}")
        if func is None:
            continue
        for node in ast.walk(func):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            if not _is_mutable_value(value):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def _audit_internal_state_escape(model: ProjectModel) -> List[Finding]:
    """RPR134: public methods returning internal mutables by reference."""
    findings: List[Finding] = []
    for package in _INTERNAL_STATE_PACKAGES:
        for info in model.iter_package(package):
            for class_qualname in info.classes:
                attrs = _mutable_attrs(info, class_qualname)
                if not attrs:
                    continue
                prefix = class_qualname + "."
                for qualname, func in info.functions.items():
                    if not qualname.startswith(prefix):
                        continue
                    method = qualname[len(prefix) :]
                    if "." in method or method.startswith("_"):
                        continue
                    for node in ast.walk(func):
                        if not isinstance(node, ast.Return):
                            continue
                        value = node.value
                        if (
                            isinstance(value, ast.Attribute)
                            and isinstance(value.value, ast.Name)
                            and value.value.id == "self"
                            and value.attr in attrs
                        ):
                            findings.append(
                                _finding(
                                    info,
                                    node.lineno,
                                    node.col_offset,
                                    "RPR134",
                                    f"public method `{qualname}` returns "
                                    f"internal mutable `self.{value.attr}` "
                                    "by reference; callers can corrupt "
                                    "cache state behind the API — return "
                                    "a copy or a read-only view",
                                )
                            )
    return findings


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else ""
        )
        if name == "dataclass":
            return True
    return False


def _shared_default(
    info: ModuleInfo, value: Optional[ast.expr]
) -> Optional[str]:
    """Why a dataclass default aliases shared mutable state, or None."""
    if value is None:
        return None
    if _is_mutable_value(value):
        return "a mutable container"
    if isinstance(value, ast.Name) and value.id in module_mutable_names(info):
        return f"module-level mutable `{value.id}`"
    if isinstance(value, ast.Call):
        callee = value.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute) else ""
        )
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default":
                    return _shared_default(info, keyword.value)
    return None


def _audit_dataclass_defaults(model: ProjectModel) -> List[Finding]:
    """RPR135: shared mutable defaults on sim-facing dataclasses."""
    findings: List[Finding] = []
    for info in model.modules.values():
        if _in_package(info.name, _NON_SIM_PACKAGE):
            continue
        for class_qualname, node in info.classes.items():
            if not _is_dataclass(node):
                continue
            for stmt in node.body:
                value: Optional[ast.expr]
                field_name: Optional[str]
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    value, field_name = stmt.value, stmt.target.id
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    value, field_name = stmt.value, stmt.targets[0].id
                else:
                    continue
                why = _shared_default(info, value)
                if why is not None:
                    findings.append(
                        _finding(
                            info,
                            stmt.lineno,
                            stmt.col_offset,
                            "RPR135",
                            f"dataclass field `{class_qualname}."
                            f"{field_name}` defaults to {why}; every "
                            "instance aliases one object, so one "
                            "simulation's mutation leaks into the next — "
                            "use field(default_factory=...)",
                        )
                    )
    return findings


def service_roots(model: ProjectModel) -> Set[str]:
    """Public entry points of the protocol/network packages (RPR136)."""
    roots: Set[str] = set()
    for package in _SERVICE_PACKAGES:
        for info in model.iter_package(package):
            for qualname in info.functions:
                if any(
                    part.startswith("_") and not part.startswith("__")
                    for part in qualname.split(".")
                ) or qualname.rsplit(".", 1)[-1].startswith("_"):
                    continue
                roots.add(f"{info.name}:{qualname}")
    return roots


def _audit_blocking_service_paths(
    model: ProjectModel, analysis: EffectAnalysis
) -> List[Finding]:
    """RPR136: blocking calls reachable from service entry points."""
    findings: List[Finding] = []
    roots = service_roots(model)
    for node_id in sorted(analysis.precise_graph.reachable(roots)):
        info = model.get(node_id.partition(":")[0])
        if info is None:
            continue
        for site in analysis.sites(node_id, BLOCKING):
            findings.append(
                _finding(
                    info,
                    site.line,
                    site.col,
                    "RPR136",
                    f"blocking call `{site.detail}` in `{node_id}` is "
                    "reachable from a protocol/network entry point; the "
                    "asyncio service would stall its event loop here — "
                    "use the simulated clock or defer to async IO",
                )
            )
    return findings


def analyze_concurrency(
    model: ProjectModel, roots: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run RPR131-136 over ``model``; findings sorted and deduplicated.

    ``roots`` optionally *extends* the auto-discovered worker roots, so
    fixture trees (and future runner variants) can declare extra worker
    callables without pool-call syntax.
    """
    analysis = effect_analysis(model)
    workers = worker_roots(model)
    if roots is not None:
        workers |= set(roots)
    findings: List[Finding] = []
    findings.extend(_audit_fork_safety(model, analysis, workers))
    findings.extend(_audit_shared_module_state(model, analysis, workers))
    findings.extend(_audit_hot_loop_io(model, analysis))
    findings.extend(_audit_internal_state_escape(model))
    findings.extend(_audit_dataclass_defaults(model))
    findings.extend(_audit_blocking_service_paths(model, analysis))
    return sorted(set(findings))
