"""Config-flow coverage (``repro analyze configflow``, RPR121-123).

Every :class:`~repro.simulation.simulator.SimulationConfig` field should
be *plumbed*: read by at least one engine (or declared as a fallback
trigger), and — because the sweep memo keys on
``sha256(config.to_dict() + Trace.fingerprint())`` — every
:class:`~repro.trace.record.TraceRecord` field must flow into
``Trace.fingerprint``. A field that misses either pipe fails silently:
a dead config knob ships as documentation-only, and a fingerprint gap
lets two different traces share a memo entry (poisoned cache hits).

* **RPR121** — dead config field: no engine reads it and the fallback
  matrix does not mention it.
* **RPR122** — one-sided field: read by the columnar engine but not by
  the object core (the reference engine must cover a superset; the
  reverse direction is RPR101's parity check).
* **RPR123** — ``TraceRecord`` field absent from ``Trace.fingerprint``:
  traces differing only in that field would collide in the memo store.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.devtools.analysis import decls
from repro.devtools.analysis.dataflow import union_config_reads
from repro.devtools.analysis.model import ProjectModel
from repro.devtools.lint.findings import Finding

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES = {
    "RPR121": "dead config field: no engine reads it and the fallback "
    "matrix does not mention it",
    "RPR122": "one-sided config field: read by the columnar engine but "
    "not by the object core",
    "RPR123": "TraceRecord field absent from Trace.fingerprint (memo-key "
    "collision risk)",
}

#: Config fields that steer dispatch/bookkeeping outside both engines.
#: ``engine`` selects which engine runs; it is read by ``run_simulation``
#: (object package) so it needs no carve-out, but is listed for clarity.
_DISPATCH_FIELDS = frozenset({"engine"})


def analyze_configflow(model: ProjectModel) -> List[Finding]:
    """Run the three config-flow checks over ``model``; findings sorted."""
    findings: List[Finding] = []
    config_fields, config_path = decls.config_field_table(model)
    field_names = set(config_fields)
    matrix, _ = decls.matrix_declarations(model)
    neutral, _ = decls.neutral_declarations(model)
    declared = set(matrix) | set(neutral)

    fastpath_reads = union_config_reads(
        list(model.iter_package(decls.FASTPATH_PACKAGE)), field_names
    )
    object_modules = [
        module
        for package in decls.OBJECT_CORE_PACKAGES
        for module in model.iter_package(package)
    ]
    object_reads = union_config_reads(object_modules, field_names)

    for name in sorted(config_fields):
        line = config_fields[name]
        read_anywhere = name in object_reads or name in fastpath_reads
        if not read_anywhere and name not in declared:
            findings.append(
                Finding(
                    path=config_path,
                    line=line,
                    col=0,
                    rule="RPR121",
                    message=(
                        f"config field `{name}` is never read by either "
                        "engine and is not in the fallback matrix; it is "
                        "dead — plumb it or remove it"
                    ),
                )
            )
        elif (
            name in fastpath_reads
            and name not in object_reads
            and name not in _DISPATCH_FIELDS
        ):
            findings.append(
                Finding(
                    path=config_path,
                    line=line,
                    col=0,
                    rule="RPR122",
                    message=(
                        f"config field `{name}` is read only by the columnar "
                        "engine; the object core is the reference — plumb it "
                        "there first"
                    ),
                )
            )
    findings.extend(_fingerprint_findings(model))
    return sorted(findings)


def coverage_table(model: ProjectModel) -> List[Tuple[str, str]]:
    """Human-readable plumbing status per config field.

    Returns ``(field, status)`` rows where status is one of
    ``both`` / ``object-only`` / ``fastpath-only`` / ``fallback-declared``
    / ``dead`` — the data behind ``repro analyze configflow``'s summary.
    """
    config_fields, _ = decls.config_field_table(model)
    field_names = set(config_fields)
    matrix, _ = decls.matrix_declarations(model)
    neutral, _ = decls.neutral_declarations(model)
    fastpath_reads = union_config_reads(
        list(model.iter_package(decls.FASTPATH_PACKAGE)), field_names
    )
    object_modules = [
        module
        for package in decls.OBJECT_CORE_PACKAGES
        for module in model.iter_package(package)
    ]
    object_reads = union_config_reads(object_modules, field_names)

    rows: List[Tuple[str, str]] = []
    for name in sorted(config_fields):
        in_object = name in object_reads
        in_fast = name in fastpath_reads
        if in_object and in_fast:
            status = "both"
        elif in_object:
            status = (
                "object+fallback"
                if name in matrix or name in neutral
                else "object-only"
            )
        elif in_fast:
            status = "fastpath-only"
        elif name in matrix or name in neutral:
            status = "fallback-declared"
        else:
            status = "dead"
        rows.append((name, status))
    return rows


def _fingerprint_findings(model: ProjectModel) -> List[Finding]:
    """RPR123: TraceRecord fields missing from ``Trace.fingerprint``."""
    record_fields, record_path = decls.trace_record_fields(model)
    func = decls.fingerprint_function(model)[0]
    if func is None or not record_fields:
        return []
    used = _attribute_names(func)
    findings: List[Finding] = []
    for name in sorted(set(record_fields) - used):
        findings.append(
            Finding(
                path=record_path,
                line=record_fields[name],
                col=0,
                rule="RPR123",
                message=(
                    f"TraceRecord field `{name}` is not hashed by "
                    "Trace.fingerprint; traces differing only in it would "
                    "collide in the sweep memo store — add it to the "
                    "fingerprint"
                ),
            )
        )
    return findings


def _attribute_names(func: ast.AST) -> Set[str]:
    """Every attribute name read anywhere inside ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names
