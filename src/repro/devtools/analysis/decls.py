"""Extraction of the repo's declared engine contracts from source.

The analyzers compare *behaviour* (what the engines read and write,
recovered by :mod:`repro.devtools.analysis.dataflow`) against
*declarations*. This module recovers the declarations statically:

* the :class:`~repro.simulation.simulator.SimulationConfig` field table;
* the ``FALLBACK_MATRIX`` / ``COLUMNAR_NEUTRAL_FIELDS`` declarations in
  ``repro/fastpath/__init__.py`` (the machine-readable fallback matrix);
* the :class:`~repro.trace.record.TraceRecord` field table and the body
  of ``Trace.fingerprint`` (for memo-key coverage).

Everything is AST-level — nothing is imported — so a deliberately broken
or drifted tree (the regression fixtures) can still be analyzed.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from repro.devtools.analysis.model import AnalysisError, ModuleInfo, ProjectModel

#: Module and class holding the simulation config dataclass.
CONFIG_MODULE = "repro.simulation.simulator"
CONFIG_CLASS = "SimulationConfig"

#: Package containing the columnar engine and its fallback declarations.
FASTPATH_PACKAGE = "repro.fastpath"

#: Packages forming the object (reference) engine.
OBJECT_CORE_PACKAGES = (
    "repro.simulation",
    "repro.architecture",
    "repro.cache",
    "repro.core",
)

#: Module and class holding the canonical trace record.
TRACE_MODULE = "repro.trace.record"
TRACE_RECORD_CLASS = "TraceRecord"
TRACE_CLASS = "Trace"


def _require_module(model: ProjectModel, name: str) -> ModuleInfo:
    info = model.get(name)
    if info is None:
        raise AnalysisError(
            f"module {name!r} not found under {model.root}; "
            "is the analysis root the directory containing the repro package?"
        )
    return info


def config_field_table(model: ProjectModel) -> Tuple[Dict[str, int], str]:
    """``SimulationConfig`` field -> definition line, plus the file path."""
    info = _require_module(model, CONFIG_MODULE)
    return info.dataclass_fields(CONFIG_CLASS), info.path


def matrix_declarations(model: ProjectModel) -> Tuple[Dict[str, int], str]:
    """Fields declared in ``FALLBACK_MATRIX`` -> declaration line, plus path.

    Reads the ``field="..."`` keyword of every call inside the
    ``FALLBACK_MATRIX`` assignment, so the extraction survives formatting
    changes and added rule attributes.
    """
    info = _require_module(model, FASTPATH_PACKAGE)
    declared: Dict[str, int] = {}
    assignment = _find_assignment(info.tree, "FALLBACK_MATRIX")
    if assignment is None:
        return declared, info.path
    for node in ast.walk(assignment):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "field"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                declared.setdefault(keyword.value.value, keyword.value.lineno)
    return declared, info.path


def neutral_declarations(model: ProjectModel) -> Tuple[Dict[str, int], str]:
    """Fields declared in ``COLUMNAR_NEUTRAL_FIELDS`` -> line, plus path."""
    info = _require_module(model, FASTPATH_PACKAGE)
    declared: Dict[str, int] = {}
    assignment = _find_assignment(info.tree, "COLUMNAR_NEUTRAL_FIELDS")
    if assignment is None:
        return declared, info.path
    for node in ast.walk(assignment):
        if isinstance(node, ast.Tuple) and node.elts:
            first = node.elts[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                declared.setdefault(first.value, first.lineno)
    return declared, info.path


def trace_record_fields(model: ProjectModel) -> Tuple[Dict[str, int], str]:
    """``TraceRecord`` field -> definition line, plus the file path."""
    info = _require_module(model, TRACE_MODULE)
    return info.dataclass_fields(TRACE_RECORD_CLASS), info.path


def fingerprint_function(
    model: ProjectModel,
) -> Tuple[Optional[ast.AST], ModuleInfo]:
    """The ``Trace.fingerprint`` def node (or None) and its module."""
    info = _require_module(model, TRACE_MODULE)
    return info.functions.get(f"{TRACE_CLASS}.fingerprint"), info


def _find_assignment(tree: ast.Module, name: str) -> Optional[ast.stmt]:
    """The top-level (ann-)assignment binding ``name``, if any."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt
    return None
