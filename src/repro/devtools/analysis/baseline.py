"""Checked-in analysis baseline: accepted findings with a recorded *why*.

Whole-program analyzers over-approximate; some findings are accepted
facts rather than bugs (a deliberately one-sided field, a wall-clock
read feeding a log line). Rather than sprinkling pragmas through code
that is otherwise clean, those accepted findings live in a checked-in
JSON baseline next to the repo root — each entry carrying a ``why`` so
the exemption is reviewable where it is declared::

    {
      "schema": "repro-analysis-baseline/1",
      "entries": [
        {"rule": "RPR111", "path": "src/repro/parallel/runner.py",
         "message": "wall-clock call `time.perf_counter()` ...",
         "why": "wall time is reported, never merged into results"}
      ]
    }

Matching is on ``(rule, path, message)`` and deliberately ignores line
numbers, so unrelated edits above a baselined site do not resurrect the
finding. Entries that stop matching anything are *stale* and reported,
keeping the baseline from rotting into a list of fixed problems.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.devtools.analysis.model import AnalysisError
from repro.devtools.lint.findings import Finding

#: Version tag of the baseline file format.
BASELINE_SCHEMA = "repro-analysis-baseline/1"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding.

    Attributes:
        rule: Rule code the entry accepts, e.g. ``"RPR122"``.
        path: Repo-relative path of the accepted finding.
        message: Exact finding message (line numbers are not part of the
            match key, messages are).
        why: Reviewer-facing justification; required so every exemption
            explains itself.
    """

    rule: str
    path: str
    message: str
    why: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """The (rule, path, message) identity used for matching."""
        return (self.rule, self.path, self.message)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; raises :class:`AnalysisError` on bad input."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        raise AnalysisError(
            f"baseline {path} is not a {BASELINE_SCHEMA!r} document"
        )
    entries: List[BaselineEntry] = []
    for index, item in enumerate(raw.get("entries", [])):
        if not isinstance(item, dict):
            raise AnalysisError(f"baseline entry #{index} is not an object")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    message=str(item["message"]),
                    why=str(item["why"]),
                )
            )
        except KeyError as exc:
            raise AnalysisError(
                f"baseline entry #{index} is missing key {exc}"
            ) from exc
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split ``findings`` against ``entries``.

    Returns ``(kept, baselined, stale)``: findings not covered by the
    baseline, findings absorbed by it, and entries that matched nothing
    (stale — the underlying issue was fixed or the message changed).
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        entry.key: entry for entry in entries
    }
    matched: Set[Tuple[str, str, str]] = set()
    kept: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        if key in by_key:
            matched.add(key)
            baselined.append(finding)
        else:
            kept.append(finding)
    stale = [entry for entry in entries if entry.key not in matched]
    return kept, baselined, stale


def write_baseline(
    path: Path, findings: Iterable[Finding], why: str
) -> List[BaselineEntry]:
    """Serialise ``findings`` as a fresh baseline with one shared ``why``.

    Used by ``repro analyze --write-baseline``; the shared placeholder
    justification is meant to be hand-edited per entry afterwards.
    """
    entries = [
        BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            message=finding.message,
            why=why,
        )
        for finding in findings
    ]
    document = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "message": entry.message,
                "why": entry.why,
            }
            for entry in entries
        ],
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return entries
