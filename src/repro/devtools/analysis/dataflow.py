"""Light attribute/data-flow pass: which config fields does a module read?

The parity and config-flow analyzers both need the set of
:class:`~repro.simulation.simulator.SimulationConfig` fields each engine
actually consumes. Full type inference is overkill for a codebase with a
strong convention — configs travel under a handful of names — so this
pass tracks *likely config receivers* per module:

* parameters or variables named ``config`` / ``cfg`` / ``base_config`` /
  ``sim_config`` / ``template``;
* parameters annotated ``SimulationConfig`` (directly, dotted, or as a
  string annotation);
* variables assigned from a ``SimulationConfig(...)`` /
  ``replace(<config>, ...)`` call or from an ``<expr>.config`` attribute;
* any ``<expr>.config.<field>`` chain (``self.config.seed``).

An attribute read on such a receiver whose name is a known config field
counts as a read of that field. Validation reads inside the
``SimulationConfig`` class body itself use bare ``self`` and are therefore
*not* counted — validating a field is not plumbing it into an engine.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.devtools.analysis.model import ModuleInfo

#: Variable/parameter names conventionally holding a SimulationConfig.
CONFIG_RECEIVER_NAMES = frozenset(
    {"config", "cfg", "base_config", "sim_config", "template"}
)

#: Type annotations marking a parameter as a config.
_CONFIG_TYPE_NAMES = frozenset({"SimulationConfig"})


def _annotation_is_config(annotation: ast.expr) -> bool:
    """Whether a parameter annotation names ``SimulationConfig``."""
    if isinstance(annotation, ast.Name):
        return annotation.id in _CONFIG_TYPE_NAMES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _CONFIG_TYPE_NAMES
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip('"') in _CONFIG_TYPE_NAMES
    return False


def _config_receivers(tree: ast.Module) -> Set[str]:
    """Names likely bound to a config anywhere in ``tree``.

    Module-level resolution (not per-scope): the receiver names are
    distinctive enough that one union per module keeps the pass simple
    without measurable false positives in this tree.
    """
    receivers: Set[str] = set(CONFIG_RECEIVER_NAMES)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(node.args.args) + list(node.args.kwonlyargs)
            if node.args.vararg is not None:
                args.append(node.args.vararg)
            for arg in args:
                if arg.annotation is not None and _annotation_is_config(
                    arg.annotation
                ):
                    receivers.add(arg.arg)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                callee = value.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else ""
                )
                if callee_name in _CONFIG_TYPE_NAMES:
                    receivers.add(target.id)
            elif isinstance(value, ast.Attribute) and value.attr == "config":
                receivers.add(target.id)
    return receivers


def config_reads(
    module: ModuleInfo, field_names: Set[str]
) -> Dict[str, List[Tuple[str, int]]]:
    """Config fields read in ``module``: field -> [(path, line), ...].

    Only attribute names present in ``field_names`` are reported, so
    method calls on configs (``config.to_dict()``) and unrelated
    attributes on same-named variables stay out of the result.
    """
    receivers = _config_receivers(module.tree)
    reads: Dict[str, List[Tuple[str, int]]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Attribute) or node.attr not in field_names:
            continue
        value = node.value
        is_config = (
            isinstance(value, ast.Name) and value.id in receivers
        ) or (isinstance(value, ast.Attribute) and value.attr == "config")
        if is_config:
            reads.setdefault(node.attr, []).append((module.path, node.lineno))
    return reads


def union_config_reads(
    modules: List[ModuleInfo], field_names: Set[str]
) -> Dict[str, List[Tuple[str, int]]]:
    """Merged :func:`config_reads` over ``modules``."""
    merged: Dict[str, List[Tuple[str, int]]] = {}
    for module in modules:
        for fieldname, sites in config_reads(module, field_names).items():
            merged.setdefault(fieldname, []).extend(sites)
    return merged
