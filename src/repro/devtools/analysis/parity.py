"""Engine-parity drift detection (``repro analyze parity``, RPR101-103).

The dual-engine contract — the columnar engine is byte-identical to the
object core for every supported config — is only as strong as its
coverage. Differential tests sample the config space; this analyzer closes
it by construction:

* **RPR101** — a ``SimulationConfig`` field the object core reads but the
  columnar engine neither reads nor declares in ``FALLBACK_MATRIX`` /
  ``COLUMNAR_NEUTRAL_FIELDS``. This is exactly the "new config field
  handled in one engine, silently ignored by the other" drift that ships
  green until a differential test happens to toggle it.
* **RPR102** — a declared field that no longer exists on
  ``SimulationConfig`` (a stale matrix row survives refactors silently).
* **RPR103** — a result-dataclass field (:class:`GroupMetrics`,
  :class:`MessageCounters`, :class:`CacheStats`,
  :class:`SimulationResult`) never populated by the columnar engine's
  result assembly; a counter added to the object core would default to
  zero there and drift byte-for-byte.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.devtools.analysis import decls
from repro.devtools.analysis.dataflow import union_config_reads
from repro.devtools.analysis.model import ProjectModel
from repro.devtools.lint.findings import Finding

#: Rule code -> one-line summary (the catalog / docs-index source of truth).
RULES: Dict[str, str] = {
    "RPR101": "config field read by the object core but unknown to the "
    "columnar engine and the fallback matrix",
    "RPR102": "fallback-matrix / neutral-list entry naming a config field "
    "that no longer exists",
    "RPR103": "result-dataclass field never populated by the columnar "
    "result assembly",
}

#: Result dataclasses whose columnar construction must stay field-complete:
#: class name -> defining module.
RESULT_DATACLASSES: Tuple[Tuple[str, str], ...] = (
    ("GroupMetrics", "repro.simulation.metrics"),
    ("MessageCounters", "repro.network.bus"),
    ("CacheStats", "repro.cache.stats"),
    ("SimulationResult", "repro.simulation.results"),
)


def analyze_parity(model: ProjectModel) -> List[Finding]:
    """Run the three parity checks over ``model``; findings sorted."""
    findings: List[Finding] = []
    config_fields, config_path = decls.config_field_table(model)
    matrix, matrix_path = decls.matrix_declarations(model)
    neutral, neutral_path = decls.neutral_declarations(model)
    field_names = set(config_fields)

    fastpath_reads = union_config_reads(
        list(model.iter_package(decls.FASTPATH_PACKAGE)), field_names
    )
    object_modules = [
        module
        for package in decls.OBJECT_CORE_PACKAGES
        for module in model.iter_package(package)
    ]
    object_reads = union_config_reads(object_modules, field_names)

    declared: Set[str] = set(matrix) | set(neutral)
    for name in sorted(config_fields):
        if name in object_reads and name not in fastpath_reads and name not in declared:
            findings.append(
                Finding(
                    path=config_path,
                    line=config_fields[name],
                    col=0,
                    rule="RPR101",
                    message=(
                        f"config field `{name}` is read by the object core but "
                        "the columnar engine neither reads it nor declares it "
                        "in FALLBACK_MATRIX / COLUMNAR_NEUTRAL_FIELDS; port it "
                        "or declare the fallback"
                    ),
                )
            )
    for name, line, path in sorted(
        [(n, ln, matrix_path) for n, ln in matrix.items() if n not in field_names]
        + [(n, ln, neutral_path) for n, ln in neutral.items() if n not in field_names]
    ):
        findings.append(
            Finding(
                path=path,
                line=line,
                col=0,
                rule="RPR102",
                message=(
                    f"declared field `{name}` does not exist on "
                    "SimulationConfig; remove the stale declaration"
                ),
            )
        )
    findings.extend(_result_field_findings(model))
    return sorted(findings)


def _result_field_findings(model: ProjectModel) -> List[Finding]:
    """RPR103: columnar result construction missing dataclass fields."""
    field_tables: Dict[str, Dict[str, int]] = {}
    for class_name, module_name in RESULT_DATACLASSES:
        info = model.get(module_name)
        if info is None or class_name not in info.classes:
            continue
        field_tables[class_name] = info.dataclass_fields(class_name)

    findings: List[Finding] = []
    for module in model.iter_package(decls.FASTPATH_PACKAGE):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            table = field_tables.get(name)
            if table is None:
                continue
            # Positional args or **kwargs defeat static field accounting.
            if node.args or any(kw.arg is None for kw in node.keywords):
                continue
            passed = {kw.arg for kw in node.keywords}
            for missing in sorted(set(table) - passed):
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="RPR103",
                        message=(
                            f"`{name}` field `{missing}` is never populated by "
                            "the columnar engine here; a silently defaulted "
                            "counter is engine drift — pass it explicitly"
                        ),
                    )
                )
    return findings
