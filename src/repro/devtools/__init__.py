"""Developer tooling: repro-specific static analysis and runtime sanitizers.

Two halves keep the simulation trustworthy as the codebase grows:

* :mod:`repro.devtools.lint` — an AST-based lint pass with repo-specific
  rules (virtual-clock discipline, seeded randomness, float tie-break
  hygiene, iteration-order determinism, frozen public dataclasses) run as
  ``repro lint [paths]`` and in CI.
* :mod:`repro.devtools.sanitizer` — toggleable runtime invariant checks
  (byte accounting, recency monotonicity, the EA "exactly one fresh lease
  of life" rule, event-time ordering) wired into the simulator behind
  ``SimulationConfig(sanitize=True)`` / ``repro simulate --sanitize``.

Neither half imports anything heavier than the standard library plus the
substrate it guards, so devtools can be used from CI without optional
dependencies.
"""

from repro.devtools.lint import Finding, lint_paths, lint_source
from repro.devtools.sanitizer import (
    CacheSanitizer,
    SanitizerReport,
    SchemeSanitizer,
    SimulationSanitizer,
    Violation,
)

__all__ = [
    "CacheSanitizer",
    "Finding",
    "SanitizerReport",
    "SchemeSanitizer",
    "SimulationSanitizer",
    "Violation",
    "lint_paths",
    "lint_source",
]
