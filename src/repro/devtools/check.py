"""``repro check``: lint + every analyzer off one parsed ProjectModel.

Running ``repro lint`` and ``repro analyze`` back to back parses the
whole tree twice and applies two separately-configured gates. This
module is the single entry point CI and pre-push hooks want: it loads
one :class:`~repro.devtools.analysis.model.ProjectModel`, lints its
already-parsed modules via :func:`~repro.devtools.lint.runner
.lint_context` (no re-read, no re-parse), runs every selected analyzer
against the same model, and applies one noqa/baseline/severity filter to
the merged findings.

Paths *outside* the model root (the ``tests`` tree, scripts) still need
linting; those are linted from disk the classic way and merged in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.devtools.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.devtools.analysis.model import ModuleInfo, ProjectModel
from repro.devtools.analysis.runner import (
    LazySuppressions,
    run_analyzers,
    select_analyzers,
)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import FileContext
from repro.devtools.lint.runner import iter_python_files, lint_context
from repro.devtools.lint.suppress import is_suppressed


def _context_for_module(info: ModuleInfo) -> FileContext:
    """A lint :class:`FileContext` built from a parsed module.

    The package is derived from the dotted module *name* rather than the
    path, so scoped rules behave identically however the root was
    spelled: ``repro.fastpath.engine`` -> package ``"fastpath"``,
    ``repro.cli`` -> ``""`` (directly under repro), anything outside the
    ``repro`` namespace -> None.
    """
    package: Optional[str] = None
    parts = info.name.split(".")
    if parts and parts[0] == "repro":
        package = parts[1] if len(parts) > 2 else ""
    is_test = "tests" in Path(info.path).parts or Path(
        info.path
    ).name.startswith("test_")
    return FileContext(
        path=info.path,
        source=info.source,
        tree=info.tree,
        package=package,
        is_test=is_test,
    )


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` run.

    Attributes:
        findings: Surviving findings (lint + analysis), sorted.
        suppressed: Count silenced by ``# repro: noqa`` pragmas.
        baselined: Findings absorbed by the baseline.
        stale_baseline: Baseline entries matching no current finding.
        analyzers: Analyzer names that ran.
        linted_modules: Modules linted from the shared model.
        linted_files: Extra files linted from disk.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    analyzers: Tuple[str, ...] = ()
    linted_modules: int = 0
    linted_files: int = 0

    @property
    def clean(self) -> bool:
        """Whether everything passes: no findings, no stale entries."""
        return not self.findings and not self.stale_baseline


def run_check(
    root: Path,
    extra_paths: Sequence[str] = (),
    analyzers: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> CheckReport:
    """Lint + analyze the tree at ``root`` off one parse.

    Args:
        root: Directory containing the ``repro`` package (usually ``src``).
        extra_paths: Files/directories outside ``root`` to lint from disk
            (typically ``tests``). Files already inside the model are
            skipped so nothing is linted twice.
        analyzers: Analyzer subset (default: all).
        baseline_path: Baseline applied to the *merged* findings.
    """
    selected = select_analyzers(analyzers)
    model = ProjectModel.load(root)

    # Lint the model's modules without touching the filesystem again.
    # Files that do not parse never enter the model, so RPR000 for them
    # comes from the disk pass below (when the caller listed their path).
    lint_findings: List[Finding] = []
    for info in model.modules.values():
        lint_findings.extend(lint_context(_context_for_module(info)))
    linted_modules = len(model.modules)

    model_paths = {info.path for info in model.modules.values()}
    extra_files = [
        path
        for path in iter_python_files(list(extra_paths))
        if str(path) not in model_paths
    ]
    for path in extra_files:
        source = path.read_text(encoding="utf-8", errors="replace")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            lint_findings.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="RPR000",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        lint_findings.extend(_lint_parsed_file(path, source, tree))

    analysis_findings = run_analyzers(model, selected)

    # Lint findings already passed their per-file pragma filter inside
    # lint_context/lint_source; analysis findings have not. One lazy map
    # serves the analysis side.
    suppressions = LazySuppressions(model)
    merged: List[Finding] = list(lint_findings)
    suppressed = 0
    for finding in analysis_findings:
        pragmas = suppressions.for_path(finding.path)
        if pragmas is not None and is_suppressed(finding, pragmas):
            suppressed += 1
        else:
            merged.append(finding)
    merged = sorted(set(merged))

    entries: List[BaselineEntry] = []
    if baseline_path is not None and baseline_path.exists():
        entries = load_baseline(baseline_path)
    kept, baselined, stale = apply_baseline(merged, entries)

    return CheckReport(
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        analyzers=selected,
        linted_modules=linted_modules,
        linted_files=len(extra_files),
    )


def _lint_parsed_file(
    path: Path, source: str, tree: ast.Module
) -> List[Finding]:
    """Lint one on-disk file whose source/tree are already in hand."""
    from repro.devtools.lint.runner import _is_test_file, _module_package

    ctx = FileContext(
        path=str(path),
        source=source,
        tree=tree,
        package=_module_package(path),
        is_test=_is_test_file(path),
    )
    return lint_context(ctx)
