"""Runtime invariant sanitizer for caches, schemes, and the simulator.

The test suite samples these invariants at fixed points; the sanitizer
checks them after **every** operation of an instrumented run, so a perf
refactor that corrupts byte accounting on request 40,213 of a 500k-request
replay is caught at request 40,213 with the cache and operation named.

Checked invariants:

* **byte-accounting** — ``ProxyCache.used_bytes`` equals the sum of the
  resident entries' sizes after every mutating operation.
* **capacity** — ``used_bytes`` never exceeds ``capacity_bytes`` and never
  goes negative.
* **recency-order** — under LRU, last-hit times are non-decreasing from the
  eviction end to the head of the recency list.
* **victim-age** — every eviction's expiration ages are non-negative
  (eviction time is not before the entry's admission or last hit) and its
  hit counter is at least 1.
* **one-fresh-lease** — every EA remote-hit decision gives exactly one of
  the two caches a fresh lease of life (paper Section 3.3); ages carried on
  the decision are well-formed (non-negative, not NaN).
* **event-order** — observed request timestamps never move backwards.

Usage::

    report = SanitizerReport()
    CacheSanitizer(cache, report)          # instruments in place
    ...
    assert report.ok, report.summary()

or end-to-end, ``SimulationConfig(sanitize=True)`` /
``repro simulate --sanitize`` — the simulator wires a
:class:`SimulationSanitizer` across the whole group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.architecture.base import CooperativeGroup
from repro.cache.document import CacheEntry, Document, EvictionRecord
from repro.cache.replacement import LRUPolicy
from repro.cache.store import AdmitOutcome, ProxyCache
from repro.core.outcomes import RequestOutcome
from repro.core.placement import (
    EAScheme,
    OriginFetchDecision,
    PlacementScheme,
    RemoteHitDecision,
)
from repro.errors import InvariantViolation

__all__ = [
    "Violation",
    "SanitizerReport",
    "CacheSanitizer",
    "SchemeSanitizer",
    "SimulationSanitizer",
]


@dataclass(frozen=True)
class Violation:
    """One failed invariant check.

    Attributes:
        subject: Identity of the checked object (cache name, scheme name,
            or ``"<engine>"`` for event-ordering checks).
        operation: The operation after which the check failed
            (``"admit"``, ``"evict"``, ``"remote_hit"``, ``"process"``, ...).
        invariant: Short invariant id (``"byte-accounting"``, ...).
        message: Human-readable detail with the observed values.
        time: Virtual time of the operation (when known).
    """

    subject: str
    operation: str
    invariant: str
    message: str
    time: float = 0.0

    def render(self) -> str:
        """One-line description used by reports and error messages."""
        return (
            f"[{self.invariant}] {self.subject}.{self.operation} "
            f"at t={self.time:g}: {self.message}"
        )


class SanitizerReport:
    """Collects violations (or raises immediately in strict mode).

    Args:
        strict: When true, the first violation raises
            :class:`~repro.errors.InvariantViolation` instead of being
            collected — the right mode for tests and debugging sessions.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    def count_check(self) -> None:
        """Record that one invariant check executed (for the summary)."""
        self.checks_run += 1

    def record(
        self,
        subject: str,
        operation: str,
        invariant: str,
        message: str,
        time: float = 0.0,
    ) -> None:
        """Register a violation; raises when the report is strict."""
        violation = Violation(
            subject=subject,
            operation=operation,
            invariant=invariant,
            message=message,
            time=time,
        )
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(violation.render())

    def summary(self) -> str:
        """Human-readable roll-up for CLI output."""
        if self.ok:
            return f"sanitizer: {self.checks_run} checks, 0 invariant violations"
        lines = [
            f"sanitizer: {self.checks_run} checks, "
            f"{len(self.violations)} invariant violation(s):"
        ]
        lines.extend(f"  {violation.render()}" for violation in self.violations)
        return "\n".join(lines)


class CacheSanitizer:
    """Instruments one :class:`ProxyCache` with post-operation checks.

    Wraps the cache's mutating methods in place (``lookup``,
    ``serve_remote``, ``admit``, ``evict``, ``clear``); behaviour is
    unchanged, every call is followed by the invariant sweep. Attaching
    twice is a no-op.
    """

    def __init__(self, cache: ProxyCache, report: SanitizerReport):
        self.cache = cache
        self.report = report
        if getattr(cache, "_sanitizer", None) is not None:
            return
        cache._sanitizer = self  # type: ignore[attr-defined]
        self._wrap_methods()

    # -------------------------------------------------------------- #
    # Instrumentation
    # -------------------------------------------------------------- #

    def _wrap_methods(self) -> None:
        cache = self.cache
        orig_lookup = cache.lookup
        orig_serve_remote = cache.serve_remote
        orig_admit = cache.admit
        orig_evict = cache.evict
        orig_clear = cache.clear

        def lookup(url: str, now: float, refresh: bool = True) -> Optional[CacheEntry]:
            result = orig_lookup(url, now, refresh)
            self.check("lookup", now)
            return result

        def serve_remote(url: str, now: float, refresh: bool) -> Optional[CacheEntry]:
            result = orig_serve_remote(url, now, refresh)
            self.check("serve_remote", now)
            return result

        def admit(document: Document, now: float) -> AdmitOutcome:
            outcome = orig_admit(document, now)
            for record in outcome.evicted:
                self._check_victim("admit", record)
            self.check("admit", now)
            return outcome

        def evict(url: str, now: float) -> EvictionRecord:
            record = orig_evict(url, now)
            self._check_victim("evict", record)
            self.check("evict", now)
            return record

        def clear() -> None:
            orig_clear()
            self.check("clear", 0.0)

        cache.lookup = lookup  # type: ignore[method-assign]
        cache.serve_remote = serve_remote  # type: ignore[method-assign]
        cache.admit = admit  # type: ignore[method-assign]
        cache.evict = evict  # type: ignore[method-assign]
        cache.clear = clear  # type: ignore[method-assign]

    # -------------------------------------------------------------- #
    # Invariant checks
    # -------------------------------------------------------------- #

    def check(self, operation: str, now: float) -> None:
        """Run the full cache-state invariant sweep after ``operation``."""
        self._check_bytes(operation, now)
        self._check_recency(operation, now)

    def _check_bytes(self, operation: str, now: float) -> None:
        cache = self.cache
        self.report.count_check()
        actual = 0
        for url in cache.urls():
            entry = cache.get_entry(url)
            if entry is not None:
                actual += entry.size
        if cache.used_bytes != actual:
            self.report.record(
                cache.name,
                operation,
                "byte-accounting",
                f"used_bytes={cache.used_bytes} but entries total {actual}",
                now,
            )
        if cache.used_bytes < 0:
            self.report.record(
                cache.name,
                operation,
                "capacity",
                f"used_bytes={cache.used_bytes} is negative",
                now,
            )
        if cache.used_bytes > cache.capacity_bytes:
            self.report.record(
                cache.name,
                operation,
                "capacity",
                f"used_bytes={cache.used_bytes} exceeds "
                f"capacity_bytes={cache.capacity_bytes}",
                now,
            )

    def _check_recency(self, operation: str, now: float) -> None:
        policy = self.cache.policy
        if not isinstance(policy, LRUPolicy):
            return
        self.report.count_check()
        previous_time = -math.inf
        previous_url = ""
        for url in policy.recency_order():
            entry = self.cache.get_entry(url)
            if entry is None:
                self.report.record(
                    self.cache.name,
                    operation,
                    "recency-order",
                    f"policy tracks {url!r} but the cache does not hold it",
                    now,
                )
                continue
            if entry.last_hit_time < previous_time:
                self.report.record(
                    self.cache.name,
                    operation,
                    "recency-order",
                    f"{url!r} (last hit {entry.last_hit_time:g}) sits above "
                    f"{previous_url!r} (last hit {previous_time:g}) in the "
                    "LRU list",
                    now,
                )
            previous_time = entry.last_hit_time
            previous_url = url

    def _check_victim(self, operation: str, record: EvictionRecord) -> None:
        self.report.count_check()
        if record.lru_expiration_age < 0:
            self.report.record(
                self.cache.name,
                operation,
                "victim-age",
                f"victim {record.url!r} has negative LRU expiration age "
                f"{record.lru_expiration_age:g} (evicted at "
                f"{record.evict_time:g}, last hit {record.last_hit_time:g})",
                record.evict_time,
            )
        if record.life_time < 0:
            self.report.record(
                self.cache.name,
                operation,
                "victim-age",
                f"victim {record.url!r} has negative life time "
                f"{record.life_time:g}",
                record.evict_time,
            )
        if record.hit_count < 1:
            self.report.record(
                self.cache.name,
                operation,
                "victim-age",
                f"victim {record.url!r} has hit_count={record.hit_count} < 1",
                record.evict_time,
            )


class SchemeSanitizer(PlacementScheme):
    """Delegating wrapper checking every placement decision a scheme makes.

    For the EA scheme, validates the paper's Section 3.3 rule that a remote
    hit hands **exactly one** of the two caches a fresh lease of life
    (requester stores XOR responder refreshes — this also holds when the
    size-aware replica cap vetoes a copy, because the veto transfers the
    lease to the responder). For every scheme, validates that the ages
    carried on the decision are well-formed.

    Args:
        scheme: The wrapped placement scheme.
        report: Violation sink.
        enforce_one_lease: Check the XOR rule; defaults to whether
            ``scheme`` is an :class:`EAScheme` (ad-hoc deliberately
            refreshes both sides).
    """

    def __init__(
        self,
        scheme: PlacementScheme,
        report: SanitizerReport,
        enforce_one_lease: Optional[bool] = None,
    ):
        self.wrapped = scheme
        self.report = report
        self.name = scheme.name
        self.enforce_one_lease = (
            isinstance(scheme, EAScheme)
            if enforce_one_lease is None
            else enforce_one_lease
        )

    def _check_age(self, operation: str, label: str, age: float, now: float) -> None:
        self.report.count_check()
        if math.isnan(age):
            self.report.record(
                self.name, operation, "decision-age", f"{label} is NaN", now
            )
        elif age < 0:
            self.report.record(
                self.name, operation, "decision-age", f"{label}={age:g} is negative", now
            )

    def remote_hit(
        self,
        requester: ProxyCache,
        responder: ProxyCache,
        now: float,
        size: Optional[int] = None,
    ) -> RemoteHitDecision:
        """Delegate, then validate the one-fresh-lease rule and the ages."""
        decision = self.wrapped.remote_hit(requester, responder, now, size=size)
        self._check_age("remote_hit", "requester_age", decision.requester_age, now)
        self._check_age("remote_hit", "responder_age", decision.responder_age, now)
        if self.enforce_one_lease:
            self.report.count_check()
            if decision.store_at_requester == decision.refresh_responder:
                both = "both" if decision.store_at_requester else "neither"
                self.report.record(
                    self.name,
                    "remote_hit",
                    "one-fresh-lease",
                    f"{both} side(s) got a fresh lease of life "
                    f"(store_at_requester={decision.store_at_requester}, "
                    f"refresh_responder={decision.refresh_responder}, "
                    f"requester_age={decision.requester_age:g}, "
                    f"responder_age={decision.responder_age:g})",
                    now,
                )
        return decision

    def origin_fetch(self, requester: ProxyCache, now: float) -> OriginFetchDecision:
        """Delegate (no cross-cache invariant on a group-wide miss)."""
        return self.wrapped.origin_fetch(requester, now)

    def serve_refresh(self, responder: ProxyCache, requester_age: float, now: float) -> bool:
        """Delegate the hierarchical serve-refresh rule."""
        return self.wrapped.serve_refresh(responder, requester_age, now)

    def parent_store(
        self, parent: ProxyCache, requester_age: float, now: float
    ) -> OriginFetchDecision:
        """Delegate the hierarchical parent-store rule."""
        return self.wrapped.parent_store(parent, requester_age, now)

    def child_store(
        self, child: ProxyCache, upstream_age: float, now: float
    ) -> OriginFetchDecision:
        """Delegate the hierarchical child-store rule."""
        return self.wrapped.child_store(child, upstream_age, now)

    def __getattr__(self, attr: str) -> Any:
        # Scheme-specific attributes (tie_break, max_replica_fraction, ...)
        # remain reachable through the wrapper.
        return getattr(self.wrapped, attr)


class SimulationSanitizer:
    """Group-wide sanitizer: every cache, the scheme, and event ordering.

    Args:
        group: A :class:`~repro.architecture.base.CooperativeGroup`; its
            caches are instrumented in place and its scheme is replaced by
            a checking wrapper.
        report: Shared violation sink (a fresh non-strict one if omitted).
    """

    def __init__(
        self,
        group: CooperativeGroup,
        report: Optional[SanitizerReport] = None,
    ):
        self.report = report if report is not None else SanitizerReport()
        self.group = group
        self.cache_sanitizers = [
            CacheSanitizer(cache, self.report) for cache in group.caches
        ]
        group.scheme = SchemeSanitizer(group.scheme, self.report)
        self._last_time = -math.inf

    def observe(self, outcome: RequestOutcome) -> None:
        """Check one processed request (event times must not move backwards)."""
        self.report.count_check()
        if outcome.timestamp < self._last_time:
            self.report.record(
                "<engine>",
                "process",
                "event-order",
                f"request at t={outcome.timestamp:g} processed after "
                f"t={self._last_time:g}",
                outcome.timestamp,
            )
        self._last_time = max(self._last_time, outcome.timestamp)

    @property
    def ok(self) -> bool:
        """Whether the instrumented run is violation-free so far."""
        return self.report.ok

    def summary(self) -> str:
        """The report's human-readable roll-up."""
        return self.report.summary()
