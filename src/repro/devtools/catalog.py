"""Unified RPR rule catalog and severity model for the devtools suite.

Two tools emit ``RPR`` findings — the per-file lint pass and the
whole-program analyzers — and nothing previously guaranteed their code
spaces stayed disjoint or documented. This module is the single merge
point: :func:`rule_catalog` collects every registered rule from both
registries, *raising* on a code collision, and assigns each a severity
consumed by the shared ``--fail-on`` flag:

* ``error`` — correctness or reproducibility is at stake (the default);
* ``warn`` — contract/hygiene drift worth surfacing but not worth
  failing a local iteration loop (``--fail-on error`` skips these);
* ``note`` — stylistic.

``--fail-on note`` (the default everywhere) preserves the historical
behaviour: any finding fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.devtools.lint.findings import Finding

#: Severity levels, weakest first (index = rank).
SEVERITIES: Tuple[str, ...] = ("note", "warn", "error")

#: Rules that do not gate correctness: stylistic (note) and
#: contract-hygiene (warn) codes. Everything unlisted is an error.
_SEVERITY_OVERRIDES: Dict[str, str] = {
    "RPR006": "note",  # missing docstring
    "RPR007": "warn",  # mutable default argument
    "RPR137": "warn",  # effect-contract drift
    "RPR146": "warn",  # domain-contract drift
}


@dataclass(frozen=True)
class RuleInfo:
    """One catalogued rule.

    Attributes:
        code: The ``RPRnnn`` code.
        summary: One-line description.
        tool: ``"lint"`` or ``"analyze"``.
        source: Registering module/analyzer name (for diagnostics).
        severity: One of :data:`SEVERITIES`.
    """

    code: str
    summary: str
    tool: str
    source: str
    severity: str


def severity_for(code: str) -> str:
    """The severity of ``code`` (unknown codes default to ``error``)."""
    return _SEVERITY_OVERRIDES.get(code, "error")


def severity_rank(severity: str) -> int:
    """Rank of a severity name; unknown names rank as ``error``."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES) - 1


def rule_catalog() -> Dict[str, RuleInfo]:
    """Every registered RPR rule, keyed by code; raises on collisions.

    Lint rules come from the live ``REGISTRY`` (importing it registers
    every rule class); analysis rules from each analyzer module's
    ``RULES`` table. A code registered twice — in both tools, or by two
    analyzers — is a programming error, not a finding, so it raises
    immediately.
    """
    # Imported here so importing the catalog never drags the analyzer
    # stack in before it is needed (and to keep import cycles impossible).
    import repro.devtools.lint.rules  # noqa: F401  (registers every rule)
    from repro.devtools.analysis import concurrency as _concurrency
    from repro.devtools.analysis import configflow as _configflow
    from repro.devtools.analysis import determinism as _determinism
    from repro.devtools.analysis import domains as _domains
    from repro.devtools.analysis import effects as _effects
    from repro.devtools.analysis import parity as _parity
    from repro.devtools.lint.registry import REGISTRY

    catalog: Dict[str, RuleInfo] = {}

    def add(code: str, summary: str, tool: str, source: str) -> None:
        if code in catalog:
            raise ValueError(
                f"rule code {code} registered twice: by "
                f"{catalog[code].source} and by {source}"
            )
        catalog[code] = RuleInfo(
            code=code,
            summary=summary,
            tool=tool,
            source=source,
            severity=severity_for(code),
        )

    for code, rule_cls in REGISTRY.items():
        add(code, rule_cls.summary, "lint", rule_cls.__module__)
    analyzer_tables = (
        ("parity", _parity.RULES),
        ("determinism", _determinism.RULES),
        ("configflow", _configflow.RULES),
        ("effects", _effects.RULES),
        ("concurrency", _concurrency.RULES),
        ("domains", _domains.RULES),
    )
    for analyzer_name, rules in analyzer_tables:
        for code, summary in rules.items():
            add(code, summary, "analyze", analyzer_name)
    return catalog


def worst_severity(findings: Iterable[Finding]) -> str:
    """The highest severity present in ``findings`` (``note`` if empty)."""
    worst = -1
    for finding in findings:
        worst = max(worst, severity_rank(severity_for(finding.rule)))
    return SEVERITIES[worst] if worst >= 0 else "note"


def fails(findings: Iterable[Finding], fail_on: str) -> bool:
    """Whether any finding meets the ``--fail-on`` threshold."""
    threshold = severity_rank(fail_on)
    return any(
        severity_rank(severity_for(f.rule)) >= threshold for f in findings
    )
