"""repro: Expiration-Age based document placement for cooperative web caching.

A trace-driven reproduction of Ramaswamy & Liu, *"A New Document Placement
Scheme for Cooperative Caching on the Internet"*, ICDCS 2002.

Quick start::

    from repro import SimulationConfig, run_simulation
    from repro.trace import generate_trace, SyntheticTraceConfig

    trace = generate_trace(SyntheticTraceConfig(num_requests=20_000, seed=7))
    ea = run_simulation(SimulationConfig(scheme="ea", aggregate_capacity=1 << 20), trace)
    adhoc = run_simulation(SimulationConfig(scheme="adhoc", aggregate_capacity=1 << 20), trace)
    print(ea.summary())
    print(adhoc.summary())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the EA and ad-hoc placement schemes.
* :mod:`repro.cache` — proxy caches, replacement policies, expiration age.
* :mod:`repro.architecture` — distributed and hierarchical cache groups.
* :mod:`repro.protocol` / :mod:`repro.network` — ICP, HTTP piggybacking,
  latency models, message accounting.
* :mod:`repro.trace` — trace records, readers, the synthetic BU-like
  workload generator.
* :mod:`repro.simulation` — the trace-driven simulator and metrics.
* :mod:`repro.experiments` — drivers regenerating every paper table/figure.
"""

from repro.core.placement import AdHocScheme, EAScheme, make_scheme
from repro.errors import (
    CacheConfigurationError,
    ExperimentError,
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
)
from repro.simulation.results import SimulationResult
from repro.simulation.simulator import (
    CooperativeSimulator,
    SimulationConfig,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "AdHocScheme",
    "CacheConfigurationError",
    "CooperativeSimulator",
    "EAScheme",
    "ExperimentError",
    "NetworkError",
    "ProtocolError",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "TraceError",
    "TraceFormatError",
    "__version__",
    "make_scheme",
    "run_simulation",
]
