"""Per-request outcomes emitted by a cooperative cache group.

Each processed trace record yields one :class:`RequestOutcome` describing
how the request was served (local hit / remote hit / miss), by whom, at what
modelled latency, and — for audit — the expiration ages behind any EA
placement decision. The simulator folds these into group metrics; tests use
them to assert scheme behaviour request by request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.latency import ServiceKind


@dataclass(frozen=True)
class RequestOutcome:
    """How one client request was resolved by the group.

    Attributes:
        timestamp: Request arrival time.
        requester: Index of the proxy the client request arrived at.
        url: Requested document.
        size: Served body size in bytes.
        kind: LOCAL_HIT, REMOTE_HIT, or MISS (origin fetch).
        responder: Index of the cache that served a remote hit, or None.
        latency: Modelled service latency in seconds.
        stored_at_requester: Whether the requester kept a local copy.
        responder_refreshed: Whether the responder promoted its entry
            (always true for ad-hoc remote hits; EA-gated otherwise).
        requester_age: Requester expiration age at decision time (remote
            hits and hierarchical misses only).
        responder_age: Responder/parent expiration age at decision time.
        hops: Upstream hops traversed for hierarchical resolution (0 for
            local hits and flat-group operations).
    """

    timestamp: float
    requester: int
    url: str
    size: int
    kind: ServiceKind
    responder: Optional[int] = None
    latency: float = 0.0
    stored_at_requester: bool = False
    responder_refreshed: bool = False
    requester_age: Optional[float] = None
    responder_age: Optional[float] = None
    hops: int = 0

    @property
    def is_hit(self) -> bool:
        """True when the group served the request without the origin."""
        return self.kind is not ServiceKind.MISS
