"""Core contribution: placement schemes, request outcomes, demotion."""

from repro.core.demotion import DemotionGroup, DemotionStats
from repro.core.outcomes import RequestOutcome
from repro.core.placement import (
    AdHocScheme,
    EAScheme,
    OriginFetchDecision,
    PlacementScheme,
    RemoteHitDecision,
    ages_equal,
    make_scheme,
)

__all__ = [
    "AdHocScheme",
    "DemotionGroup",
    "DemotionStats",
    "EAScheme",
    "OriginFetchDecision",
    "PlacementScheme",
    "RemoteHitDecision",
    "RequestOutcome",
    "ages_equal",
    "make_scheme",
]
