"""Document placement schemes — the paper's core contribution.

A placement scheme answers, for each way a request can be resolved, two
questions the conventional "ad-hoc" scheme never asks:

1. Should the requesting cache store a local copy of the document it just
   obtained from a sibling/parent/origin?
2. Should the cache that *served* the document treat the remote serve as a
   hit (refreshing the entry's recency/frequency), giving the copy "a fresh
   lease of life"?

:class:`AdHocScheme` is the baseline used by existing cooperative caching
protocols: always store, always refresh. :class:`EAScheme` implements the
paper's Expiration-Age based algorithm (Section 3.3): compare the two
caches' expiration ages (Eq. 5) and place/refresh so that exactly one copy
— the one expected to survive longest — gets the fresh lease of life.

Every decision is returned as an auditable record carrying the ages that
produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cache.store import ProxyCache
from repro.errors import CacheConfigurationError


def ages_equal(left: float, right: float) -> bool:
    """The sanctioned expiration-age tie test (the EA tie-break input).

    This is the **only** place in the codebase allowed to compare
    expiration ages with ``==`` (lint rule RPR003 flags every other site).
    Exact float equality — not an epsilon — is deliberate:

    * Both operands come out of the same deterministic pipeline
      (:meth:`repro.cache.expiration.ExpirationAgeTracker.cache_expiration_age`),
      so a tie is an exact arithmetic event, not a measurement coincidence.
    * The one tie that matters for correctness is the cold-start case where
      *both* caches report ``+inf`` (no evictions yet): the tie-break then
      makes the EA scheme degenerate to ad-hoc, which is the paper's
      never-worse bootstrap behaviour. ``inf == inf`` is exact.
    * An epsilon would turn near-misses into ties and silently change
      placement decisions whenever a refactor reorders float arithmetic —
      precisely the instability this helper exists to prevent.
    """
    return left == right


def classify_age_comparison(left: float, right: float) -> str:
    """Order ``left`` relative to ``right``: ``"gt"``, ``"eq"``, or ``"lt"``.

    Reporting surfaces (the ``repro.obs`` event stream in particular) must
    label age comparisons through this helper rather than comparing floats
    themselves, so an emitted ``"eq"`` can never disagree with the tie the
    simulator actually took via :func:`ages_equal`.
    """
    if ages_equal(left, right):
        return "eq"
    return "gt" if left > right else "lt"


@dataclass(frozen=True)
class RemoteHitDecision:
    """Outcome of the requester/responder negotiation on a remote hit.

    Attributes:
        store_at_requester: Requester keeps a local copy.
        refresh_responder: Responder promotes its entry (LRU head / LFU
            counter bump); under EA exactly one of these two is normally
            true, limiting replication to the longer-lived copy.
        requester_age: Requester's cache expiration age at decision time.
        responder_age: Responder's cache expiration age at decision time.
    """

    store_at_requester: bool
    refresh_responder: bool
    requester_age: float
    responder_age: float


@dataclass(frozen=True)
class OriginFetchDecision:
    """Whether a cache that fetched a document from upstream stores it.

    ``upstream_age`` is the expiration age of the node the document came
    through (a parent cache), or ``None`` when the fetch went directly to
    the origin server (which has no cache age).
    """

    store: bool
    own_age: float
    upstream_age: Optional[float] = None


class PlacementScheme:
    """Interface for document placement schemes."""

    #: Human-readable scheme name used in configs and reports.
    name = "abstract"

    def remote_hit(
        self,
        requester: ProxyCache,
        responder: ProxyCache,
        now: float,
        size: Optional[int] = None,
    ) -> RemoteHitDecision:
        """Decide placement when ``responder`` serves ``requester``.

        Args:
            size: Body size of the served document, when the caller knows
                it; size-aware schemes use it, the paper's schemes ignore it.
        """
        raise NotImplementedError

    def origin_fetch(self, requester: ProxyCache, now: float) -> OriginFetchDecision:
        """Decide placement when ``requester`` fetches from the origin."""
        raise NotImplementedError

    def serve_refresh(self, responder: ProxyCache, requester_age: float, now: float) -> bool:
        """Whether ``responder``, serving a downstream cache whose piggybacked
        expiration age is ``requester_age``, promotes its own entry.

        Used on hierarchical chains where only the requester's *age* (not its
        cache object) is available at the serving node.
        """
        raise NotImplementedError

    def parent_store(
        self, parent: ProxyCache, requester_age: float, now: float
    ) -> OriginFetchDecision:
        """Hierarchical rule: does a parent resolving a child's miss keep a copy?

        Args:
            parent: The cache that fetched the document on behalf of a child.
            requester_age: Expiration age the child piggybacked on its
                HTTP request.
            now: Decision time.
        """
        raise NotImplementedError

    def child_store(
        self, child: ProxyCache, upstream_age: float, now: float
    ) -> OriginFetchDecision:
        """Hierarchical rule: does the child keep a copy of what a parent sent?

        Args:
            child: The cache that originated the request.
            upstream_age: Expiration age piggybacked on the parent's
                HTTP response.
            now: Decision time.
        """
        raise NotImplementedError


class AdHocScheme(PlacementScheme):
    """The conventional scheme: cache everywhere, refresh every serve.

    "When an ad-hoc document request is a miss in the local cache, this
    document is either served by another nearby cache ... or by the origin
    server. In either case, this document is added into the proxy cache
    where it was requested." (Section 1); the responder's copy is "given a
    fresh lease of life" (Section 2).
    """

    name = "adhoc"

    def remote_hit(
        self,
        requester: ProxyCache,
        responder: ProxyCache,
        now: float,
        size: Optional[int] = None,
    ) -> RemoteHitDecision:
        return RemoteHitDecision(
            store_at_requester=True,
            refresh_responder=True,
            requester_age=requester.expiration_age(now),
            responder_age=responder.expiration_age(now),
        )

    def origin_fetch(self, requester: ProxyCache, now: float) -> OriginFetchDecision:
        return OriginFetchDecision(store=True, own_age=requester.expiration_age(now))

    def serve_refresh(self, responder: ProxyCache, requester_age: float, now: float) -> bool:
        # Ad-hoc: every serve is a hit; the copy gets a fresh lease of life.
        return True

    def parent_store(
        self, parent: ProxyCache, requester_age: float, now: float
    ) -> OriginFetchDecision:
        return OriginFetchDecision(
            store=True,
            own_age=parent.expiration_age(now),
            upstream_age=requester_age,
        )

    def child_store(
        self, child: ProxyCache, upstream_age: float, now: float
    ) -> OriginFetchDecision:
        return OriginFetchDecision(
            store=True,
            own_age=child.expiration_age(now),
            upstream_age=upstream_age,
        )


class EAScheme(PlacementScheme):
    """The Expiration-Age based placement scheme (Section 3.3).

    Remote hit: the requester stores a copy iff its cache expiration age is
    greater than (or, with the default requester-wins tie break, equal to)
    the responder's; the responder promotes its entry iff its age is
    strictly greater than the requester's. Exactly one side extends the
    document's life, which both limits replication and guarantees the
    group never loses its last long-lived copy on a hit path.

    Hierarchical miss: a parent that fetched the document for a child keeps
    a copy iff the parent's age exceeds the child's; the child keeps a copy
    iff its age is at least the parent's.

    Args:
        tie_break: ``"requester"`` (default) — on equal ages the requester
            stores (degenerates to ad-hoc while both caches are cold, i.e.
            both report infinite age); ``"responder"`` — on equal ages the
            requester does not store and the responder keeps the lease.
        max_replica_fraction: Optional size-aware extension (not in the
            paper): never replicate a document whose body exceeds this
            fraction of the requester's capacity — one huge replica costs
            the aggregate more than many small ones. When the cap vetoes a
            copy, the responder's entry is refreshed instead, preserving
            the exactly-one-fresh-lease invariant (and therefore the
            never-worse guarantee).
    """

    name = "ea"

    _TIE_BREAKS = ("requester", "responder")

    def __init__(
        self,
        tie_break: str = "requester",
        max_replica_fraction: Optional[float] = None,
    ) -> None:
        if tie_break not in self._TIE_BREAKS:
            raise CacheConfigurationError(
                f"tie_break must be one of {self._TIE_BREAKS}, got {tie_break!r}"
            )
        if max_replica_fraction is not None and not 0.0 < max_replica_fraction <= 1.0:
            raise CacheConfigurationError(
                "max_replica_fraction must be in (0, 1] when given"
            )
        self.tie_break = tie_break
        self.max_replica_fraction = max_replica_fraction

    def _requester_stores(self, requester_age: float, responder_age: float) -> bool:
        if requester_age > responder_age:
            return True
        if ages_equal(requester_age, responder_age):
            return self.tie_break == "requester"
        return False

    def remote_hit(
        self,
        requester: ProxyCache,
        responder: ProxyCache,
        now: float,
        size: Optional[int] = None,
    ) -> RemoteHitDecision:
        requester_age = requester.expiration_age(now)
        responder_age = responder.expiration_age(now)
        store = self._requester_stores(requester_age, responder_age)
        refresh = responder_age > requester_age
        if (
            store
            and self.max_replica_fraction is not None
            and size is not None
            and size > self.max_replica_fraction * requester.capacity_bytes
        ):
            # Size cap vetoes the replica; hand the fresh lease to the
            # responder so the group never loses its long-lived copy.
            store = False
            refresh = True
        return RemoteHitDecision(
            store_at_requester=store,
            refresh_responder=refresh,
            requester_age=requester_age,
            responder_age=responder_age,
        )

    def origin_fetch(self, requester: ProxyCache, now: float) -> OriginFetchDecision:
        # Distributed architecture, group-wide miss: "the requestor fetches
        # the document from the origin server, caches the document and
        # serves it to its client" — same as ad-hoc.
        return OriginFetchDecision(store=True, own_age=requester.expiration_age(now))

    def serve_refresh(self, responder: ProxyCache, requester_age: float, now: float) -> bool:
        # Promote only when this cache's copy is the longer-lived one.
        return responder.expiration_age(now) > requester_age

    def parent_store(
        self, parent: ProxyCache, requester_age: float, now: float
    ) -> OriginFetchDecision:
        parent_age = parent.expiration_age(now)
        # "If the Cache Expiration Age of the parent cache is greater than
        # that of the Requester, it stores a copy ... Otherwise, document is
        # just served to the Requester" (strict comparison).
        return OriginFetchDecision(
            store=parent_age > requester_age,
            own_age=parent_age,
            upstream_age=requester_age,
        )

    def child_store(
        self, child: ProxyCache, upstream_age: float, now: float
    ) -> OriginFetchDecision:
        child_age = child.expiration_age(now)
        # "The Requester acts in the same fashion as in the case where the
        # document was obtained from a Responder" — the requester-store rule
        # including its tie break, so at least one level keeps a copy when
        # both are cold.
        return OriginFetchDecision(
            store=self._requester_stores(child_age, upstream_age),
            own_age=child_age,
            upstream_age=upstream_age,
        )


_SCHEMES = {
    AdHocScheme.name: AdHocScheme,
    EAScheme.name: EAScheme,
}


def make_scheme(name: str, **kwargs: Any) -> PlacementScheme:
    """Instantiate a placement scheme by name (``"adhoc"`` or ``"ea"``)."""
    try:
        factory = _SCHEMES[name.lower()]
    except KeyError:
        raise CacheConfigurationError(
            f"unknown placement scheme {name!r}; expected one of {sorted(_SCHEMES)}"
        ) from None
    return factory(**kwargs)
