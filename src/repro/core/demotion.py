"""Demotion extension: rescue the group's last copy on eviction.

A natural follow-on to the EA scheme (in the spirit of global-memory
demotion in serverless file systems, which the paper cites [2, 7]): when a
cache evicts a document of which the group holds *no other copy*, offer it
to the peer with the highest cache expiration age — the place it would
survive longest — instead of dropping it from the group entirely.

Costs one inter-proxy transfer per rescued victim, so the study reports
demotion traffic next to the hit-rate change. Demotion cascades are cut at
depth one: a demotion-triggered eviction at the receiving peer is never
itself demoted (otherwise a full group could thrash documents in a cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.architecture.base import CooperativeGroup
from repro.cache.document import Document, EvictionRecord
from repro.core.outcomes import RequestOutcome
from repro.errors import SimulationError
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord


@dataclass  # repro: noqa[RPR005] — counter block incremented per demotion attempt
class DemotionStats:
    """Counters for the demotion layer."""

    candidates: int = 0
    demoted: int = 0
    dropped_replicated: int = 0
    dropped_no_room: int = 0
    dropped_cold: int = 0
    bytes_demoted: int = 0


class DemotionGroup:
    """Wraps a cooperative group with last-copy demotion on eviction.

    Args:
        group: The underlying group (any scheme, any architecture).
        min_target_age: Only demote to a peer whose expiration age exceeds
            this (infinitely roomy peers always qualify); avoids shipping
            bytes into a cache that would evict them immediately.
        min_hits: Only demote victims whose hit counter reached this value
            (counter starts at 1 on admission, so 2 means "was re-referenced
            at least once"). Filters out the one-timer flood that otherwise
            pollutes the target cache.
    """

    def __init__(
        self,
        group: CooperativeGroup,
        min_target_age: float = 0.0,
        min_hits: int = 1,
    ) -> None:
        if min_target_age < 0:
            raise SimulationError("min_target_age must be non-negative")
        if min_hits < 1:
            raise SimulationError("min_hits must be >= 1")
        self.group = group
        self.min_target_age = min_target_age
        self.min_hits = min_hits
        self.stats = DemotionStats()
        self._now = 0.0
        self._demoting = False
        self._pending: List[Tuple[int, EvictionRecord]] = []
        for index, cache in enumerate(group.caches):
            cache.eviction_listener = self._make_listener(index)

    def _make_listener(self, index: int) -> Callable[[EvictionRecord], None]:
        def listener(record: EvictionRecord) -> None:
            if not self._demoting:
                self._pending.append((index, record))
        return listener

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Serve one request, then demote any last-copy victims it evicted."""
        self._now = record.timestamp
        self._pending.clear()
        outcome = self.group.process(index, record)
        self._drain_pending()
        return outcome

    def _drain_pending(self) -> None:
        pending, self._pending = self._pending, []
        self._demoting = True
        try:
            for source, record in pending:
                self._maybe_demote(source, record)
        finally:
            self._demoting = False

    def _maybe_demote(self, source: int, record: EvictionRecord) -> None:
        self.stats.candidates += 1
        if record.hit_count < self.min_hits:
            self.stats.dropped_cold += 1
            return
        url = record.url
        if any(url in cache for cache in self.group.caches):
            self.stats.dropped_replicated += 1
            return
        target = self._choose_target(source, record.size)
        if target is None:
            self.stats.dropped_no_room += 1
            return
        # One inter-proxy transfer: source pushes the victim to the target.
        request = sim_http.HttpRequest(url=url, sender=self.group.caches[source].name)
        self.group.bus.send_http_request(request)
        self.group.bus.send_http_response(
            sim_http.HttpResponse(
                url=url, body_size=record.size, sender=self.group.caches[source].name
            )
        )
        admitted = self.group.caches[target].admit(Document(url, record.size), self._now)
        if admitted.admitted:
            self.stats.demoted += 1
            self.stats.bytes_demoted += record.size
        else:
            self.stats.dropped_no_room += 1

    def _choose_target(self, source: int, size: int) -> Optional[int]:
        """Peer with the highest expiration age that can hold ``size`` bytes.

        Peers whose age does not exceed ``min_target_age`` are ineligible
        (cold caches report infinite age and always qualify). Ties go to the
        lowest index for determinism.
        """
        best: Optional[int] = None
        best_age = float("-inf")
        for index, cache in enumerate(self.group.caches):
            if index == source or cache.capacity_bytes < size:
                continue
            age = cache.expiration_age(self._now)
            if age <= self.min_target_age:
                continue
            if age > best_age:
                best = index
                best_age = age
        return best
