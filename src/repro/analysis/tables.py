"""ASCII table rendering for experiment reports.

No plotting dependencies are assumed; every experiment renders its figure
or table as a monospace grid suitable for terminals, logs, and
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant-looking decimals, infinities
    render as ``inf``, everything else via ``str``."""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a monospace grid with a header rule.

    Example::

        Aggregate | Ad-hoc | EA
        ----------+--------+-------
        100KB     | 0.1563 | 0.1593
    """
    formatted = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_records(
    records: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dicts as a table; columns default to first record's keys."""
    if not records:
        return title or "(no rows)"
    cols = list(columns) if columns is not None else list(records[0].keys())
    rows = [[record.get(col, "") for col in cols] for record in records]
    return render_table(cols, rows, title=title)


def percent(value: float, digits: int = 2) -> str:
    """Format a rate as a percentage string (0.1563 -> '15.63%')."""
    return f"{value * 100:.{digits}f}%"
