"""Replication and disk-efficiency analysis of a cache group.

The paper's argument hinges on the ad-hoc scheme's "uncontrolled replication
of documents" reducing the *effective* aggregate disk space. These helpers
quantify that directly from a group's end state: how many copies of each
document exist, how many bytes are spent on replicas, and the effective
fraction of the aggregate disk that holds unique content.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.architecture.base import CooperativeGroup


@dataclass(frozen=True)
class ReplicationReport:
    """Snapshot of replication across a group.

    Attributes:
        unique_documents: Distinct URLs cached anywhere.
        total_copies: Entries across all caches (each replica counts).
        replicated_documents: URLs with more than one copy.
        replication_factor: Mean copies per distinct document.
        unique_bytes: Bytes of distinct content.
        total_bytes: Bytes across all caches including replicas.
        effective_space_fraction: ``unique_bytes / total_bytes`` — 1.0 means
            every cached byte is unique content (the paper's ideal); the
            hypothetical worst case of full replication across N caches
            gives 1/N.
        copy_histogram: Copy-count -> number of documents with that count.
    """

    unique_documents: int
    total_copies: int
    replicated_documents: int
    replication_factor: float
    unique_bytes: int
    total_bytes: int
    effective_space_fraction: float
    copy_histogram: Dict[int, int]


def replication_report(group: CooperativeGroup) -> ReplicationReport:
    """Compute a :class:`ReplicationReport` from the group's current contents."""
    copy_counts: Counter = Counter()
    sizes: Dict[str, int] = {}
    total_bytes = 0
    for cache in group.caches:
        for url in cache.urls():
            entry = cache.get_entry(url)
            assert entry is not None
            copy_counts[url] += 1
            sizes[url] = entry.size
            total_bytes += entry.size
    unique_documents = len(copy_counts)
    total_copies = sum(copy_counts.values())
    unique_bytes = sum(sizes.values())
    histogram: Dict[int, int] = {}
    for count in copy_counts.values():
        histogram[count] = histogram.get(count, 0) + 1
    return ReplicationReport(
        unique_documents=unique_documents,
        total_copies=total_copies,
        replicated_documents=sum(1 for c in copy_counts.values() if c > 1),
        replication_factor=(total_copies / unique_documents) if unique_documents else 0.0,
        unique_bytes=unique_bytes,
        total_bytes=total_bytes,
        effective_space_fraction=(unique_bytes / total_bytes) if total_bytes else 1.0,
        copy_histogram=histogram,
    )
