"""Analytical LRU model (Che approximation) for cooperative groups.

The paper defers its mathematical analysis of aggregate-disk utilisation to
a technical report; this module provides the standard analytical machinery
that analysis rests on — the Che approximation for LRU hit rates under the
independent reference model (IRM) — and uses it to bracket a cooperative
group's achievable hit rate:

* **Replicated bound** (ad-hoc worst case, every document cached at every
  proxy): each proxy behaves as an independent LRU of its X/N share facing
  the full popularity law, so the group hit rate equals the single-cache
  hit rate at capacity X/N (the IRM hit rate is invariant to uniform
  request-rate scaling).
* **Shared bound** (perfect placement, zero replication): the group behaves
  as one logical LRU of the full aggregate X.

Ad-hoc and EA simulations should land between these bounds, with EA closer
to the shared one — exactly the paper's "effective disk space" argument,
made quantitative.

The Che approximation: a document of request probability ``p_i`` is in an
LRU cache iff it was referenced in the last ``T`` requests, so its hit rate
is ``1 - exp(-p_i * T)`` where the characteristic time ``T`` solves the
capacity constraint ``sum_i s_i * (1 - exp(-p_i * T)) = C`` (byte-capacity
form). Accuracy is remarkable for Zipf-like laws (Che et al. 2002;
Fricker et al. 2012).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.trace.record import Trace


class ModelError(ReproError):
    """The analytical model received unusable inputs."""


def popularity_from_trace(trace: Trace) -> Tuple[List[float], List[int]]:
    """Empirical popularity weights and sizes from a trace.

    Returns ``(weights, sizes)`` aligned by document, weights summing to 1.
    Zero-size records contribute their patched 4 KB only if pre-patched;
    raw zero sizes are floored at 1 byte to keep the constraint solvable.
    """
    counts: Counter = Counter()
    sizes: Dict[str, int] = {}
    for record in trace:
        counts[record.url] += 1
        sizes[record.url] = max(record.size, 1)
    total = sum(counts.values())
    if total == 0:
        raise ModelError("cannot build a popularity law from an empty trace")
    weights = []
    size_list = []
    for url, count in counts.items():
        weights.append(count / total)
        size_list.append(sizes[url])
    return weights, size_list


def _expected_bytes(weights: Sequence[float], sizes: Sequence[int], t: float) -> float:
    return math.fsum(
        size * (1.0 - math.exp(-weight * t))
        for weight, size in zip(weights, sizes)
    )


def characteristic_time(
    weights: Sequence[float],
    sizes: Sequence[int],
    capacity_bytes: int,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Solve Che's capacity constraint for the characteristic time T.

    Bisection on ``f(T) = sum_i s_i (1 - e^{-p_i T}) - C``; ``f`` is
    monotone increasing from 0 toward ``sum(sizes)``, so a root exists iff
    the cache cannot hold every document. Returns ``inf`` when it can
    (every document resident — hit rate is the compulsory-miss ceiling).
    """
    if len(weights) != len(sizes):
        raise ModelError("weights and sizes must align")
    if not weights:
        raise ModelError("need at least one document")
    if capacity_bytes <= 0:
        raise ModelError("capacity must be positive")
    if any(w < 0 for w in weights) or any(s <= 0 for s in sizes):
        raise ModelError("weights must be >= 0 and sizes > 0")
    total_bytes = sum(sizes)
    if capacity_bytes >= total_bytes:
        return math.inf

    low, high = 0.0, 1.0
    while _expected_bytes(weights, sizes, high) < capacity_bytes:
        high *= 2.0
        if high > 1e18:
            raise ModelError("characteristic time search diverged")
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        if _expected_bytes(weights, sizes, mid) < capacity_bytes:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(high, 1.0):
            break
    return (low + high) / 2.0


def lru_hit_rate(
    weights: Sequence[float], sizes: Sequence[int], capacity_bytes: int
) -> float:
    """Che-approximate steady-state LRU hit rate at byte capacity ``C``.

    ``sum_i p_i (1 - e^{-p_i T})`` — the probability a random request finds
    its document resident.
    """
    t = characteristic_time(weights, sizes, capacity_bytes)
    if math.isinf(t):
        return 1.0
    return math.fsum(
        weight * (1.0 - math.exp(-weight * t)) for weight in weights
    )


def lru_byte_hit_rate(
    weights: Sequence[float], sizes: Sequence[int], capacity_bytes: int
) -> float:
    """Byte-weighted analogue of :func:`lru_hit_rate`."""
    t = characteristic_time(weights, sizes, capacity_bytes)
    if math.isinf(t):
        return 1.0
    traffic = math.fsum(w * s for w, s in zip(weights, sizes))
    hit_bytes = math.fsum(
        w * s * (1.0 - math.exp(-w * t)) for w, s in zip(weights, sizes)
    )
    return hit_bytes / traffic if traffic else 0.0


@dataclass(frozen=True)
class GroupBounds:
    """Analytical bracket for a cooperative group's hit rate.

    Attributes:
        replicated: Full-replication (ad-hoc worst case) hit rate — each
            proxy an independent LRU of X/N bytes.
        shared: Zero-replication hit rate — one logical LRU of X bytes.
        ceiling: The IRM steady-state has no compulsory misses; finite
            traces do, so simulated rates are additionally capped by
            ``1 - unique/requests`` (reported for context).
    """

    replicated: float
    shared: float
    ceiling: float


def group_hit_rate_bounds(
    trace: Trace, num_caches: int, aggregate_capacity: int
) -> GroupBounds:
    """Che bounds for a group of ``num_caches`` sharing ``aggregate_capacity``."""
    if num_caches <= 0:
        raise ModelError("num_caches must be positive")
    weights, sizes = popularity_from_trace(trace)
    per_cache = aggregate_capacity // num_caches
    if per_cache <= 0:
        raise ModelError("aggregate capacity too small for the group")
    replicated = lru_hit_rate(weights, sizes, per_cache)
    shared = lru_hit_rate(weights, sizes, aggregate_capacity)
    unique = len(weights)
    requests = len(trace)
    ceiling = (requests - unique) / requests if requests else 0.0
    return GroupBounds(replicated=replicated, shared=shared, ceiling=ceiling)
