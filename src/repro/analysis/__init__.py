"""Analysis helpers: analytical models, replication reports, ASCII tables."""

from repro.analysis.che import (
    GroupBounds,
    ModelError,
    characteristic_time,
    group_hit_rate_bounds,
    lru_byte_hit_rate,
    lru_hit_rate,
    popularity_from_trace,
)
from repro.analysis.replication import ReplicationReport, replication_report
from repro.analysis.tables import format_cell, percent, render_records, render_table

__all__ = [
    "GroupBounds",
    "ModelError",
    "ReplicationReport",
    "characteristic_time",
    "format_cell",
    "group_hit_rate_bounds",
    "lru_byte_hit_rate",
    "lru_hit_rate",
    "percent",
    "popularity_from_trace",
    "render_records",
    "render_table",
    "replication_report",
]
