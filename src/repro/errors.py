"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary while still being
able to discriminate the failure domain (trace parsing, cache configuration,
protocol encoding, simulation setup).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """A trace file or trace record could not be parsed or validated."""


class TraceFormatError(TraceError):
    """A trace line does not conform to the declared log format.

    Carries the offending line and its 1-based line number when available
    so that callers can report actionable diagnostics.
    """

    def __init__(self, message: str, line: str = "", lineno: int = 0):
        detail = message
        if lineno:
            detail = f"line {lineno}: {detail}"
        if line:
            detail = f"{detail!s} (offending line: {line!r})"
        super().__init__(detail)
        self.line = line
        self.lineno = lineno


class CacheConfigurationError(ReproError):
    """A cache, policy, or tracker was constructed with invalid parameters."""


class ProtocolError(ReproError):
    """An ICP or simulated-HTTP message is malformed or cannot be decoded."""


class NetworkError(ReproError):
    """A network model or topology is misconfigured."""


class SimulationError(ReproError):
    """A simulation was configured inconsistently or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment driver received invalid parameters."""


class InvariantViolation(ReproError):
    """A runtime sanitizer check failed (see :mod:`repro.devtools.sanitizer`).

    Raised only when the sanitizer runs in strict mode; the default mode
    collects violations into a report instead of aborting the run.
    """
