"""Simulated HTTP messages with the EA scheme's piggyback header.

The EA scheme's only extra communication is the cache expiration age,
"piggybacked on either a HTTP request message or a HTTP response message"
(Section 3.5). This module models exactly that: minimal HTTP/1.0-style
request and response objects with a header map, plus helpers to attach and
extract the ``X-Cache-Expiration-Age`` header (including the ``inf`` value a
never-evicting cache reports).

Serialisation to/from wire text exists so tests can verify the round-trip
and so the network model can account header bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolError

#: Header carrying the sender's cache expiration age, in seconds.
EXPIRATION_AGE_HEADER = "X-Cache-Expiration-Age"


def _utf8_length(text: str) -> int:
    """Byte length of ``text`` as UTF-8, without materialising the bytes."""
    return len(text) if text.isascii() else len(text.encode("utf-8"))


def format_expiration_age(age: float) -> str:
    """Render an expiration age for the wire (``inf`` for no-contention)."""
    if math.isinf(age):
        return "inf"
    if age < 0:
        raise ProtocolError(f"expiration age cannot be negative: {age}")
    return f"{age:.6f}"


def parse_expiration_age(text: str) -> float:
    """Parse a wire expiration age; inverse of :func:`format_expiration_age`."""
    stripped = text.strip().lower()
    if stripped in ("inf", "+inf", "infinity"):
        return math.inf
    try:
        value = float(stripped)
    except ValueError:
        raise ProtocolError(f"unparseable expiration age {text!r}") from None
    if value < 0 or math.isnan(value):
        raise ProtocolError(f"invalid expiration age {text!r}")
    return value


@dataclass
class HttpRequest:
    """A simulated HTTP request between caches (or cache to origin).

    Attributes:
        url: Request target.
        sender: Name of the requesting cache.
        headers: Header map (case-preserving keys, case-insensitive get).
        method: Always GET in this model.
    """

    url: str
    sender: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    method: str = "GET"

    def get_header(self, name: str) -> Optional[str]:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None

    @property
    def expiration_age(self) -> Optional[float]:
        """The piggybacked requester expiration age, if present."""
        raw = self.get_header(EXPIRATION_AGE_HEADER)
        return None if raw is None else parse_expiration_age(raw)

    def with_expiration_age(self, age: float) -> "HttpRequest":
        """Attach the requester's cache expiration age (returns self)."""
        self.headers[EXPIRATION_AGE_HEADER] = format_expiration_age(age)
        return self

    def encode(self) -> str:
        """Wire text: request line + headers + blank line."""
        lines = [f"{self.method} {self.url} HTTP/1.0"]
        if self.sender:
            lines.append(f"Via: {self.sender}")
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        lines.append("")
        lines.append("")
        return "\r\n".join(lines)

    @property
    def wire_length(self) -> int:
        """Length in bytes of the encoded request.

        Computed arithmetically — must stay byte-for-byte equal to
        ``len(self.encode().encode("utf-8"))`` (the request-accounting hot
        path calls this once per simulated message).
        """
        # Request line + optional Via + headers + two trailing empty lines,
        # joined by CRLF: content bytes plus 2 per join.
        total = _utf8_length(self.method) + 1 + _utf8_length(self.url) + 9
        lines = 3  # request line + 2 trailing empties
        if self.sender:
            total += 5 + _utf8_length(self.sender)
            lines += 1
        for key, value in self.headers.items():
            total += _utf8_length(key) + 2 + _utf8_length(value)
            lines += 1
        return total + 2 * (lines - 1)


@dataclass
class HttpResponse:
    """A simulated HTTP response carrying a document body.

    Attributes:
        url: The document served.
        status: HTTP status (200 for hits and origin fetches).
        body_size: Body length in bytes (the body itself is never
            materialised — size is all the simulation needs).
        sender: Name of the responding cache or ``"origin"``.
        headers: Header map.
    """

    url: str
    status: int = 200
    body_size: int = 0
    sender: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def get_header(self, name: str) -> Optional[str]:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None

    @property
    def expiration_age(self) -> Optional[float]:
        """The piggybacked responder expiration age, if present."""
        raw = self.get_header(EXPIRATION_AGE_HEADER)
        return None if raw is None else parse_expiration_age(raw)

    def with_expiration_age(self, age: float) -> "HttpResponse":
        """Attach the responder's cache expiration age (returns self)."""
        self.headers[EXPIRATION_AGE_HEADER] = format_expiration_age(age)
        return self

    def encode(self) -> str:
        """Wire text: status line + headers (body elided, length declared)."""
        lines = [f"HTTP/1.0 {self.status} OK" if self.status == 200 else f"HTTP/1.0 {self.status} STATUS"]
        lines.append(f"Content-Length: {self.body_size}")
        if self.sender:
            lines.append(f"Via: {self.sender}")
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        lines.append("")
        lines.append("")
        return "\r\n".join(lines)

    @property
    def wire_length(self) -> int:
        """Length in bytes of headers plus the (elided) body.

        Computed arithmetically — must stay byte-for-byte equal to
        ``len(self.encode().encode("utf-8")) + self.body_size``.
        """
        if self.status == 200:
            total = 15  # "HTTP/1.0 200 OK"
        else:
            total = 16 + len(str(self.status))  # "HTTP/1.0 {status} STATUS"
        total += 16 + len(str(self.body_size))  # "Content-Length: {n}"
        lines = 4  # status + content-length + 2 trailing empties
        if self.sender:
            total += 5 + _utf8_length(self.sender)
            lines += 1
        for key, value in self.headers.items():
            total += _utf8_length(key) + 2 + _utf8_length(value)
            lines += 1
        return total + 2 * (lines - 1) + self.body_size


def decode_request(text: str) -> HttpRequest:
    """Parse wire text produced by :meth:`HttpRequest.encode`."""
    lines = text.split("\r\n")
    if not lines or " " not in lines[0]:
        raise ProtocolError("malformed HTTP request line")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed HTTP request line {lines[0]!r}")
    method, url, _version = parts
    headers: Dict[str, str] = {}
    sender = ""
    for line in lines[1:]:
        if not line:
            break
        if ":" not in line:
            raise ProtocolError(f"malformed HTTP header {line!r}")
        key, value = line.split(":", 1)
        if key.strip().lower() == "via":
            sender = value.strip()
        else:
            headers[key.strip()] = value.strip()
    return HttpRequest(url=url, sender=sender, headers=headers, method=method)


def decode_response(text: str) -> HttpResponse:
    """Parse wire text produced by :meth:`HttpResponse.encode`."""
    lines = text.split("\r\n")
    if not lines or not lines[0].startswith("HTTP/"):
        raise ProtocolError("malformed HTTP status line")
    try:
        status = int(lines[0].split(" ")[1])
    except (IndexError, ValueError):
        raise ProtocolError(f"malformed HTTP status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    sender = ""
    body_size = 0
    for line in lines[1:]:
        if not line:
            break
        if ":" not in line:
            raise ProtocolError(f"malformed HTTP header {line!r}")
        key, value = line.split(":", 1)
        key_l = key.strip().lower()
        if key_l == "content-length":
            body_size = int(value.strip())
        elif key_l == "via":
            sender = value.strip()
        else:
            headers[key.strip()] = value.strip()
    return HttpResponse(
        url="", status=status, body_size=body_size, sender=sender, headers=headers
    )
