"""Inter-proxy protocol substrate: ICP v2 and simulated HTTP piggybacking."""

from repro.protocol.http import (
    EXPIRATION_AGE_HEADER,
    HttpRequest,
    HttpResponse,
    decode_request,
    decode_response,
    format_expiration_age,
    parse_expiration_age,
)
from repro.protocol.icp import (
    ICP_VERSION,
    ICPMessage,
    ICPOpcode,
    decode,
    encode,
    pack_cache_address,
    query,
    reply,
    unpack_cache_address,
)

__all__ = [
    "EXPIRATION_AGE_HEADER",
    "HttpRequest",
    "HttpResponse",
    "ICPMessage",
    "ICPOpcode",
    "ICP_VERSION",
    "decode",
    "decode_request",
    "decode_response",
    "encode",
    "format_expiration_age",
    "pack_cache_address",
    "parse_expiration_age",
    "query",
    "reply",
    "unpack_cache_address",
]
