"""Internet Cache Protocol (ICP) v2 messages.

Implements the RFC 2186 wire format the paper's caches use to locate
documents at siblings/parents: a 20-byte header followed by an
opcode-specific payload. Only the subset cooperative caching needs is
modelled (QUERY / HIT / MISS / MISS_NOFETCH / ERR plus the echo opcodes for
completeness), but encode/decode handle the full header faithfully so the
byte accounting in the network model is realistic.

The simulator exchanges :class:`ICPMessage` objects; :func:`encode` /
:func:`decode` provide the binary round-trip (exercised by tests and used
for on-the-wire byte counts).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError

#: ICP protocol version implemented (RFC 2186).
ICP_VERSION = 2

#: struct layout of the 20-byte ICP header:
#: opcode(B) version(B) length(H) reqnum(I) options(I) optdata(I) sender(4s)
_HEADER = struct.Struct("!BBHIII4s")


class ICPOpcode(enum.IntEnum):
    """ICP opcodes (RFC 2186 section 6.1)."""

    INVALID = 0
    QUERY = 1
    HIT = 2
    MISS = 3
    ERR = 4
    SECHO = 10
    DECHO = 11
    MISS_NOFETCH = 21
    DENIED = 22
    HIT_OBJ = 23


#: Opcodes whose payload carries a leading 4-byte requester-host field
#: (only QUERY per RFC 2186).
_HAS_REQUESTER_FIELD = frozenset({ICPOpcode.QUERY})


def _utf8_length(text: str) -> int:
    """Byte length of ``text`` encoded as UTF-8, without materialising it."""
    return len(text) if text.isascii() else len(text.encode("utf-8"))


def query_wire_length(url: str) -> int:
    """Datagram length of an ICP QUERY for ``url``.

    Equals ``encode(query(...))``'s length: header + requester field +
    NUL-terminated URL. The simulator's probe fast path uses this to account
    wire bytes without building the datagram.
    """
    return _HEADER.size + 4 + _utf8_length(url) + 1


def reply_wire_length(url: str) -> int:
    """Datagram length of an ICP HIT/MISS reply for ``url``."""
    return _HEADER.size + _utf8_length(url) + 1


@dataclass(frozen=True)
class ICPMessage:
    """One ICP datagram.

    Attributes:
        opcode: Message type.
        request_number: Correlates replies with the originating query.
        url: The document being located (NUL-terminated on the wire).
        sender: 4-byte host address of the sending cache (opaque here; the
            simulator packs cache indices).
        requester: For QUERY messages, the original requester host field.
        options: RFC 2186 option flags (unused by this simulator, carried
            for fidelity).
        option_data: Option payload (e.g. SRC_RTT data).
    """

    opcode: ICPOpcode
    request_number: int
    url: str
    sender: bytes = b"\x00\x00\x00\x00"
    requester: bytes = b"\x00\x00\x00\x00"
    options: int = 0
    option_data: int = 0

    def __post_init__(self) -> None:
        if len(self.sender) != 4 or len(self.requester) != 4:
            raise ProtocolError("ICP host address fields must be exactly 4 bytes")
        if not 0 <= self.request_number <= 0xFFFFFFFF:
            raise ProtocolError("request_number must fit in 32 bits")

    @property
    def is_reply(self) -> bool:
        """Whether this message answers a query."""
        return self.opcode in (
            ICPOpcode.HIT,
            ICPOpcode.MISS,
            ICPOpcode.MISS_NOFETCH,
            ICPOpcode.HIT_OBJ,
            ICPOpcode.DENIED,
            ICPOpcode.ERR,
        )

    @property
    def is_positive(self) -> bool:
        """Whether this reply reports the document as present."""
        return self.opcode in (ICPOpcode.HIT, ICPOpcode.HIT_OBJ)

    @property
    def wire_length(self) -> int:
        """Exact datagram length in bytes (header + payload)."""
        payload = _utf8_length(self.url) + 1
        if self.opcode in _HAS_REQUESTER_FIELD:
            payload += 4
        return _HEADER.size + payload


def query(request_number: int, url: str, sender: bytes, requester: Optional[bytes] = None) -> ICPMessage:
    """Build an ICP_OP_QUERY for ``url``."""
    return ICPMessage(
        opcode=ICPOpcode.QUERY,
        request_number=request_number,
        url=url,
        sender=sender,
        requester=requester if requester is not None else sender,
    )


def reply(original: ICPMessage, hit: bool, sender: bytes) -> ICPMessage:
    """Build the HIT/MISS answer to ``original`` from cache ``sender``."""
    if original.opcode is not ICPOpcode.QUERY:
        raise ProtocolError(f"cannot reply to a non-query opcode {original.opcode!r}")
    return ICPMessage(
        opcode=ICPOpcode.HIT if hit else ICPOpcode.MISS,
        request_number=original.request_number,
        url=original.url,
        sender=sender,
    )


def encode(message: ICPMessage) -> bytes:
    """Serialise ``message`` to its RFC 2186 datagram bytes."""
    url_bytes = message.url.encode("utf-8") + b"\x00"
    payload = url_bytes
    if message.opcode in _HAS_REQUESTER_FIELD:
        payload = message.requester + url_bytes
    length = _HEADER.size + len(payload)
    if length > 0xFFFF:
        raise ProtocolError(f"ICP datagram too large ({length} bytes): URL too long")
    header = _HEADER.pack(
        int(message.opcode),
        ICP_VERSION,
        length,
        message.request_number,
        message.options,
        message.option_data,
        message.sender,
    )
    return header + payload


def decode(data: bytes) -> ICPMessage:
    """Parse datagram bytes back into an :class:`ICPMessage`.

    Raises:
        ProtocolError: on truncated data, bad version, unknown opcode, or a
            length field that disagrees with the actual datagram size.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError(f"ICP datagram truncated: {len(data)} bytes < header size")
    opcode_raw, version, length, reqnum, options, option_data, sender = _HEADER.unpack_from(data)
    if version != ICP_VERSION:
        raise ProtocolError(f"unsupported ICP version {version}")
    try:
        opcode = ICPOpcode(opcode_raw)
    except ValueError:
        raise ProtocolError(f"unknown ICP opcode {opcode_raw}") from None
    if length != len(data):
        raise ProtocolError(
            f"ICP length field {length} disagrees with datagram size {len(data)}"
        )
    payload = data[_HEADER.size:]
    requester = b"\x00\x00\x00\x00"
    if opcode in _HAS_REQUESTER_FIELD:
        if len(payload) < 5:
            raise ProtocolError("ICP query payload truncated")
        requester, payload = payload[:4], payload[4:]
    if not payload.endswith(b"\x00"):
        raise ProtocolError("ICP URL payload missing NUL terminator")
    url = payload[:-1].decode("utf-8")
    return ICPMessage(
        opcode=opcode,
        request_number=reqnum,
        url=url,
        sender=sender,
        requester=requester,
        options=options,
        option_data=option_data,
    )


def pack_cache_address(index: int) -> bytes:
    """Encode a simulator cache index as a 4-byte ICP host address."""
    if not 0 <= index <= 0xFFFFFFFF:
        raise ProtocolError(f"cache index {index} does not fit in 4 bytes")
    return struct.pack("!I", index)


def unpack_cache_address(address: bytes) -> int:
    """Inverse of :func:`pack_cache_address`."""
    if len(address) != 4:
        raise ProtocolError("cache address must be exactly 4 bytes")
    return struct.unpack("!I", address)[0]
