"""Latency-constant calibration, the way the paper measured its constants.

Section 4.2: "we measured the latency for local hits, remote hits and also
misses for retrieving a 4KB document. We ran the experiments five thousand
times and averaged out the values." This module reproduces that procedure
against any (typically stochastic) latency model: probe each service class
N times with the reference document size and average — yielding the
constants to feed Eq. 6.

Calibrating against :class:`~repro.network.latency.ConstantLatencyModel`
trivially returns the paper's numbers; calibrating against a noisy model
shows how stable the paper's 5000-probe estimate is (the standard error is
also reported).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import NetworkError
from repro.network.latency import PAPER_PROBE_SIZE, LatencyModel, ServiceKind


@dataclass(frozen=True)
class CalibrationResult:
    """Measured latency constants for one service class.

    Attributes:
        mean: Average latency over the probes (seconds).
        std: Sample standard deviation.
        stderr: Standard error of the mean (std / sqrt(n)).
        probes: Number of probes taken.
    """

    mean: float
    std: float
    stderr: float
    probes: int


def calibrate(
    model: LatencyModel,
    probes: int = 5000,
    document_size: int = PAPER_PROBE_SIZE,
) -> Dict[ServiceKind, CalibrationResult]:
    """Measure per-class latency constants by repeated probing.

    Args:
        model: The latency model standing in for the real network.
        probes: Probes per service class (paper: 5000).
        document_size: Body size fetched per probe (paper: 4 KB).
    """
    if probes <= 0:
        raise NetworkError("probes must be positive")
    if document_size <= 0:
        raise NetworkError("document_size must be positive")
    results: Dict[ServiceKind, CalibrationResult] = {}
    for kind in ServiceKind:
        samples = [model.latency(kind, document_size) for _ in range(probes)]
        mean = math.fsum(samples) / probes
        if probes > 1:
            variance = math.fsum((s - mean) ** 2 for s in samples) / (probes - 1)
        else:
            variance = 0.0
        std = math.sqrt(variance)
        results[kind] = CalibrationResult(
            mean=mean,
            std=std,
            stderr=std / math.sqrt(probes),
            probes=probes,
        )
    return results


def calibrated_constants(
    model: LatencyModel, probes: int = 5000, document_size: int = PAPER_PROBE_SIZE
) -> Dict[str, float]:
    """Eq. 6-ready constants: LHL / RHL / ML means from :func:`calibrate`."""
    measured = calibrate(model, probes=probes, document_size=document_size)
    return {
        "local_hit_latency": measured[ServiceKind.LOCAL_HIT].mean,
        "remote_hit_latency": measured[ServiceKind.REMOTE_HIT].mean,
        "miss_latency": measured[ServiceKind.MISS].mean,
    }
