"""Message accounting bus.

The paper's simulators exchanged real UDP (ICP) and TCP (HTTP) traffic
between machines; here every exchange flows through a :class:`MessageBus`
that counts messages and bytes per category. This is how the library backs
the paper's "no extra communication overhead" claim with numbers: the EA
scheme must show the *same* message counts as ad-hoc, differing only in a
few header bytes of piggybacked expiration age.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.protocol.http import HttpRequest, HttpResponse
from repro.protocol.icp import ICPMessage, ICPOpcode


@dataclass
class MessageCounters:
    """Totals per traffic category.

    Attributes:
        icp_queries / icp_replies: ICP datagrams sent.
        http_requests / http_responses: Inter-proxy and origin HTTP messages.
        icp_bytes: Total ICP bytes on the wire.
        http_header_bytes: HTTP bytes excluding document bodies.
        http_body_bytes: Document body bytes transferred between nodes.
    """

    icp_queries: int = 0
    icp_replies: int = 0
    http_requests: int = 0
    http_responses: int = 0
    icp_bytes: int = 0
    http_header_bytes: int = 0
    http_body_bytes: int = 0

    @property
    def total_messages(self) -> int:
        """All protocol messages regardless of category."""
        return (
            self.icp_queries
            + self.icp_replies
            + self.http_requests
            + self.http_responses
        )

    @property
    def total_bytes(self) -> int:
        """All bytes on the wire."""
        return self.icp_bytes + self.http_header_bytes + self.http_body_bytes


class MessageBus:
    """Counts every simulated protocol exchange.

    The simulator calls :meth:`send_icp` / :meth:`send_http_request` /
    :meth:`send_http_response` as it walks a request's protocol sequence;
    the bus never alters messages, it only accounts for them.
    """

    def __init__(self) -> None:
        self.counters = MessageCounters()

    def send_icp(self, message: ICPMessage) -> ICPMessage:
        """Account one ICP datagram; returns the message for chaining."""
        if message.opcode is ICPOpcode.QUERY:
            self.counters.icp_queries += 1
        else:
            self.counters.icp_replies += 1
        self.counters.icp_bytes += message.wire_length
        return message

    def count_icp_probe(self, targets: int, query_bytes: int, reply_bytes: int) -> None:
        """Account an ICP probe fan-out without materialising datagrams.

        One query plus one reply per probed neighbour — exactly what
        :meth:`send_icp` would record for the same exchange, but computed in
        bulk. This is the request loop's fast path; counters end identical.
        """
        counters = self.counters
        counters.icp_queries += targets
        counters.icp_replies += targets
        counters.icp_bytes += targets * (query_bytes + reply_bytes)

    def send_http_request(self, request: HttpRequest) -> HttpRequest:
        """Account one HTTP request."""
        self.counters.http_requests += 1
        self.counters.http_header_bytes += request.wire_length
        return request

    def send_http_response(self, response: HttpResponse) -> HttpResponse:
        """Account one HTTP response (headers and body separately)."""
        self.counters.http_responses += 1
        self.counters.http_header_bytes += response.wire_length - response.body_size
        self.counters.http_body_bytes += response.body_size
        return response

    def reset(self) -> None:
        """Zero all counters."""
        self.counters = MessageCounters()
