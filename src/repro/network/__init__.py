"""Network substrate: latency models, topologies, message accounting."""

from repro.network.bus import MessageBus, MessageCounters
from repro.network.calibration import (
    CalibrationResult,
    calibrate,
    calibrated_constants,
)
from repro.network.consistent_hash import ConsistentHashRing
from repro.network.latency import (
    PAPER_LOCAL_HIT_LATENCY,
    PAPER_MISS_LATENCY,
    PAPER_PROBE_SIZE,
    PAPER_REMOTE_HIT_LATENCY,
    ComponentLatencyModel,
    ConstantLatencyModel,
    LatencyModel,
    ServiceKind,
    StochasticLatencyModel,
)
from repro.network.topology import (
    StarTopology,
    Topology,
    TreeTopology,
    two_level_tree,
)

__all__ = [
    "CalibrationResult",
    "ComponentLatencyModel",
    "ConsistentHashRing",
    "ConstantLatencyModel",
    "LatencyModel",
    "MessageBus",
    "MessageCounters",
    "PAPER_LOCAL_HIT_LATENCY",
    "PAPER_MISS_LATENCY",
    "PAPER_PROBE_SIZE",
    "PAPER_REMOTE_HIT_LATENCY",
    "ServiceKind",
    "StarTopology",
    "StochasticLatencyModel",
    "Topology",
    "TreeTopology",
    "calibrate",
    "calibrated_constants",
    "two_level_tree",
]
