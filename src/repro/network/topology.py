"""Cooperation topologies: which caches talk to which.

Two structures cover the paper's space:

* :class:`StarTopology` — the flat *distributed* architecture the
  experiments use: every cache is every other cache's sibling.
* :class:`TreeTopology` — the *hierarchical* architecture of Section 3.3:
  every cache has at most one parent; siblings share a parent; leaves
  receive client requests and misses escalate upward.

Both answer the queries the simulator needs — ``siblings_of``,
``parent_of``, ``children_of`` — over integer cache indices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError


class Topology:
    """Interface over a set of caches indexed ``0..n-1``."""

    def __init__(self, num_caches: int):
        if num_caches <= 0:
            raise NetworkError(f"num_caches must be positive, got {num_caches}")
        self.num_caches = num_caches

    def siblings_of(self, index: int) -> List[int]:
        """Peer caches queried via ICP on a local miss at ``index``."""
        raise NotImplementedError

    def parent_of(self, index: int) -> Optional[int]:
        """Parent cache, or None at the top level."""
        raise NotImplementedError

    def children_of(self, index: int) -> List[int]:
        """Caches whose parent is ``index``."""
        raise NotImplementedError

    def leaves(self) -> List[int]:
        """Caches that receive client requests directly."""
        raise NotImplementedError

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_caches:
            raise NetworkError(
                f"cache index {index} out of range [0, {self.num_caches})"
            )


class StarTopology(Topology):
    """Flat distributed group: all caches are mutual siblings, no parents."""

    def siblings_of(self, index: int) -> List[int]:
        self._check_index(index)
        return [i for i in range(self.num_caches) if i != index]

    def parent_of(self, index: int) -> Optional[int]:
        self._check_index(index)
        return None

    def children_of(self, index: int) -> List[int]:
        self._check_index(index)
        return []

    def leaves(self) -> List[int]:
        return list(range(self.num_caches))


class TreeTopology(Topology):
    """Hierarchical group defined by a parent vector.

    Args:
        parents: ``parents[i]`` is the parent index of cache ``i`` or None
            for a root. The forest must be acyclic; multiple roots are
            allowed (disjoint hierarchies).
    """

    def __init__(self, parents: Sequence[Optional[int]]):
        super().__init__(len(parents))
        self._parents: List[Optional[int]] = list(parents)
        self._children: Dict[int, List[int]] = {i: [] for i in range(self.num_caches)}
        for child, parent in enumerate(self._parents):
            if parent is None:
                continue
            self._check_index(parent)
            if parent == child:
                raise NetworkError(f"cache {child} cannot be its own parent")
            self._children[parent].append(child)
        self._verify_acyclic()

    def _verify_acyclic(self) -> None:
        for start in range(self.num_caches):
            seen = set()
            node: Optional[int] = start
            while node is not None:
                if node in seen:
                    raise NetworkError(f"cycle detected through cache {start}")
                seen.add(node)
                node = self._parents[node]

    def siblings_of(self, index: int) -> List[int]:
        """Caches sharing this cache's parent (roots: the other roots)."""
        self._check_index(index)
        parent = self._parents[index]
        if parent is None:
            return [
                i
                for i in range(self.num_caches)
                if i != index and self._parents[i] is None
            ]
        return [i for i in self._children[parent] if i != index]

    def parent_of(self, index: int) -> Optional[int]:
        self._check_index(index)
        return self._parents[index]

    def children_of(self, index: int) -> List[int]:
        self._check_index(index)
        return list(self._children[index])

    def leaves(self) -> List[int]:
        return [i for i in range(self.num_caches) if not self._children[i]]

    def ancestors_of(self, index: int) -> List[int]:
        """Chain of parents from ``index`` (exclusive) to its root."""
        self._check_index(index)
        chain: List[int] = []
        node = self._parents[index]
        while node is not None:
            chain.append(node)
            node = self._parents[node]
        return chain

    def depth_of(self, index: int) -> int:
        """0 for roots, parents' depth + 1 otherwise."""
        return len(self.ancestors_of(index))


def two_level_tree(num_leaves: int, num_parents: int = 1) -> TreeTopology:
    """Convenience builder: ``num_parents`` roots, leaves spread round-robin.

    Cache indices: parents first (``0..num_parents-1``), then leaves.
    """
    if num_leaves <= 0 or num_parents <= 0:
        raise NetworkError("two_level_tree requires positive leaf/parent counts")
    parents: List[Optional[int]] = [None] * num_parents
    parents.extend(i % num_parents for i in range(num_leaves))
    return TreeTopology(parents)
