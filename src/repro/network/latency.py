"""Latency models for serving a document.

The paper measures three service-path latencies once and plugs them into its
estimator (Section 4.2): a local hit (LHL = 146 ms), a remote hit
(RHL = 342 ms) and a miss served from the origin (ML = 2784 ms), all for a
4 KB document averaged over 5000 probes.

:class:`ConstantLatencyModel` reproduces exactly that. The richer models
decompose latency into protocol components (ICP round-trip, connection
setup, per-byte transfer) or add seeded stochastic noise, so the simulator
can also report *measured* per-request latencies rather than only the
paper's closed-form estimate.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError

#: Paper constants, in seconds (Section 4.2).
PAPER_LOCAL_HIT_LATENCY = 0.146
PAPER_REMOTE_HIT_LATENCY = 0.342
PAPER_MISS_LATENCY = 2.784

#: Document size the paper's latency probes used.
PAPER_PROBE_SIZE = 4096


class ServiceKind(enum.Enum):
    """How a request was ultimately served."""

    LOCAL_HIT = "local_hit"
    REMOTE_HIT = "remote_hit"
    MISS = "miss"


class LatencyModel:
    """Maps a service kind (and document size) to seconds of latency."""

    def latency(self, kind: ServiceKind, size: int = PAPER_PROBE_SIZE) -> float:
        """Latency in seconds to serve a ``size``-byte document via ``kind``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatencyModel(LatencyModel):
    """Fixed per-kind latency; defaults are the paper's measured constants."""

    local_hit: float = PAPER_LOCAL_HIT_LATENCY
    remote_hit: float = PAPER_REMOTE_HIT_LATENCY
    miss: float = PAPER_MISS_LATENCY

    def __post_init__(self) -> None:
        for value in (self.local_hit, self.remote_hit, self.miss):
            if value < 0:
                raise NetworkError("latencies must be non-negative")

    def latency(self, kind: ServiceKind, size: int = PAPER_PROBE_SIZE) -> float:
        if kind is ServiceKind.LOCAL_HIT:
            return self.local_hit
        if kind is ServiceKind.REMOTE_HIT:
            return self.remote_hit
        return self.miss


@dataclass(frozen=True)
class ComponentLatencyModel(LatencyModel):
    """Latency decomposed into protocol steps plus size-dependent transfer.

    * local hit: disk/service time only.
    * remote hit: ICP query round-trip + inter-proxy HTTP setup + transfer
      over the LAN bandwidth.
    * miss: ICP round-trip (all peers answered MISS) + origin HTTP setup +
      transfer over the (much slower) WAN bandwidth.

    Defaults are calibrated so a 4 KB document reproduces the paper's
    146 / 342 / 2784 ms constants.
    """

    local_service: float = 0.146
    icp_rtt: float = 0.004
    proxy_http_setup: float = 0.180
    lan_bandwidth: float = 26_000.0  # bytes/second effective
    origin_http_setup: float = 2.076
    wan_bandwidth: float = 5_850.0  # bytes/second effective

    def __post_init__(self) -> None:
        if self.lan_bandwidth <= 0 or self.wan_bandwidth <= 0:
            raise NetworkError("bandwidths must be positive")
        for value in (self.local_service, self.icp_rtt, self.proxy_http_setup, self.origin_http_setup):
            if value < 0:
                raise NetworkError("latency components must be non-negative")

    def latency(self, kind: ServiceKind, size: int = PAPER_PROBE_SIZE) -> float:
        if kind is ServiceKind.LOCAL_HIT:
            return self.local_service
        if kind is ServiceKind.REMOTE_HIT:
            return self.icp_rtt + self.proxy_http_setup + size / self.lan_bandwidth
        return self.icp_rtt + self.origin_http_setup + size / self.wan_bandwidth


class StochasticLatencyModel(LatencyModel):
    """Wraps a base model with seeded multiplicative lognormal noise.

    ``latency = base * exp(N(0, sigma) - sigma^2/2)`` so the *mean* matches
    the base model while individual samples vary, as real probes do.
    """

    def __init__(self, base: Optional[LatencyModel] = None, sigma: float = 0.25, seed: int = 0):
        if sigma < 0:
            raise NetworkError("sigma must be non-negative")
        self._base = base if base is not None else ConstantLatencyModel()
        self._sigma = sigma
        self._rng = random.Random(seed)

    def latency(self, kind: ServiceKind, size: int = PAPER_PROBE_SIZE) -> float:
        base = self._base.latency(kind, size)
        if self._sigma == 0:
            return base
        noise = self._rng.lognormvariate(-self._sigma ** 2 / 2.0, self._sigma)
        return base * noise
