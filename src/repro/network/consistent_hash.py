"""Consistent hash ring (Karger et al. '99, cited by the paper).

Web caching with consistent hashing gives every URL a *home* cache; adding
or removing a cache only remaps ~1/N of the URL space. The ring hashes each
node to ``replicas`` virtual points on a 64-bit circle; a URL maps to the
first node point clockwise from its own hash.

Deterministic across processes (MD5-based points, no ``hash()``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

from repro.errors import NetworkError


def _point(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """A hash ring mapping string keys to integer node ids.

    Args:
        nodes: Initial node ids.
        replicas: Virtual points per node; more points = smoother balance.
    """

    def __init__(self, nodes: Sequence[int] = (), replicas: int = 64):
        if replicas <= 0:
            raise NetworkError("replicas must be positive")
        self.replicas = replicas
        self._points: List[int] = []
        self._owners: Dict[int, int] = {}
        self._nodes: Dict[int, bool] = {}
        for node in nodes:
            self.add_node(node)

    def add_node(self, node: int) -> None:
        """Insert a node's virtual points."""
        if node in self._nodes:
            raise NetworkError(f"node {node} already on the ring")
        self._nodes[node] = True
        for replica in range(self.replicas):
            point = _point(f"node:{node}:{replica}")
            index = bisect.bisect_left(self._points, point)
            # MD5 collisions across distinct keys are not a practical
            # concern at these scales; last writer wins if one occurs.
            self._points.insert(index, point)
            self._owners[point] = node

    def remove_node(self, node: int) -> None:
        """Remove a node and all its virtual points."""
        if node not in self._nodes:
            raise NetworkError(f"node {node} not on the ring")
        del self._nodes[node]
        for replica in range(self.replicas):
            point = _point(f"node:{node}:{replica}")
            if self._owners.get(point) == node:
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    self._points.pop(index)
                del self._owners[point]

    def node_for(self, key: str) -> int:
        """The home node of ``key``.

        Raises:
            NetworkError: when the ring is empty.
        """
        if not self._points:
            raise NetworkError("hash ring has no nodes")
        point = _point(f"key:{key}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    @property
    def nodes(self) -> List[int]:
        """Current node ids, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def load_distribution(self, keys: Sequence[str]) -> Dict[int, int]:
        """Count of keys homed at each node (balance diagnostics)."""
        counts: Dict[int, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
