"""Eager-placement (prefetching) extension — the paper's "eager mode"."""

from repro.prefetch.engine import PrefetchEngine, PrefetchStats
from repro.prefetch.predictor import MarkovPredictor, Prediction

__all__ = [
    "MarkovPredictor",
    "Prediction",
    "PrefetchEngine",
    "PrefetchStats",
]
