"""Online access predictor for eager (prefetching) document placement.

The paper distinguishes *lazy* placement (cache on demand — everything in
its evaluation) from *eager* placement ("documents are pre-fetched and
cached based on access log predictions", citing Padmanabhan & Mogul). This
module provides the prediction substrate for the eager mode: a first-order
Markov model over each client's request stream, learned online.

``predict(url)`` returns successors whose empirical transition probability
clears a confidence threshold — the standard prediction-by-partial-match
truncated to order 1, which is what proxy-side prefetchers of the era used.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CacheConfigurationError


@dataclass(frozen=True)
class Prediction:
    """One predicted next document."""

    url: str
    probability: float
    support: int


class MarkovPredictor:
    """First-order Markov successor model over per-client streams.

    Args:
        min_support: Minimum observations of a transition before it can be
            predicted (guards against one-off noise).
        min_probability: Minimum empirical P(next | current).
        max_predictions: Cap on predictions returned per URL.
    """

    def __init__(
        self,
        min_support: int = 2,
        min_probability: float = 0.25,
        max_predictions: int = 3,
    ):
        if min_support < 1:
            raise CacheConfigurationError("min_support must be >= 1")
        if not 0.0 < min_probability <= 1.0:
            raise CacheConfigurationError("min_probability must be in (0, 1]")
        if max_predictions < 1:
            raise CacheConfigurationError("max_predictions must be >= 1")
        self.min_support = min_support
        self.min_probability = min_probability
        self.max_predictions = max_predictions
        self._transitions: Dict[str, Counter] = defaultdict(Counter)
        self._totals: Counter = Counter()
        self._last_by_client: Dict[str, str] = {}

    def observe(self, client_id: str, url: str) -> None:
        """Feed one request; learns the (previous -> url) transition."""
        previous = self._last_by_client.get(client_id)
        if previous is not None and previous != url:
            self._transitions[previous][url] += 1
            self._totals[previous] += 1
        self._last_by_client[client_id] = url

    def predict(self, url: str) -> List[Prediction]:
        """Successors of ``url`` clearing the support/probability bars."""
        total = self._totals.get(url, 0)
        if total == 0:
            return []
        predictions = []
        for successor, count in self._transitions[url].most_common():
            if len(predictions) >= self.max_predictions:
                break
            probability = count / total
            if count >= self.min_support and probability >= self.min_probability:
                predictions.append(
                    Prediction(url=successor, probability=probability, support=count)
                )
        return predictions

    @property
    def transitions_learned(self) -> int:
        """Total transition observations so far."""
        return sum(self._totals.values())
