"""Eager-placement engine: prefetch predicted documents into a group.

Wraps any :class:`~repro.architecture.base.CooperativeGroup`: after each
client request is served normally, the engine asks the predictor what the
client is likely to fetch next and pre-places those documents at the
requesting proxy (unless already resident). Prefetches are fetched from a
sibling when one holds the document (cheap) or the origin otherwise
(expensive speculation), and their traffic is accounted separately so the
precision/byte-cost trade is measurable.

Effectiveness accounting follows the prefetching literature:

* a **prefetch hit** is a client request served locally by a document whose
  resident copy was prefetched and not yet referenced;
* a **wasted prefetch** is a prefetched copy evicted without ever serving a
  client request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.architecture.base import CooperativeGroup
from repro.cache.document import Document
from repro.core.outcomes import RequestOutcome
from repro.network.latency import ServiceKind
from repro.prefetch.predictor import MarkovPredictor
from repro.protocol import http as sim_http
from repro.trace.record import TraceRecord


@dataclass
class PrefetchStats:
    """Effectiveness and cost counters for the prefetch engine."""

    issued: int = 0
    skipped_resident: int = 0
    from_sibling: int = 0
    from_origin: int = 0
    bytes_prefetched: int = 0
    prefetch_hits: int = 0
    wasted: int = 0

    @property
    def precision(self) -> float:
        """Fraction of issued prefetches that served a client request."""
        return self.prefetch_hits / self.issued if self.issued else 0.0


class PrefetchEngine:
    """Eager placement on top of a cooperative group.

    Args:
        group: The cooperative group to serve requests through.
        predictor: Successor model (a default MarkovPredictor if omitted).
        size_hints: URL -> size map used to prefetch documents never seen by
            this group (the workload's document sizes); grows online from
            observed requests, so it may be omitted.
    """

    def __init__(
        self,
        group: CooperativeGroup,
        predictor: Optional[MarkovPredictor] = None,
        size_hints: Optional[Dict[str, int]] = None,
    ):
        self.group = group
        self.predictor = predictor if predictor is not None else MarkovPredictor()
        self.stats = PrefetchStats()
        self._sizes: Dict[str, int] = dict(size_hints or {})
        # (cache_index, url) pairs placed by prefetch and not yet hit.
        self._pending: Set[Tuple[int, str]] = set()

    def process(self, index: int, record: TraceRecord) -> RequestOutcome:
        """Serve one request, then prefetch its predicted successors."""
        self._sizes[record.url] = record.size
        outcome = self.group.process(index, record)

        key = (index, record.url)
        if outcome.kind is ServiceKind.LOCAL_HIT and key in self._pending:
            self.stats.prefetch_hits += 1
            self._pending.discard(key)
        else:
            # Any demand placement supersedes the prefetched provenance.
            self._pending.discard(key)

        self.predictor.observe(record.client_id, record.url)
        for prediction in self.predictor.predict(record.url):
            self._prefetch(index, prediction.url, record.timestamp)
        self._reap_evicted(index)
        return outcome

    def _prefetch(self, index: int, url: str, now: float) -> None:
        cache = self.group.caches[index]
        if url in cache:
            self.stats.skipped_resident += 1
            return
        size = self._sizes.get(url)
        if size is None or size <= 0:
            return
        holder = next(
            (i for i, c in enumerate(self.group.caches) if i != index and url in c),
            None,
        )
        request = sim_http.HttpRequest(url=url, sender=cache.name)
        self.group.bus.send_http_request(request)
        if holder is not None:
            # Speculative copy: serve without refreshing the sibling's entry
            # (a prefetch is not a client hit there).
            entry = self.group.caches[holder].serve_remote(url, now, refresh=False)
            assert entry is not None
            sender = self.group.caches[holder].name
            size = entry.size
            self.stats.from_sibling += 1
        else:
            sender = "origin"
            self.stats.from_origin += 1
        self.group.bus.send_http_response(
            sim_http.HttpResponse(url=url, body_size=size, sender=sender)
        )
        if cache.admit(Document(url, size), now).admitted:
            self.stats.issued += 1
            self.stats.bytes_prefetched += size
            self._pending.add((index, url))

    def _reap_evicted(self, index: int) -> None:
        """Count pending prefetches that were evicted unused."""
        cache = self.group.caches[index]
        evicted = {
            key for key in self._pending if key[0] == index and key[1] not in cache
        }
        self.stats.wasted += len(evicted)
        self._pending -= evicted
