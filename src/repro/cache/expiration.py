"""Expiration-age accounting (the paper's core measurement, Section 3.2).

The *document expiration age* of an evicted document is

* LRU caches (Eq. 2): ``T_evict - T_last_hit``
* LFU caches (§3.2.2): ``(T_evict - T_enter) / HIT_COUNTER``

and the *cache expiration age* over a finite window (Eq. 5) is the mean of
the document expiration ages of the victims evicted in that window. A high
cache expiration age means low disk-space contention.

The paper leaves the window ("a finite time duration (TI, Tj)") unspecified;
:class:`ExpirationAgeTracker` supports three interpretations, ablated in
``benchmarks/test_bench_ablation_window.py``:

* ``cumulative`` — all evictions since the cache started,
* ``count`` — the most recent ``window_size`` evictions (default, K=1000),
* ``time`` — evictions within the trailing ``window_seconds`` seconds.

A cache that has evicted nothing has no contention signal; its expiration
age is defined as ``+inf`` (no contention), which makes the EA scheme
degenerate to the ad-hoc scheme until caches fill — preserving the paper's
"never worse than ad-hoc" bootstrap behaviour.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.cache.document import EvictionRecord
from repro.errors import CacheConfigurationError

#: Window-mode names accepted by :class:`ExpirationAgeTracker`.
WINDOW_MODES = ("cumulative", "count", "time")


#: Tracker measures: the paper's two expiration-age formulas plus the
#: "Average Document Life Time" measure its Section 3.1 argues against —
#: supported so the argument is testable (``ablation-measure``).
TRACKER_KINDS = ("lru", "lfu", "lifetime")


def document_expiration_age(record: EvictionRecord, kind: str) -> float:
    """Contention score of one eviction under the named measure.

    Args:
        record: The eviction to score.
        kind: ``"lru"`` (Eq. 2), ``"lfu"`` (hit-counter ratio), or
            ``"lifetime"`` (Section 3.1's rejected Average Document Life
            Time: eviction time minus entry time).
    """
    if kind == "lru":
        return record.lru_expiration_age
    if kind == "lfu":
        return record.lfu_expiration_age
    if kind == "lifetime":
        return record.life_time
    raise CacheConfigurationError(
        f"unknown expiration-age kind {kind!r}; expected one of {TRACKER_KINDS}"
    )


@dataclass(frozen=True)
class ExpirationAgeSnapshot:
    """Point-in-time view of a tracker's state (for reports and tests)."""

    cache_expiration_age: float
    victims_in_window: int
    total_evictions: int


class ExpirationAgeTracker:
    """Maintains the cache expiration age over a configurable window.

    The tracker is fed one :class:`~repro.cache.document.EvictionRecord` per
    eviction via :meth:`record_eviction` and answers
    :meth:`cache_expiration_age` in O(1) (count/cumulative modes) or
    amortised O(1) (time mode).
    """

    def __init__(
        self,
        kind: str = "lru",
        window_mode: str = "count",
        window_size: int = 1000,
        window_seconds: float = 3600.0,
    ):
        if kind not in TRACKER_KINDS:
            raise CacheConfigurationError(f"unknown expiration-age kind {kind!r}")
        if window_mode not in WINDOW_MODES:
            raise CacheConfigurationError(
                f"unknown window mode {window_mode!r}; expected one of {WINDOW_MODES}"
            )
        if window_mode == "count" and window_size <= 0:
            raise CacheConfigurationError("window_size must be positive")
        if window_mode == "time" and window_seconds <= 0:
            raise CacheConfigurationError("window_seconds must be positive")
        self.kind = kind
        self.window_mode = window_mode
        self.window_size = window_size
        self.window_seconds = window_seconds
        self._window: Deque[Tuple[float, float]] = deque()  # (evict_time, age)
        self._window_sum = 0.0
        self._cumulative_sum = 0.0
        self._total_evictions = 0

    def record_eviction(self, record: EvictionRecord) -> float:
        """Fold one eviction into the window; returns its document age."""
        age = document_expiration_age(record, self.kind)
        self._total_evictions += 1
        self._cumulative_sum += age
        if self.window_mode == "cumulative":
            return age
        self._window.append((record.evict_time, age))
        self._window_sum += age
        if self.window_mode == "count":
            while len(self._window) > self.window_size:
                _, old = self._window.popleft()
                self._window_sum -= old
        else:  # time mode: trim lazily against the newest eviction time
            self._trim_time(record.evict_time)
        return age

    def _trim_time(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._window and self._window[0][0] < cutoff:
            _, old = self._window.popleft()
            self._window_sum -= old

    def cache_expiration_age(self, now: Optional[float] = None) -> float:
        """Paper Eq. 5: mean victim age in the window; ``+inf`` if empty.

        Args:
            now: Current time, used only by the time-window mode to expire
                old victims; ignored otherwise.
        """
        if self.window_mode == "cumulative":
            if self._total_evictions == 0:
                return math.inf
            return self._cumulative_sum / self._total_evictions
        if self.window_mode == "time" and now is not None:
            self._trim_time(now)
        if not self._window:
            return math.inf
        return self._window_sum / len(self._window)

    @property
    def total_evictions(self) -> int:
        """Evictions observed over the tracker's lifetime."""
        return self._total_evictions

    def snapshot(self, now: Optional[float] = None) -> ExpirationAgeSnapshot:
        """Immutable view of the tracker's current state."""
        in_window = (
            self._total_evictions
            if self.window_mode == "cumulative"
            else len(self._window)
        )
        return ExpirationAgeSnapshot(
            cache_expiration_age=self.cache_expiration_age(now),
            victims_in_window=in_window,
            total_evictions=self._total_evictions,
        )

    def reset(self) -> None:
        """Forget all observed evictions (start a fresh window)."""
        self._window.clear()
        self._window_sum = 0.0
        self._cumulative_sum = 0.0
        self._total_evictions = 0
