"""Victim-buffer cache: a second-chance tier for fresh evictions.

A classic single-node optimisation orthogonal to cooperative placement:
evicted documents move into a small FIFO *victim buffer* instead of
vanishing; a lookup that misses the main store but hits the buffer promotes
the document back (a "second-chance hit"), converting near-miss eviction
mistakes into hits at the cost of reserving part of the disk for the
buffer.

Interesting against the EA scheme because both attack the same waste —
documents dying too early — one locally (victim buffer) and one globally
(placement). The buffer participates in expiration-age accounting only
when a document finally falls out of it, which is when it truly leaves the
cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.cache.document import CacheEntry, Document, EvictionRecord
from repro.cache.expiration import ExpirationAgeTracker
from repro.cache.replacement import ReplacementPolicy
from repro.cache.store import AdmitOutcome, ProxyCache
from repro.errors import CacheConfigurationError


class VictimBufferCache(ProxyCache):
    """ProxyCache with a FIFO victim buffer carved out of its capacity.

    Args:
        capacity_bytes: Total disk budget (main store + buffer).
        victim_fraction: Fraction of the budget reserved for the buffer.
        (remaining args as for ProxyCache)
    """

    def __init__(
        self,
        capacity_bytes: int,
        victim_fraction: float = 0.1,
        policy: Optional[ReplacementPolicy] = None,
        tracker: Optional[ExpirationAgeTracker] = None,
        name: str = "victim-cache",
        admission=None,
    ):
        if not 0.0 < victim_fraction < 1.0:
            raise CacheConfigurationError("victim_fraction must be in (0, 1)")
        buffer_bytes = int(capacity_bytes * victim_fraction)
        main_bytes = capacity_bytes - buffer_bytes
        if main_bytes <= 0 or buffer_bytes <= 0:
            raise CacheConfigurationError(
                f"capacity {capacity_bytes} too small to split at {victim_fraction}"
            )
        super().__init__(
            main_bytes, policy=policy, tracker=tracker, name=name, admission=admission
        )
        self.buffer_capacity = buffer_bytes
        self._buffer: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._buffer_bytes = 0
        #: Lookups served by promoting a buffered victim back.
        self.second_chance_hits = 0

    # ------------------------------------------------------------------ #
    # Buffer mechanics
    # ------------------------------------------------------------------ #

    @property
    def buffer_used_bytes(self) -> int:
        """Bytes currently held in the victim buffer."""
        return self._buffer_bytes

    def buffer_urls(self) -> List[str]:
        """URLs in the buffer, oldest first."""
        return list(self._buffer)

    def _buffer_insert(self, entry: CacheEntry, now: float) -> None:
        if entry.size > self.buffer_capacity:
            # Too big to buffer: this is the document's true departure.
            self._record_final_eviction(entry, now)
            return
        while self._buffer_bytes + entry.size > self.buffer_capacity:
            _, oldest = self._buffer.popitem(last=False)
            self._buffer_bytes -= oldest.size
            self._record_final_eviction(oldest, now)
        self._buffer[entry.url] = entry
        self._buffer_bytes += entry.size

    def _buffer_remove(self, url: str) -> Optional[CacheEntry]:
        entry = self._buffer.pop(url, None)
        if entry is not None:
            self._buffer_bytes -= entry.size
        return entry

    def _record_final_eviction(self, entry: CacheEntry, now: float) -> None:
        record = EvictionRecord(
            url=entry.url,
            size=entry.size,
            entry_time=entry.entry_time,
            last_hit_time=entry.last_hit_time,
            hit_count=entry.hit_count,
            evict_time=now,
        )
        self.tracker.record_eviction(record)
        if self.eviction_listener is not None:
            self.eviction_listener(record)

    # ------------------------------------------------------------------ #
    # Overridden request path
    # ------------------------------------------------------------------ #

    def evict(self, url: str, now: float) -> EvictionRecord:
        """Evict from the main store into the buffer (not out of the cache).

        The returned record documents the main-store departure, but the
        expiration-age tracker is only fed when the document leaves the
        buffer too (the buffer *is* still cache residency).
        """
        entry = self._entries.pop(url, None)
        if entry is None:
            raise CacheConfigurationError(
                f"cannot evict {url!r}: not present in cache {self.name!r}"
            )
        self._used_bytes -= entry.size
        self.policy.on_evict(entry)
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size
        self._buffer_insert(entry, now)
        return EvictionRecord(
            url=entry.url,
            size=entry.size,
            entry_time=entry.entry_time,
            last_hit_time=entry.last_hit_time,
            hit_count=entry.hit_count,
            evict_time=now,
        )

    def lookup(self, url: str, now: float, refresh: bool = True) -> Optional[CacheEntry]:
        """Main-store lookup with second-chance fallback to the buffer."""
        entry = self._entries.get(url)
        if entry is not None:
            return super().lookup(url, now, refresh=refresh)
        buffered = self._buffer_remove(url)
        if buffered is None:
            return super().lookup(url, now, refresh=refresh)  # counts the miss
        # Second chance: promote back into the main store.
        self.stats.lookups += 1
        self.stats.local_hits += 1
        self.stats.bytes_served_local += buffered.size
        self.second_chance_hits += 1
        if refresh:
            buffered.record_hit(now)
        self._readmit(buffered)
        return buffered

    def _readmit(self, entry: CacheEntry) -> None:
        while self._used_bytes + entry.size > self.capacity_bytes:
            victim_url = self.policy.select_victim()
            self.evict(victim_url, entry.last_hit_time)
        self._entries[entry.url] = entry
        self._used_bytes += entry.size
        self.policy.on_admit(entry)

    def __contains__(self, url: str) -> bool:
        # Buffered documents are still resident (ICP replies positively and
        # serve_remote can deliver them after a promote-on-lookup path).
        return url in self._entries or url in self._buffer

    def serve_remote(self, url: str, now: float, refresh: bool) -> Optional[CacheEntry]:
        if url not in self._entries and url in self._buffer:
            buffered = self._buffer_remove(url)
            assert buffered is not None
            self.stats.remote_hits_served += 1
            self.stats.bytes_served_remote += buffered.size
            if refresh:
                buffered.record_hit(now)
            self._readmit(buffered)
            return buffered
        return super().serve_remote(url, now, refresh)

    def clear(self) -> None:
        super().clear()
        self._buffer.clear()
        self._buffer_bytes = 0
