"""Cache substrate: documents, replacement/admission policies, stores, expiration age."""

from repro.cache.admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    ProbabilisticAdmission,
    SecondHitAdmission,
    SizeThresholdAdmission,
    make_admission,
)
from repro.cache.document import CacheEntry, Document, EvictionRecord
from repro.cache.expiration import (
    WINDOW_MODES,
    ExpirationAgeSnapshot,
    ExpirationAgeTracker,
    document_expiration_age,
)
from repro.cache.replacement import (
    FIFOPolicy,
    GDSFPolicy,
    GreedyDualSizePolicy,
    LFUAgingPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SizePolicy,
    make_policy,
)
from repro.cache.stats import CacheStats
from repro.cache.store import AdmitOutcome, ProxyCache
from repro.cache.victim import VictimBufferCache

__all__ = [
    "AdmissionPolicy",
    "AdmitOutcome",
    "AlwaysAdmit",
    "CacheEntry",
    "CacheStats",
    "Document",
    "EvictionRecord",
    "ExpirationAgeSnapshot",
    "ExpirationAgeTracker",
    "FIFOPolicy",
    "GDSFPolicy",
    "GreedyDualSizePolicy",
    "LFUAgingPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "ProbabilisticAdmission",
    "ProxyCache",
    "RandomPolicy",
    "ReplacementPolicy",
    "SecondHitAdmission",
    "SizePolicy",
    "SizeThresholdAdmission",
    "VictimBufferCache",
    "WINDOW_MODES",
    "document_expiration_age",
    "make_admission",
    "make_policy",
]
