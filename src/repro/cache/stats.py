"""Per-cache counters.

These track what happens *at one proxy*; group-level metrics (cumulative hit
rate, remote hits, latency) are assembled by :mod:`repro.simulation.metrics`
from the per-proxy counters plus the simulator's request decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass  # repro: noqa[RPR005] — counter block incremented on the hot path
class CacheStats:
    """Mutable counter block for a single proxy cache.

    Attributes:
        lookups: Local lookups performed (client requests arriving here).
        local_hits: Lookups satisfied from this cache.
        local_misses: Lookups that missed here (may still be remote hits).
        remote_hits_served: Requests from *sibling* proxies this cache
            satisfied (it acted as the responder).
        admissions: Documents stored (first-time placements).
        rejections: Admissions refused (document larger than capacity).
        evictions: Documents removed to make room.
        bytes_served_local: Body bytes served to local clients from cache.
        bytes_served_remote: Body bytes served to sibling proxies.
        bytes_admitted: Body bytes written into the cache.
        bytes_evicted: Body bytes removed from the cache.
        placements_declined: Copies this cache obtained remotely but did
            not store because the placement scheme said no (EA age
            comparison or replica-size cap; always 0 under ad-hoc).
        promotions_granted: Remote serves where this cache, as responder,
            gave its entry the fresh lease of life (refresh granted).
        promotions_withheld: Remote serves where the responder's entry was
            deliberately *not* refreshed (EA: requester holds the lease).
    """

    lookups: int = 0
    local_hits: int = 0
    local_misses: int = 0
    remote_hits_served: int = 0
    admissions: int = 0
    rejections: int = 0
    evictions: int = 0
    bytes_served_local: int = 0
    bytes_served_remote: int = 0
    bytes_admitted: int = 0
    bytes_evicted: int = 0
    placements_declined: int = 0
    promotions_granted: int = 0
    promotions_withheld: int = 0

    @property
    def local_hit_rate(self) -> float:
        """Fraction of local lookups that hit (0.0 when no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.local_hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new CacheStats with counters summed element-wise."""
        return CacheStats(
            lookups=self.lookups + other.lookups,
            local_hits=self.local_hits + other.local_hits,
            local_misses=self.local_misses + other.local_misses,
            remote_hits_served=self.remote_hits_served + other.remote_hits_served,
            admissions=self.admissions + other.admissions,
            rejections=self.rejections + other.rejections,
            evictions=self.evictions + other.evictions,
            bytes_served_local=self.bytes_served_local + other.bytes_served_local,
            bytes_served_remote=self.bytes_served_remote + other.bytes_served_remote,
            bytes_admitted=self.bytes_admitted + other.bytes_admitted,
            bytes_evicted=self.bytes_evicted + other.bytes_evicted,
            placements_declined=self.placements_declined + other.placements_declined,
            promotions_granted=self.promotions_granted + other.promotions_granted,
            promotions_withheld=self.promotions_withheld + other.promotions_withheld,
        )
