"""The proxy cache store: bounded byte capacity + pluggable replacement.

:class:`ProxyCache` is the single-proxy substrate everything above it builds
on. It owns the entry table, enforces the byte budget, drives the
replacement policy's hooks, and feeds every eviction into an
:class:`~repro.cache.expiration.ExpirationAgeTracker` so the EA scheme can
read the cache's contention level at any time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.document import CacheEntry, Document, EvictionRecord
from repro.cache.expiration import ExpirationAgeTracker
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.errors import CacheConfigurationError


@dataclass(frozen=True)
class AdmitOutcome:
    """Result of :meth:`ProxyCache.admit`.

    Attributes:
        admitted: Whether the document was stored.
        already_present: The document was cached before the call (refreshed
            instead of re-admitted).
        evicted: Victims removed to make room, in eviction order.
    """

    admitted: bool
    already_present: bool = False
    evicted: List[EvictionRecord] = field(default_factory=list)


class ProxyCache:
    """A single proxy cache with a byte budget.

    Args:
        capacity_bytes: Total disk budget for document bodies.
        policy: Replacement policy; defaults to a fresh :class:`LRUPolicy`
            (what the paper's experiments use).
        tracker: Expiration-age tracker; defaults to one whose formula kind
            matches the policy (LRU-style vs LFU-style victims).
        name: Identifier used in logs, metrics, and protocol messages.
        admission: Optional admission gate consulted before storing a new
            document; ``None`` admits everything (the paper's behaviour).
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: Optional[ReplacementPolicy] = None,
        tracker: Optional[ExpirationAgeTracker] = None,
        name: str = "cache",
        admission=None,
    ):
        if capacity_bytes <= 0:
            raise CacheConfigurationError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.policy = policy if policy is not None else LRUPolicy()
        self.tracker = (
            tracker
            if tracker is not None
            else ExpirationAgeTracker(kind=self.policy.expiration_age_kind)
        )
        self.name = name
        self.admission = admission
        self.stats = CacheStats()
        #: Optional callback invoked with each EvictionRecord right after
        #: an eviction (used e.g. by the demotion extension to rescue the
        #: group's last copy of a document).
        self.eviction_listener = None
        #: Optional obs hook called ``(record, age)`` per eviction, where
        #: ``age`` is the document expiration age fed to the EA tracker —
        #: read-only reporting, wired by the simulator when a run is
        #: observed (see :mod:`repro.obs.events`).
        self.eviction_observer = None
        self._entries: Dict[str, CacheEntry] = {}
        self._used_bytes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by cached bodies."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining byte budget."""
        return self.capacity_bytes - self._used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self._used_bytes / self.capacity_bytes

    def urls(self) -> List[str]:
        """URLs currently cached (unspecified order)."""
        return list(self._entries)

    def get_entry(self, url: str) -> Optional[CacheEntry]:
        """The live entry for ``url``, or None — no side effects."""
        return self._entries.get(url)

    def expiration_age(self, now: Optional[float] = None) -> float:
        """This cache's expiration age (paper Eq. 5) — the EA scheme input."""
        return self.tracker.cache_expiration_age(now)

    # ------------------------------------------------------------------ #
    # Request-path operations
    # ------------------------------------------------------------------ #

    def lookup(self, url: str, now: float, refresh: bool = True) -> Optional[CacheEntry]:
        """Local-client lookup: counts a local hit or miss.

        Args:
            url: Requested document.
            now: Simulation time.
            refresh: Whether a hit refreshes recency/frequency state (true
                for every client-facing lookup in both schemes).
        """
        self.stats.lookups += 1
        entry = self._entries.get(url)
        if entry is None:
            self.stats.local_misses += 1
            return None
        self.stats.local_hits += 1
        self.stats.bytes_served_local += entry.size
        if refresh:
            entry.record_hit(now)
            self.policy.on_hit(entry)
        return entry

    def serve_remote(self, url: str, now: float, refresh: bool) -> Optional[CacheEntry]:
        """Serve a sibling proxy's request (this cache is the responder).

        Under the ad-hoc scheme every remote serve refreshes the entry (the
        document "is given a fresh lease of life"); under the EA scheme the
        caller passes ``refresh=True`` only when this cache's expiration age
        exceeds the requester's (Section 3.3).
        """
        entry = self._entries.get(url)
        if entry is None:
            return None
        self.stats.remote_hits_served += 1
        self.stats.bytes_served_remote += entry.size
        if refresh:
            self.stats.promotions_granted += 1
            entry.record_hit(now)
            self.policy.on_hit(entry)
        else:
            self.stats.promotions_withheld += 1
        return entry

    def admit(self, document: Document, now: float) -> AdmitOutcome:
        """Store ``document``, evicting victims until it fits.

        A document larger than the whole cache is rejected (no evictions are
        wasted on it). Admitting an already-cached URL refreshes the entry
        instead of duplicating it.
        """
        entry = self._entries.get(document.url)
        if entry is not None:
            entry.record_hit(now)
            self.policy.on_hit(entry)
            return AdmitOutcome(admitted=True, already_present=True)
        if document.size > self.capacity_bytes:
            self.stats.rejections += 1
            return AdmitOutcome(admitted=False)
        if self.admission is not None and not self.admission.admit(document, now):
            self.stats.rejections += 1
            return AdmitOutcome(admitted=False)
        evicted: List[EvictionRecord] = []
        while self._used_bytes + document.size > self.capacity_bytes:
            evicted.append(self.evict_victim(now))
        entry = CacheEntry(document=document, entry_time=now)
        self._entries[document.url] = entry
        self._used_bytes += document.size
        self.policy.on_admit(entry)
        self.stats.admissions += 1
        self.stats.bytes_admitted += document.size
        if self.admission is not None:
            self.admission.on_admitted(document, now)
        return AdmitOutcome(admitted=True, evicted=evicted)

    def evict_victim(self, now: float) -> EvictionRecord:
        """Evict the policy's chosen victim; returns its audit record."""
        victim_url = self.policy.select_victim()
        return self.evict(victim_url, now)

    def evict(self, url: str, now: float) -> EvictionRecord:
        """Evict a specific URL (policy victim or explicit invalidation)."""
        entry = self._entries.pop(url, None)
        if entry is None:
            raise CacheConfigurationError(
                f"cannot evict {url!r}: not present in cache {self.name!r}"
            )
        self._used_bytes -= entry.size
        self.policy.on_evict(entry)
        record = EvictionRecord(
            url=entry.url,
            size=entry.size,
            entry_time=entry.entry_time,
            last_hit_time=entry.last_hit_time,
            hit_count=entry.hit_count,
            evict_time=now,
        )
        age = self.tracker.record_eviction(record)
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size
        if self.eviction_listener is not None:
            self.eviction_listener(record)
        if self.eviction_observer is not None:
            self.eviction_observer(record, age)
        return record

    def clear(self) -> None:
        """Drop every entry without recording evictions (fresh start)."""
        self._entries.clear()
        self._used_bytes = 0
        self.policy.clear()
